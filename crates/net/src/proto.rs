//! The control- and data-plane messages riding the frame format.
//!
//! # Handshake sequence
//!
//! ```text
//! worker s                         orchestrator
//!    | -- control: Hello{stage:s} ------> |   (version checked by framing)
//!    | <------ Welcome{stages:N} -------- |
//!    | -- data:   DataHello{stage:s} ---> |   (second connection)
//!    | <------ Manifest{shard} ---------- |
//!    | -- ManifestAck{weight_hash} -----> |   (hash must match)
//!    | <------ Start -------------------- |
//!    |        ... sealed data ...         |
//!    | <------ Finish -------------------- |
//!    | -- Done{edge counters} ----------> |   (lockstep audit)
//!    | <------ Shutdown ------------------ |
//! ```
//!
//! # Shard manifest
//!
//! The [`ShardManifest`] tells a worker everything it needs to stand up
//! its stage: the layer range it owns, the expected weight hash for that
//! shard ([`pipellm::partition::stage_weight_hash`]), the run geometry
//! (micro-batches, iterations, activation size), and the cluster seed from
//! which the worker derives — locally, never from the wire — its edge and
//! host-channel key roots.
//!
//! Every encoder returns a complete frame ([`Msg::encode`]); every decoder
//! consumes a complete frame ([`Msg::decode`]) and rejects anything
//! structurally off with a clean [`NetError`].

use crate::error::{NetError, NetResult};
use crate::frame::{decode_frame, encode_frame, Reader, Writer};
use std::time::Duration;

/// Protocol version spoken by this build; carried in every frame header.
///
/// v2: [`Hello`] and [`Msg::DataHello`] carry the worker's admission
/// generation, and the supervision messages ([`Msg::Heartbeat`],
/// [`Msg::HeartbeatAck`], [`Msg::CheckpointReq`], [`Msg::CheckpointSave`],
/// [`Msg::Restore`]) exist. v1 peers are rejected by the framing layer.
pub const PROTO_VERSION: u8 = 2;

/// Node id of the orchestrator/host in `src`/`dst` fields and edge ids.
pub const HOST_NODE: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Timing knobs.
//
// Every heartbeat, deadline, retry and sweep interval of the networked
// deployment is defined here — and only here (pipellm-lint PL008 rejects
// magic `Duration` literals in the orchestrator/worker/supervisor modules).
// [`NetTuning`] carries the resolved values and supports env overrides.
// ---------------------------------------------------------------------------

/// Default interval between worker heartbeats on the control channel.
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(50);

/// Default silence after which the supervisor suspects a worker.
pub const SUSPECT_AFTER: Duration = Duration::from_millis(250);

/// Default silence after which the supervisor declares a worker dead and
/// begins failover. Must exceed [`SUSPECT_AFTER`].
pub const DEAD_AFTER: Duration = Duration::from_millis(600);

/// Default age past which an unacked data frame is retransmitted by the
/// level-triggered resend sweep.
pub const RESEND_AFTER: Duration = Duration::from_millis(300);

/// Default event-loop poll interval for orchestrator and workers.
pub const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Default whole-operation deadline for handshake and drain phases.
pub const OP_TIMEOUT: Duration = Duration::from_secs(10);

/// Default quiet window a worker waits after its last send before
/// reporting `Done` — absorbs straggler retransmits.
pub const QUIET_WINDOW: Duration = Duration::from_millis(60);

/// Default number of completed outputs between sealed checkpoint barriers.
pub const CHECKPOINT_EVERY: u32 = 4;

/// Default reconnect attempts before a transport link is declared dead.
pub const WIRE_MAX_RETRIES: u32 = 4;

/// Default base backoff of the reconnect retry schedule.
pub const WIRE_BACKOFF_BASE: Duration = Duration::from_millis(5);

/// Default backoff cap of the reconnect retry schedule.
pub const WIRE_BACKOFF_CAP: Duration = Duration::from_millis(100);

/// Default per-attempt timeout of one reconnect operation.
pub const WIRE_OP_TIMEOUT: Duration = Duration::from_secs(2);

/// Sleep between connect attempts while dialing the orchestrator.
pub const DIAL_RETRY: Duration = Duration::from_millis(5);

/// Sleep between polls of a nonblocking accept loop.
pub const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Every configurable timing knob of the networked deployment.
///
/// Defaults come from the module constants above; [`NetTuning::from_env`]
/// overrides them from `PIPELLM_*` environment variables so a deployment
/// can be retuned without a rebuild. [`NetTuning::from_lookup`] is the
/// pure, testable core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetTuning {
    /// Retransmit sweep threshold (`PIPELLM_RESEND_AFTER_MS`).
    pub resend_after: Duration,
    /// Worker heartbeat interval (`PIPELLM_HEARTBEAT_MS`).
    pub heartbeat_interval: Duration,
    /// Supervisor suspicion deadline (`PIPELLM_SUSPECT_AFTER_MS`).
    pub suspect_after: Duration,
    /// Supervisor death deadline (`PIPELLM_DEAD_AFTER_MS`).
    pub dead_after: Duration,
    /// Event-loop poll interval (`PIPELLM_POLL_MS`).
    pub poll_interval: Duration,
    /// Handshake/drain deadline (`PIPELLM_OP_TIMEOUT_MS`).
    pub op_timeout: Duration,
    /// Worker pre-`Done` quiet window (`PIPELLM_QUIET_MS`).
    pub quiet_window: Duration,
    /// Outputs per checkpoint barrier (`PIPELLM_CHECKPOINT_EVERY`).
    pub checkpoint_every: u32,
    /// Reconnect attempts per link (`PIPELLM_MAX_RETRIES`).
    pub max_retries: u32,
    /// Reconnect backoff base (`PIPELLM_BACKOFF_BASE_MS`).
    pub backoff_base: Duration,
    /// Reconnect backoff cap (`PIPELLM_BACKOFF_CAP_MS`).
    pub backoff_cap: Duration,
    /// Per-reconnect-attempt timeout (`PIPELLM_WIRE_OP_TIMEOUT_MS`).
    pub wire_op_timeout: Duration,
}

impl Default for NetTuning {
    fn default() -> Self {
        NetTuning {
            resend_after: RESEND_AFTER,
            heartbeat_interval: HEARTBEAT_INTERVAL,
            suspect_after: SUSPECT_AFTER,
            dead_after: DEAD_AFTER,
            poll_interval: POLL_INTERVAL,
            op_timeout: OP_TIMEOUT,
            quiet_window: QUIET_WINDOW,
            checkpoint_every: CHECKPOINT_EVERY,
            max_retries: WIRE_MAX_RETRIES,
            backoff_base: WIRE_BACKOFF_BASE,
            backoff_cap: WIRE_BACKOFF_CAP,
            wire_op_timeout: WIRE_OP_TIMEOUT,
        }
    }
}

impl NetTuning {
    /// Resolves the tuning from process environment variables.
    pub fn from_env() -> Self {
        Self::from_lookup(|key| std::env::var(key).ok())
    }

    /// Resolves the tuning from an arbitrary key lookup — the pure core
    /// of [`NetTuning::from_env`], so tests need not mutate the process
    /// environment. Unset or unparsable keys keep their defaults.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Self {
        let ms = |key: &str, default: Duration| -> Duration {
            lookup(key)
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map(Duration::from_millis)
                .unwrap_or(default)
        };
        let count = |key: &str, default: u32| -> u32 {
            lookup(key)
                .and_then(|v| v.trim().parse::<u32>().ok())
                .unwrap_or(default)
        };
        NetTuning {
            resend_after: ms("PIPELLM_RESEND_AFTER_MS", RESEND_AFTER),
            heartbeat_interval: ms("PIPELLM_HEARTBEAT_MS", HEARTBEAT_INTERVAL),
            suspect_after: ms("PIPELLM_SUSPECT_AFTER_MS", SUSPECT_AFTER),
            dead_after: ms("PIPELLM_DEAD_AFTER_MS", DEAD_AFTER),
            poll_interval: ms("PIPELLM_POLL_MS", POLL_INTERVAL),
            op_timeout: ms("PIPELLM_OP_TIMEOUT_MS", OP_TIMEOUT),
            quiet_window: ms("PIPELLM_QUIET_MS", QUIET_WINDOW),
            checkpoint_every: count("PIPELLM_CHECKPOINT_EVERY", CHECKPOINT_EVERY).max(1),
            max_retries: count("PIPELLM_MAX_RETRIES", WIRE_MAX_RETRIES),
            backoff_base: ms("PIPELLM_BACKOFF_BASE_MS", WIRE_BACKOFF_BASE),
            backoff_cap: ms("PIPELLM_BACKOFF_CAP_MS", WIRE_BACKOFF_CAP),
            wire_op_timeout: ms("PIPELLM_WIRE_OP_TIMEOUT_MS", WIRE_OP_TIMEOUT),
        }
    }
}

/// Frame kind bytes.
mod kind {
    pub const HELLO: u8 = 0x01;
    pub const WELCOME: u8 = 0x02;
    pub const MANIFEST: u8 = 0x03;
    pub const MANIFEST_ACK: u8 = 0x04;
    pub const START: u8 = 0x05;
    pub const DATA: u8 = 0x10;
    pub const ACK_DATA: u8 = 0x11;
    pub const NACK_DATA: u8 = 0x12;
    pub const REKEY_EDGE: u8 = 0x13;
    pub const LINK_RESTORED: u8 = 0x14;
    pub const DATA_HELLO: u8 = 0x15;
    pub const HEARTBEAT: u8 = 0x16;
    pub const HEARTBEAT_ACK: u8 = 0x17;
    pub const CHECKPOINT_REQ: u8 = 0x18;
    pub const CHECKPOINT_SAVE: u8 = 0x19;
    pub const RESTORE: u8 = 0x1A;
    pub const FINISH: u8 = 0x20;
    pub const DONE: u8 = 0x21;
    pub const SHUTDOWN: u8 = 0x22;
}

/// Control-channel greeting: the first frame on a worker's control
/// connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The stage this worker serves.
    pub stage: u32,
    /// Admission generation: 0 for the first incarnation of a stage,
    /// bumped by the supervisor on every failover. The orchestrator's
    /// acceptor rejects identification frames from a stale generation, so
    /// a re-dial racing a replacement can never leave two live
    /// connections for one stage.
    pub generation: u32,
}

/// Orchestrator's reply to [`Hello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Welcome {
    /// Total pipeline stages in the deployment.
    pub stages: u32,
}

/// The shard assignment: everything a worker needs to serve its stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardManifest {
    /// The stage this manifest is for.
    pub stage: u32,
    /// Total stages.
    pub stages: u32,
    /// Total model layers.
    pub layers: u32,
    /// First layer (inclusive) of this stage's shard.
    pub layer_start: u32,
    /// One past the last layer of this stage's shard.
    pub layer_end: u32,
    /// Expected content hash of the shard's weights.
    pub weight_hash: u64,
    /// Activation payload size per micro-batch, bytes.
    pub activation_bytes: u64,
    /// Micro-batches per iteration.
    pub micro_batches: u32,
    /// Iterations to run.
    pub iterations: u32,
    /// Cluster-wide key-derivation seed; per-edge and host-channel roots
    /// are derived from it locally at each endpoint.
    pub cluster_seed: u64,
}

impl ShardManifest {
    fn validate(&self) -> NetResult<()> {
        if self.stages == 0 || self.stage >= self.stages {
            return Err(NetError::Malformed {
                what: "manifest stage out of range",
            });
        }
        if self.layer_start > self.layer_end || self.layer_end > self.layers {
            return Err(NetError::Malformed {
                what: "manifest layer range out of bounds",
            });
        }
        Ok(())
    }
}

/// Worker's acknowledgement of its manifest, echoing the weight hash it
/// computed locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestAck {
    /// The acknowledging stage.
    pub stage: u32,
    /// Hash the worker computed over its shard.
    pub weight_hash: u64,
}

/// One sealed activation frame on a data channel.
///
/// The envelope fields (`src`, `dst`, routing metadata) travel in clear —
/// the relay needs them — but the AAD is never shipped: both the sealing
/// and the opening endpoint recompute it from the envelope they each see
/// ([`DataFrame::bind_aad`]), so a relay that rewrites any routing field
/// produces a frame that can never authenticate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFrame {
    /// Sending node ([`HOST_NODE`] for orchestrator ingress).
    pub src: u32,
    /// Receiving node ([`HOST_NODE`] for orchestrator egress).
    pub dst: u32,
    /// Per-directed-link sequence number (retransmit bookkeeping).
    pub seq: u64,
    /// Key epoch of the edge this frame was sealed under.
    pub epoch: u32,
    /// Iteration of the carried micro-batch.
    pub iteration: u32,
    /// Micro-batch index.
    pub micro_batch: u32,
    /// `ciphertext || 16-byte tag` from the edge's secure channel.
    pub sealed: Vec<u8>,
}

impl DataFrame {
    /// The canonical AAD binding of a data frame's envelope. Both the
    /// sealer and the opener derive it from the fields they each believe,
    /// so any relay tampering with the routing metadata breaks
    /// authentication.
    pub fn bind_aad(
        src: u32,
        dst: u32,
        epoch: u32,
        iteration: u32,
        micro_batch: u32,
        plaintext_len: u64,
    ) -> Vec<u8> {
        let mut w = Writer::default();
        w.u32(src);
        w.u32(dst);
        w.u32(epoch);
        w.u32(iteration);
        w.u32(micro_batch);
        w.u64(plaintext_len);
        w.0
    }
}

/// Positive or negative acknowledgement of a [`DataFrame`], routed back to
/// the sender over control channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataAck {
    /// `src` of the acknowledged frame.
    pub src: u32,
    /// `dst` of the acknowledged frame.
    pub dst: u32,
    /// Sequence number being (n)acked.
    pub seq: u64,
}

/// Orchestrator-initiated epoch bump of one edge — the fresh-IV recovery
/// step after a connection drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RekeyEdge {
    /// Lower endpoint of the edge ([`HOST_NODE`] sorts last).
    pub a: u32,
    /// Upper endpoint of the edge.
    pub b: u32,
    /// The target epoch; receivers fast-forward to it.
    pub epoch: u32,
}

/// One edge's counters in a worker's end-of-run report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeCounterEntry {
    /// Lower endpoint of the edge.
    pub a: u32,
    /// Upper endpoint of the edge.
    pub b: u32,
    /// Epoch the edge finished on.
    pub epoch: u32,
    /// The reporting node's next send IV on this edge (0 if it never
    /// sends on it).
    pub tx_iv: u64,
    /// The reporting node's next receive IV on this edge (0 if it never
    /// receives on it).
    pub rx_iv: u64,
}

/// A liveness beacon on the control channel, and its echo.
///
/// Workers send one every [`NetTuning::heartbeat_interval`]; the
/// orchestrator echoes each as [`Msg::HeartbeatAck`]. Sequence numbers
/// are monotone per worker incarnation, so a reordered or replayed
/// beacon can never un-suspect a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// The beating stage.
    pub stage: u32,
    /// The worker's admission generation.
    pub generation: u32,
    /// Monotone beacon counter within this incarnation.
    pub seq: u64,
}

/// Orchestrator-initiated checkpoint barrier.
///
/// Broadcast when the contiguous prefix of completed outputs crosses a
/// multiple of [`NetTuning::checkpoint_every`]. Workers garbage-collect
/// retained outputs below `prefix`, seal their recovery state, and reply
/// with [`Msg::CheckpointSave`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReq {
    /// Monotone barrier number (1-based).
    pub barrier: u64,
    /// Count of globally complete outputs: every `(iteration,
    /// micro_batch)` with global index below this is committed at the
    /// orchestrator.
    pub prefix: u64,
}

/// A worker's sealed recovery state for one barrier.
///
/// The payload is AEAD-sealed under a key derived from the cluster seed —
/// which the orchestrator never holds — so the supervisor stores and
/// relays it without being able to read (or forge) the enclosed epochs,
/// IV positions, or retained activations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSave {
    /// The checkpointing stage.
    pub stage: u32,
    /// The barrier this state belongs to.
    pub barrier: u64,
    /// Opaque sealed checkpoint (`ciphertext || tag`).
    pub sealed: Vec<u8>,
}

/// Replays a stored checkpoint to a replacement worker during failover.
///
/// An empty `sealed` means "no checkpoint yet — start fresh". The
/// replacement unseals and validates the state itself; anything stale,
/// truncated, or tampered is refused and the worker starts fresh instead
/// (recomputation is always correct, the checkpoint is an optimisation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Restore {
    /// The barrier the sealed state claims to belong to.
    pub barrier: u64,
    /// Opaque sealed checkpoint, or empty for a fresh start.
    pub sealed: Vec<u8>,
}

/// Worker's end-of-run report: per-edge counters plus resilience tallies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterReport {
    /// The reporting stage.
    pub stage: u32,
    /// Counters of every edge the stage touches.
    pub edges: Vec<EdgeCounterEntry>,
    /// Frames this worker had to retransmit (NACK or rekey driven).
    pub retransmits: u64,
    /// Frames whose open failed and was absorbed as a sentinel.
    pub sentinels: u64,
    /// Reconnects this worker performed.
    pub reconnects: u64,
}

/// Every message in the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Control-channel greeting.
    Hello(Hello),
    /// Greeting reply.
    Welcome(Welcome),
    /// Shard assignment.
    Manifest(ShardManifest),
    /// Shard acknowledgement.
    ManifestAck(ManifestAck),
    /// All manifests acked; start serving.
    Start,
    /// A sealed activation frame.
    Data(DataFrame),
    /// Positive data acknowledgement.
    AckData(DataAck),
    /// Negative data acknowledgement (sentinel open; retransmit).
    NackData(DataAck),
    /// Epoch bump of one edge.
    RekeyEdge(RekeyEdge),
    /// A worker's data link is live again after a reconnect.
    LinkRestored {
        /// The reconnected stage.
        stage: u32,
    },
    /// Data-channel greeting identifying which stage the connection backs.
    DataHello {
        /// The connecting stage.
        stage: u32,
        /// The connecting worker's admission generation (see [`Hello`]).
        generation: u32,
    },
    /// Worker liveness beacon.
    Heartbeat(Heartbeat),
    /// Orchestrator's echo of a heartbeat.
    HeartbeatAck(Heartbeat),
    /// Checkpoint barrier announcement.
    CheckpointReq(CheckpointReq),
    /// A worker's sealed checkpoint for one barrier.
    CheckpointSave(CheckpointSave),
    /// Replay of a stored checkpoint to a replacement worker.
    Restore(Restore),
    /// No more iterations; report counters.
    Finish,
    /// End-of-run counter report.
    Done(CounterReport),
    /// Tear the deployment down.
    Shutdown,
}

impl Msg {
    fn kind(&self) -> u8 {
        match self {
            Msg::Hello(_) => kind::HELLO,
            Msg::Welcome(_) => kind::WELCOME,
            Msg::Manifest(_) => kind::MANIFEST,
            Msg::ManifestAck(_) => kind::MANIFEST_ACK,
            Msg::Start => kind::START,
            Msg::Data(_) => kind::DATA,
            Msg::AckData(_) => kind::ACK_DATA,
            Msg::NackData(_) => kind::NACK_DATA,
            Msg::RekeyEdge(_) => kind::REKEY_EDGE,
            Msg::LinkRestored { .. } => kind::LINK_RESTORED,
            Msg::DataHello { .. } => kind::DATA_HELLO,
            Msg::Heartbeat(_) => kind::HEARTBEAT,
            Msg::HeartbeatAck(_) => kind::HEARTBEAT_ACK,
            Msg::CheckpointReq(_) => kind::CHECKPOINT_REQ,
            Msg::CheckpointSave(_) => kind::CHECKPOINT_SAVE,
            Msg::Restore(_) => kind::RESTORE,
            Msg::Finish => kind::FINISH,
            Msg::Done(_) => kind::DONE,
            Msg::Shutdown => kind::SHUTDOWN,
        }
    }

    /// Encodes the message as one complete frame (header included).
    ///
    /// # Errors
    ///
    /// [`NetError::Oversize`] if the payload exceeds the frame cap.
    pub fn encode(&self) -> NetResult<Vec<u8>> {
        let mut w = Writer::default();
        match self {
            Msg::Hello(h) => {
                w.u32(h.stage);
                w.u32(h.generation);
            }
            Msg::Welcome(wl) => w.u32(wl.stages),
            Msg::Manifest(m) => {
                w.u32(m.stage);
                w.u32(m.stages);
                w.u32(m.layers);
                w.u32(m.layer_start);
                w.u32(m.layer_end);
                w.u64(m.weight_hash);
                w.u64(m.activation_bytes);
                w.u32(m.micro_batches);
                w.u32(m.iterations);
                w.u64(m.cluster_seed);
            }
            Msg::ManifestAck(a) => {
                w.u32(a.stage);
                w.u64(a.weight_hash);
            }
            Msg::Start | Msg::Finish | Msg::Shutdown => {}
            Msg::Data(d) => {
                w.u32(d.src);
                w.u32(d.dst);
                w.u64(d.seq);
                w.u32(d.epoch);
                w.u32(d.iteration);
                w.u32(d.micro_batch);
                w.bytes(&d.sealed);
            }
            Msg::AckData(a) | Msg::NackData(a) => {
                w.u32(a.src);
                w.u32(a.dst);
                w.u64(a.seq);
            }
            Msg::RekeyEdge(r) => {
                w.u32(r.a);
                w.u32(r.b);
                w.u32(r.epoch);
            }
            Msg::LinkRestored { stage } => w.u32(*stage),
            Msg::DataHello { stage, generation } => {
                w.u32(*stage);
                w.u32(*generation);
            }
            Msg::Heartbeat(h) | Msg::HeartbeatAck(h) => {
                w.u32(h.stage);
                w.u32(h.generation);
                w.u64(h.seq);
            }
            Msg::CheckpointReq(c) => {
                w.u64(c.barrier);
                w.u64(c.prefix);
            }
            Msg::CheckpointSave(c) => {
                w.u32(c.stage);
                w.u64(c.barrier);
                w.bytes(&c.sealed);
            }
            Msg::Restore(r) => {
                w.u64(r.barrier);
                w.bytes(&r.sealed);
            }
            Msg::Done(d) => {
                w.u32(d.stage);
                w.u32(d.edges.len() as u32);
                for e in &d.edges {
                    w.u32(e.a);
                    w.u32(e.b);
                    w.u32(e.epoch);
                    w.u64(e.tx_iv);
                    w.u64(e.rx_iv);
                }
                w.u64(d.retransmits);
                w.u64(d.sentinels);
                w.u64(d.reconnects);
            }
        }
        encode_frame(self.kind(), &w.0)
    }

    /// Decodes one complete frame into a message.
    ///
    /// # Errors
    ///
    /// Every framing error of [`decode_frame`], plus
    /// [`NetError::UnknownKind`], [`NetError::Malformed`],
    /// [`NetError::Truncated`] and [`NetError::TrailingBytes`] for payloads
    /// that do not parse exactly.
    pub fn decode(frame: &[u8]) -> NetResult<Msg> {
        let (kind_byte, payload) = decode_frame(frame)?;
        let mut r = Reader::new(payload);
        let msg = match kind_byte {
            kind::HELLO => Msg::Hello(Hello {
                stage: r.u32()?,
                generation: r.u32()?,
            }),
            kind::WELCOME => {
                let stages = r.u32()?;
                if stages == 0 {
                    return Err(NetError::Malformed {
                        what: "welcome with zero stages",
                    });
                }
                Msg::Welcome(Welcome { stages })
            }
            kind::MANIFEST => {
                let m = ShardManifest {
                    stage: r.u32()?,
                    stages: r.u32()?,
                    layers: r.u32()?,
                    layer_start: r.u32()?,
                    layer_end: r.u32()?,
                    weight_hash: r.u64()?,
                    activation_bytes: r.u64()?,
                    micro_batches: r.u32()?,
                    iterations: r.u32()?,
                    cluster_seed: r.u64()?,
                };
                m.validate()?;
                Msg::Manifest(m)
            }
            kind::MANIFEST_ACK => Msg::ManifestAck(ManifestAck {
                stage: r.u32()?,
                weight_hash: r.u64()?,
            }),
            kind::START => Msg::Start,
            kind::DATA => Msg::Data(DataFrame {
                src: r.u32()?,
                dst: r.u32()?,
                seq: r.u64()?,
                epoch: r.u32()?,
                iteration: r.u32()?,
                micro_batch: r.u32()?,
                sealed: r.bytes()?.to_vec(),
            }),
            kind::ACK_DATA => Msg::AckData(DataAck {
                src: r.u32()?,
                dst: r.u32()?,
                seq: r.u64()?,
            }),
            kind::NACK_DATA => Msg::NackData(DataAck {
                src: r.u32()?,
                dst: r.u32()?,
                seq: r.u64()?,
            }),
            kind::REKEY_EDGE => {
                let e = RekeyEdge {
                    a: r.u32()?,
                    b: r.u32()?,
                    epoch: r.u32()?,
                };
                if e.a == e.b {
                    return Err(NetError::Malformed {
                        what: "rekey of a self-edge",
                    });
                }
                Msg::RekeyEdge(e)
            }
            kind::LINK_RESTORED => Msg::LinkRestored { stage: r.u32()? },
            kind::DATA_HELLO => Msg::DataHello {
                stage: r.u32()?,
                generation: r.u32()?,
            },
            kind::HEARTBEAT => Msg::Heartbeat(Heartbeat {
                stage: r.u32()?,
                generation: r.u32()?,
                seq: r.u64()?,
            }),
            kind::HEARTBEAT_ACK => Msg::HeartbeatAck(Heartbeat {
                stage: r.u32()?,
                generation: r.u32()?,
                seq: r.u64()?,
            }),
            kind::CHECKPOINT_REQ => Msg::CheckpointReq(CheckpointReq {
                barrier: r.u64()?,
                prefix: r.u64()?,
            }),
            kind::CHECKPOINT_SAVE => Msg::CheckpointSave(CheckpointSave {
                stage: r.u32()?,
                barrier: r.u64()?,
                sealed: r.bytes()?.to_vec(),
            }),
            kind::RESTORE => Msg::Restore(Restore {
                barrier: r.u64()?,
                sealed: r.bytes()?.to_vec(),
            }),
            kind::FINISH => Msg::Finish,
            kind::DONE => {
                let stage = r.u32()?;
                let n = r.u32()? as usize;
                // An honest report never exceeds one edge per possible
                // neighbour; cap before allocating.
                if n > 4096 {
                    return Err(NetError::Malformed {
                        what: "counter report with absurd edge count",
                    });
                }
                let mut edges = Vec::with_capacity(n);
                for _ in 0..n {
                    edges.push(EdgeCounterEntry {
                        a: r.u32()?,
                        b: r.u32()?,
                        epoch: r.u32()?,
                        tx_iv: r.u64()?,
                        rx_iv: r.u64()?,
                    });
                }
                Msg::Done(CounterReport {
                    stage,
                    edges,
                    retransmits: r.u64()?,
                    sentinels: r.u64()?,
                    reconnects: r.u64()?,
                })
            }
            kind::SHUTDOWN => Msg::Shutdown,
            other => return Err(NetError::UnknownKind { kind: other }),
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Msg) {
        let frame = msg.encode().unwrap();
        assert_eq!(Msg::decode(&frame).unwrap(), msg);
    }

    #[test]
    fn all_message_kinds_roundtrip() {
        roundtrip(Msg::Hello(Hello {
            stage: 3,
            generation: 2,
        }));
        roundtrip(Msg::Welcome(Welcome { stages: 4 }));
        roundtrip(Msg::Manifest(ShardManifest {
            stage: 1,
            stages: 4,
            layers: 16,
            layer_start: 4,
            layer_end: 8,
            weight_hash: 0xDEAD_BEEF,
            activation_bytes: 256 * 1024,
            micro_batches: 4,
            iterations: 3,
            cluster_seed: 0x51ce,
        }));
        roundtrip(Msg::ManifestAck(ManifestAck {
            stage: 1,
            weight_hash: 0xDEAD_BEEF,
        }));
        roundtrip(Msg::Start);
        roundtrip(Msg::Data(DataFrame {
            src: 0,
            dst: 1,
            seq: 9,
            epoch: 2,
            iteration: 1,
            micro_batch: 3,
            sealed: vec![0xAB; 48],
        }));
        roundtrip(Msg::AckData(DataAck {
            src: 0,
            dst: 1,
            seq: 9,
        }));
        roundtrip(Msg::NackData(DataAck {
            src: 1,
            dst: 2,
            seq: 10,
        }));
        roundtrip(Msg::RekeyEdge(RekeyEdge {
            a: 1,
            b: 2,
            epoch: 3,
        }));
        roundtrip(Msg::LinkRestored { stage: 2 });
        roundtrip(Msg::DataHello {
            stage: 0,
            generation: 1,
        });
        roundtrip(Msg::Heartbeat(Heartbeat {
            stage: 1,
            generation: 4,
            seq: 77,
        }));
        roundtrip(Msg::HeartbeatAck(Heartbeat {
            stage: 1,
            generation: 4,
            seq: 77,
        }));
        roundtrip(Msg::CheckpointReq(CheckpointReq {
            barrier: 3,
            prefix: 12,
        }));
        roundtrip(Msg::CheckpointSave(CheckpointSave {
            stage: 2,
            barrier: 3,
            sealed: vec![0xCD; 64],
        }));
        roundtrip(Msg::Restore(Restore {
            barrier: 3,
            sealed: Vec::new(),
        }));
        roundtrip(Msg::Finish);
        roundtrip(Msg::Done(CounterReport {
            stage: 2,
            edges: vec![EdgeCounterEntry {
                a: 1,
                b: 2,
                epoch: 1,
                tx_iv: 13,
                rx_iv: 13,
            }],
            retransmits: 2,
            sentinels: 1,
            reconnects: 1,
        }));
        roundtrip(Msg::Shutdown);
    }

    #[test]
    fn invalid_manifest_geometry_rejects() {
        let mut m = ShardManifest {
            stage: 4,
            stages: 4,
            layers: 16,
            layer_start: 0,
            layer_end: 4,
            weight_hash: 0,
            activation_bytes: 1,
            micro_batches: 1,
            iterations: 1,
            cluster_seed: 0,
        };
        // stage >= stages: encode succeeds (pure data) but decode rejects.
        let frame = Msg::Manifest(m).encode().unwrap();
        assert!(matches!(
            Msg::decode(&frame),
            Err(NetError::Malformed { .. })
        ));
        m.stage = 0;
        m.layer_end = 17;
        let frame = Msg::Manifest(m).encode().unwrap();
        assert!(matches!(
            Msg::decode(&frame),
            Err(NetError::Malformed { .. })
        ));
    }

    #[test]
    fn unknown_kind_rejects() {
        let frame = crate::frame::encode_frame(0x7F, &[]).unwrap();
        assert!(matches!(
            Msg::decode(&frame),
            Err(NetError::UnknownKind { kind: 0x7F })
        ));
    }

    #[test]
    fn short_payload_rejects() {
        let frame = crate::frame::encode_frame(kind::HELLO, &[1, 2]).unwrap();
        assert!(matches!(
            Msg::decode(&frame),
            Err(NetError::Truncated { .. })
        ));
    }

    #[test]
    fn long_payload_rejects() {
        let mut body = 5u32.to_le_bytes().to_vec();
        body.extend_from_slice(&0u32.to_le_bytes());
        body.push(0xFF);
        let frame = crate::frame::encode_frame(kind::HELLO, &body).unwrap();
        assert!(matches!(
            Msg::decode(&frame),
            Err(NetError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn tuning_defaults_match_the_module_constants() {
        let t = NetTuning::from_lookup(|_| None);
        assert_eq!(t, NetTuning::default());
        assert_eq!(t.resend_after, RESEND_AFTER);
        assert_eq!(t.heartbeat_interval, HEARTBEAT_INTERVAL);
        assert!(t.suspect_after < t.dead_after);
    }

    #[test]
    fn tuning_lookup_overrides_and_ignores_garbage() {
        let t = NetTuning::from_lookup(|key| match key {
            "PIPELLM_RESEND_AFTER_MS" => Some("75".to_string()),
            "PIPELLM_HEARTBEAT_MS" => Some(" 20 ".to_string()),
            "PIPELLM_DEAD_AFTER_MS" => Some("not-a-number".to_string()),
            "PIPELLM_CHECKPOINT_EVERY" => Some("0".to_string()),
            "PIPELLM_MAX_RETRIES" => Some("9".to_string()),
            _ => None,
        });
        assert_eq!(t.resend_after, Duration::from_millis(75));
        assert_eq!(t.heartbeat_interval, Duration::from_millis(20));
        // Unparsable values keep the default.
        assert_eq!(t.dead_after, DEAD_AFTER);
        // A zero barrier stride would never checkpoint; clamped to 1.
        assert_eq!(t.checkpoint_every, 1);
        assert_eq!(t.max_retries, 9);
    }
}
