//! The control- and data-plane messages riding the frame format.
//!
//! # Handshake sequence
//!
//! ```text
//! worker s                         orchestrator
//!    | -- control: Hello{stage:s} ------> |   (version checked by framing)
//!    | <------ Welcome{stages:N} -------- |
//!    | -- data:   DataHello{stage:s} ---> |   (second connection)
//!    | <------ Manifest{shard} ---------- |
//!    | -- ManifestAck{weight_hash} -----> |   (hash must match)
//!    | <------ Start -------------------- |
//!    |        ... sealed data ...         |
//!    | <------ Finish -------------------- |
//!    | -- Done{edge counters} ----------> |   (lockstep audit)
//!    | <------ Shutdown ------------------ |
//! ```
//!
//! # Shard manifest
//!
//! The [`ShardManifest`] tells a worker everything it needs to stand up
//! its stage: the layer range it owns, the expected weight hash for that
//! shard ([`pipellm::partition::stage_weight_hash`]), the run geometry
//! (micro-batches, iterations, activation size), and the cluster seed from
//! which the worker derives — locally, never from the wire — its edge and
//! host-channel key roots.
//!
//! Every encoder returns a complete frame ([`Msg::encode`]); every decoder
//! consumes a complete frame ([`Msg::decode`]) and rejects anything
//! structurally off with a clean [`NetError`].

use crate::error::{NetError, NetResult};
use crate::frame::{decode_frame, encode_frame, Reader, Writer};

/// Protocol version spoken by this build; carried in every frame header.
pub const PROTO_VERSION: u8 = 1;

/// Node id of the orchestrator/host in `src`/`dst` fields and edge ids.
pub const HOST_NODE: u32 = u32::MAX;

/// Frame kind bytes.
mod kind {
    pub const HELLO: u8 = 0x01;
    pub const WELCOME: u8 = 0x02;
    pub const MANIFEST: u8 = 0x03;
    pub const MANIFEST_ACK: u8 = 0x04;
    pub const START: u8 = 0x05;
    pub const DATA: u8 = 0x10;
    pub const ACK_DATA: u8 = 0x11;
    pub const NACK_DATA: u8 = 0x12;
    pub const REKEY_EDGE: u8 = 0x13;
    pub const LINK_RESTORED: u8 = 0x14;
    pub const DATA_HELLO: u8 = 0x15;
    pub const FINISH: u8 = 0x20;
    pub const DONE: u8 = 0x21;
    pub const SHUTDOWN: u8 = 0x22;
}

/// Control-channel greeting: the first frame on a worker's control
/// connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The stage this worker serves.
    pub stage: u32,
}

/// Orchestrator's reply to [`Hello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Welcome {
    /// Total pipeline stages in the deployment.
    pub stages: u32,
}

/// The shard assignment: everything a worker needs to serve its stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardManifest {
    /// The stage this manifest is for.
    pub stage: u32,
    /// Total stages.
    pub stages: u32,
    /// Total model layers.
    pub layers: u32,
    /// First layer (inclusive) of this stage's shard.
    pub layer_start: u32,
    /// One past the last layer of this stage's shard.
    pub layer_end: u32,
    /// Expected content hash of the shard's weights.
    pub weight_hash: u64,
    /// Activation payload size per micro-batch, bytes.
    pub activation_bytes: u64,
    /// Micro-batches per iteration.
    pub micro_batches: u32,
    /// Iterations to run.
    pub iterations: u32,
    /// Cluster-wide key-derivation seed; per-edge and host-channel roots
    /// are derived from it locally at each endpoint.
    pub cluster_seed: u64,
}

impl ShardManifest {
    fn validate(&self) -> NetResult<()> {
        if self.stages == 0 || self.stage >= self.stages {
            return Err(NetError::Malformed {
                what: "manifest stage out of range",
            });
        }
        if self.layer_start > self.layer_end || self.layer_end > self.layers {
            return Err(NetError::Malformed {
                what: "manifest layer range out of bounds",
            });
        }
        Ok(())
    }
}

/// Worker's acknowledgement of its manifest, echoing the weight hash it
/// computed locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestAck {
    /// The acknowledging stage.
    pub stage: u32,
    /// Hash the worker computed over its shard.
    pub weight_hash: u64,
}

/// One sealed activation frame on a data channel.
///
/// The envelope fields (`src`, `dst`, routing metadata) travel in clear —
/// the relay needs them — but the AAD is never shipped: both the sealing
/// and the opening endpoint recompute it from the envelope they each see
/// ([`DataFrame::bind_aad`]), so a relay that rewrites any routing field
/// produces a frame that can never authenticate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFrame {
    /// Sending node ([`HOST_NODE`] for orchestrator ingress).
    pub src: u32,
    /// Receiving node ([`HOST_NODE`] for orchestrator egress).
    pub dst: u32,
    /// Per-directed-link sequence number (retransmit bookkeeping).
    pub seq: u64,
    /// Key epoch of the edge this frame was sealed under.
    pub epoch: u32,
    /// Iteration of the carried micro-batch.
    pub iteration: u32,
    /// Micro-batch index.
    pub micro_batch: u32,
    /// `ciphertext || 16-byte tag` from the edge's secure channel.
    pub sealed: Vec<u8>,
}

impl DataFrame {
    /// The canonical AAD binding of a data frame's envelope. Both the
    /// sealer and the opener derive it from the fields they each believe,
    /// so any relay tampering with the routing metadata breaks
    /// authentication.
    pub fn bind_aad(
        src: u32,
        dst: u32,
        epoch: u32,
        iteration: u32,
        micro_batch: u32,
        plaintext_len: u64,
    ) -> Vec<u8> {
        let mut w = Writer::default();
        w.u32(src);
        w.u32(dst);
        w.u32(epoch);
        w.u32(iteration);
        w.u32(micro_batch);
        w.u64(plaintext_len);
        w.0
    }
}

/// Positive or negative acknowledgement of a [`DataFrame`], routed back to
/// the sender over control channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataAck {
    /// `src` of the acknowledged frame.
    pub src: u32,
    /// `dst` of the acknowledged frame.
    pub dst: u32,
    /// Sequence number being (n)acked.
    pub seq: u64,
}

/// Orchestrator-initiated epoch bump of one edge — the fresh-IV recovery
/// step after a connection drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RekeyEdge {
    /// Lower endpoint of the edge ([`HOST_NODE`] sorts last).
    pub a: u32,
    /// Upper endpoint of the edge.
    pub b: u32,
    /// The target epoch; receivers fast-forward to it.
    pub epoch: u32,
}

/// One edge's counters in a worker's end-of-run report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeCounterEntry {
    /// Lower endpoint of the edge.
    pub a: u32,
    /// Upper endpoint of the edge.
    pub b: u32,
    /// Epoch the edge finished on.
    pub epoch: u32,
    /// The reporting node's next send IV on this edge (0 if it never
    /// sends on it).
    pub tx_iv: u64,
    /// The reporting node's next receive IV on this edge (0 if it never
    /// receives on it).
    pub rx_iv: u64,
}

/// Worker's end-of-run report: per-edge counters plus resilience tallies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterReport {
    /// The reporting stage.
    pub stage: u32,
    /// Counters of every edge the stage touches.
    pub edges: Vec<EdgeCounterEntry>,
    /// Frames this worker had to retransmit (NACK or rekey driven).
    pub retransmits: u64,
    /// Frames whose open failed and was absorbed as a sentinel.
    pub sentinels: u64,
    /// Reconnects this worker performed.
    pub reconnects: u64,
}

/// Every message in the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Control-channel greeting.
    Hello(Hello),
    /// Greeting reply.
    Welcome(Welcome),
    /// Shard assignment.
    Manifest(ShardManifest),
    /// Shard acknowledgement.
    ManifestAck(ManifestAck),
    /// All manifests acked; start serving.
    Start,
    /// A sealed activation frame.
    Data(DataFrame),
    /// Positive data acknowledgement.
    AckData(DataAck),
    /// Negative data acknowledgement (sentinel open; retransmit).
    NackData(DataAck),
    /// Epoch bump of one edge.
    RekeyEdge(RekeyEdge),
    /// A worker's data link is live again after a reconnect.
    LinkRestored {
        /// The reconnected stage.
        stage: u32,
    },
    /// Data-channel greeting identifying which stage the connection backs.
    DataHello {
        /// The connecting stage.
        stage: u32,
    },
    /// No more iterations; report counters.
    Finish,
    /// End-of-run counter report.
    Done(CounterReport),
    /// Tear the deployment down.
    Shutdown,
}

impl Msg {
    fn kind(&self) -> u8 {
        match self {
            Msg::Hello(_) => kind::HELLO,
            Msg::Welcome(_) => kind::WELCOME,
            Msg::Manifest(_) => kind::MANIFEST,
            Msg::ManifestAck(_) => kind::MANIFEST_ACK,
            Msg::Start => kind::START,
            Msg::Data(_) => kind::DATA,
            Msg::AckData(_) => kind::ACK_DATA,
            Msg::NackData(_) => kind::NACK_DATA,
            Msg::RekeyEdge(_) => kind::REKEY_EDGE,
            Msg::LinkRestored { .. } => kind::LINK_RESTORED,
            Msg::DataHello { .. } => kind::DATA_HELLO,
            Msg::Finish => kind::FINISH,
            Msg::Done(_) => kind::DONE,
            Msg::Shutdown => kind::SHUTDOWN,
        }
    }

    /// Encodes the message as one complete frame (header included).
    ///
    /// # Errors
    ///
    /// [`NetError::Oversize`] if the payload exceeds the frame cap.
    pub fn encode(&self) -> NetResult<Vec<u8>> {
        let mut w = Writer::default();
        match self {
            Msg::Hello(h) => w.u32(h.stage),
            Msg::Welcome(wl) => w.u32(wl.stages),
            Msg::Manifest(m) => {
                w.u32(m.stage);
                w.u32(m.stages);
                w.u32(m.layers);
                w.u32(m.layer_start);
                w.u32(m.layer_end);
                w.u64(m.weight_hash);
                w.u64(m.activation_bytes);
                w.u32(m.micro_batches);
                w.u32(m.iterations);
                w.u64(m.cluster_seed);
            }
            Msg::ManifestAck(a) => {
                w.u32(a.stage);
                w.u64(a.weight_hash);
            }
            Msg::Start | Msg::Finish | Msg::Shutdown => {}
            Msg::Data(d) => {
                w.u32(d.src);
                w.u32(d.dst);
                w.u64(d.seq);
                w.u32(d.epoch);
                w.u32(d.iteration);
                w.u32(d.micro_batch);
                w.bytes(&d.sealed);
            }
            Msg::AckData(a) | Msg::NackData(a) => {
                w.u32(a.src);
                w.u32(a.dst);
                w.u64(a.seq);
            }
            Msg::RekeyEdge(r) => {
                w.u32(r.a);
                w.u32(r.b);
                w.u32(r.epoch);
            }
            Msg::LinkRestored { stage } | Msg::DataHello { stage } => w.u32(*stage),
            Msg::Done(d) => {
                w.u32(d.stage);
                w.u32(d.edges.len() as u32);
                for e in &d.edges {
                    w.u32(e.a);
                    w.u32(e.b);
                    w.u32(e.epoch);
                    w.u64(e.tx_iv);
                    w.u64(e.rx_iv);
                }
                w.u64(d.retransmits);
                w.u64(d.sentinels);
                w.u64(d.reconnects);
            }
        }
        encode_frame(self.kind(), &w.0)
    }

    /// Decodes one complete frame into a message.
    ///
    /// # Errors
    ///
    /// Every framing error of [`decode_frame`], plus
    /// [`NetError::UnknownKind`], [`NetError::Malformed`],
    /// [`NetError::Truncated`] and [`NetError::TrailingBytes`] for payloads
    /// that do not parse exactly.
    pub fn decode(frame: &[u8]) -> NetResult<Msg> {
        let (kind_byte, payload) = decode_frame(frame)?;
        let mut r = Reader::new(payload);
        let msg = match kind_byte {
            kind::HELLO => Msg::Hello(Hello { stage: r.u32()? }),
            kind::WELCOME => {
                let stages = r.u32()?;
                if stages == 0 {
                    return Err(NetError::Malformed {
                        what: "welcome with zero stages",
                    });
                }
                Msg::Welcome(Welcome { stages })
            }
            kind::MANIFEST => {
                let m = ShardManifest {
                    stage: r.u32()?,
                    stages: r.u32()?,
                    layers: r.u32()?,
                    layer_start: r.u32()?,
                    layer_end: r.u32()?,
                    weight_hash: r.u64()?,
                    activation_bytes: r.u64()?,
                    micro_batches: r.u32()?,
                    iterations: r.u32()?,
                    cluster_seed: r.u64()?,
                };
                m.validate()?;
                Msg::Manifest(m)
            }
            kind::MANIFEST_ACK => Msg::ManifestAck(ManifestAck {
                stage: r.u32()?,
                weight_hash: r.u64()?,
            }),
            kind::START => Msg::Start,
            kind::DATA => Msg::Data(DataFrame {
                src: r.u32()?,
                dst: r.u32()?,
                seq: r.u64()?,
                epoch: r.u32()?,
                iteration: r.u32()?,
                micro_batch: r.u32()?,
                sealed: r.bytes()?.to_vec(),
            }),
            kind::ACK_DATA => Msg::AckData(DataAck {
                src: r.u32()?,
                dst: r.u32()?,
                seq: r.u64()?,
            }),
            kind::NACK_DATA => Msg::NackData(DataAck {
                src: r.u32()?,
                dst: r.u32()?,
                seq: r.u64()?,
            }),
            kind::REKEY_EDGE => {
                let e = RekeyEdge {
                    a: r.u32()?,
                    b: r.u32()?,
                    epoch: r.u32()?,
                };
                if e.a == e.b {
                    return Err(NetError::Malformed {
                        what: "rekey of a self-edge",
                    });
                }
                Msg::RekeyEdge(e)
            }
            kind::LINK_RESTORED => Msg::LinkRestored { stage: r.u32()? },
            kind::DATA_HELLO => Msg::DataHello { stage: r.u32()? },
            kind::FINISH => Msg::Finish,
            kind::DONE => {
                let stage = r.u32()?;
                let n = r.u32()? as usize;
                // An honest report never exceeds one edge per possible
                // neighbour; cap before allocating.
                if n > 4096 {
                    return Err(NetError::Malformed {
                        what: "counter report with absurd edge count",
                    });
                }
                let mut edges = Vec::with_capacity(n);
                for _ in 0..n {
                    edges.push(EdgeCounterEntry {
                        a: r.u32()?,
                        b: r.u32()?,
                        epoch: r.u32()?,
                        tx_iv: r.u64()?,
                        rx_iv: r.u64()?,
                    });
                }
                Msg::Done(CounterReport {
                    stage,
                    edges,
                    retransmits: r.u64()?,
                    sentinels: r.u64()?,
                    reconnects: r.u64()?,
                })
            }
            kind::SHUTDOWN => Msg::Shutdown,
            other => return Err(NetError::UnknownKind { kind: other }),
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Msg) {
        let frame = msg.encode().unwrap();
        assert_eq!(Msg::decode(&frame).unwrap(), msg);
    }

    #[test]
    fn all_message_kinds_roundtrip() {
        roundtrip(Msg::Hello(Hello { stage: 3 }));
        roundtrip(Msg::Welcome(Welcome { stages: 4 }));
        roundtrip(Msg::Manifest(ShardManifest {
            stage: 1,
            stages: 4,
            layers: 16,
            layer_start: 4,
            layer_end: 8,
            weight_hash: 0xDEAD_BEEF,
            activation_bytes: 256 * 1024,
            micro_batches: 4,
            iterations: 3,
            cluster_seed: 0x51ce,
        }));
        roundtrip(Msg::ManifestAck(ManifestAck {
            stage: 1,
            weight_hash: 0xDEAD_BEEF,
        }));
        roundtrip(Msg::Start);
        roundtrip(Msg::Data(DataFrame {
            src: 0,
            dst: 1,
            seq: 9,
            epoch: 2,
            iteration: 1,
            micro_batch: 3,
            sealed: vec![0xAB; 48],
        }));
        roundtrip(Msg::AckData(DataAck {
            src: 0,
            dst: 1,
            seq: 9,
        }));
        roundtrip(Msg::NackData(DataAck {
            src: 1,
            dst: 2,
            seq: 10,
        }));
        roundtrip(Msg::RekeyEdge(RekeyEdge {
            a: 1,
            b: 2,
            epoch: 3,
        }));
        roundtrip(Msg::LinkRestored { stage: 2 });
        roundtrip(Msg::DataHello { stage: 0 });
        roundtrip(Msg::Finish);
        roundtrip(Msg::Done(CounterReport {
            stage: 2,
            edges: vec![EdgeCounterEntry {
                a: 1,
                b: 2,
                epoch: 1,
                tx_iv: 13,
                rx_iv: 13,
            }],
            retransmits: 2,
            sentinels: 1,
            reconnects: 1,
        }));
        roundtrip(Msg::Shutdown);
    }

    #[test]
    fn invalid_manifest_geometry_rejects() {
        let mut m = ShardManifest {
            stage: 4,
            stages: 4,
            layers: 16,
            layer_start: 0,
            layer_end: 4,
            weight_hash: 0,
            activation_bytes: 1,
            micro_batches: 1,
            iterations: 1,
            cluster_seed: 0,
        };
        // stage >= stages: encode succeeds (pure data) but decode rejects.
        let frame = Msg::Manifest(m).encode().unwrap();
        assert!(matches!(
            Msg::decode(&frame),
            Err(NetError::Malformed { .. })
        ));
        m.stage = 0;
        m.layer_end = 17;
        let frame = Msg::Manifest(m).encode().unwrap();
        assert!(matches!(
            Msg::decode(&frame),
            Err(NetError::Malformed { .. })
        ));
    }

    #[test]
    fn unknown_kind_rejects() {
        let frame = crate::frame::encode_frame(0x7F, &[]).unwrap();
        assert!(matches!(
            Msg::decode(&frame),
            Err(NetError::UnknownKind { kind: 0x7F })
        ));
    }

    #[test]
    fn short_payload_rejects() {
        let frame = crate::frame::encode_frame(kind::HELLO, &[1, 2]).unwrap();
        assert!(matches!(
            Msg::decode(&frame),
            Err(NetError::Truncated { .. })
        ));
    }

    #[test]
    fn long_payload_rejects() {
        let mut body = 5u32.to_le_bytes().to_vec();
        body.push(0xFF);
        let frame = crate::frame::encode_frame(kind::HELLO, &body).unwrap();
        assert!(matches!(
            Msg::decode(&frame),
            Err(NetError::TrailingBytes { extra: 1 })
        ));
    }
}
