//! AEAD-sealed worker recovery checkpoints.
//!
//! At every barrier (see [`crate::proto::CheckpointReq`]) a worker seals
//! its recovery state — processed-set, retained outputs, and per-edge
//! epoch/IV positions — and ships the blob to the orchestrator. The
//! orchestrator is outside the trust boundary: it stores and relays the
//! checkpoint but cannot read or forge it, because the sealing key is
//! derived from the cluster seed, which workers derive locally and never
//! put on the wire.
//!
//! # Key schedule
//!
//! Each checkpoint is sealed under a **one-shot** channel whose key root
//! is `derive_subseed(derive_subseed(derive_subseed(cluster_seed,
//! CHECKPOINT_TAG), stage), barrier)`. Folding the barrier number into
//! the key gives every checkpoint a fresh key stream (no IV management
//! across seals — each blob is IV 1 of its own key), and makes staleness
//! self-enforcing: a blob sealed at barrier 4 cannot be opened by a
//! restore claiming barrier 5, and vice versa, because the keys differ.
//!
//! # Failure behaviour
//!
//! Truncation, bit flips, tag tampering, or a barrier/stage mismatch all
//! fail authentication (or the post-open validation) and return a clean
//! [`NetError`] — no panic, and under the sentinel discipline of the
//! crypto layer no plaintext or decryption intermediate ever escapes a
//! failed open.

use crate::error::{NetError, NetResult};
use crate::frame::{Reader, Writer};
use crate::proto::EdgeCounterEntry;
use pipellm_crypto::channel::{ChannelKeys, SealedMessage, SecureChannel};
use pipellm_crypto::session::derive_subseed;
use std::sync::Arc;

/// Domain-separation tag of the checkpoint key schedule ("ckpt").
const CHECKPOINT_TAG: u64 = 0x636B_7074;

/// Upper bound on retained outputs in one checkpoint; an honest worker
/// retains at most one output per uncommitted `(iteration, micro_batch)`.
const MAX_RETAINED: usize = 1 << 16;

/// The global completion index of one output: barriers, admission windows
/// and checkpoint garbage collection all order work by this.
pub fn global_index(iteration: u32, micro_batch: u32, micro_batches: u32) -> u64 {
    u64::from(iteration) * u64::from(micro_batches.max(1)) + u64::from(micro_batch)
}

/// One worker's recovery state at a checkpoint barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointState {
    /// The checkpointing stage.
    pub stage: u32,
    /// The incarnation that sealed this state.
    pub generation: u32,
    /// The barrier this state belongs to.
    pub barrier: u64,
    /// Every `(iteration, micro_batch)` this stage has processed.
    pub processed: Vec<(u32, u32)>,
    /// Retained outputs not yet committed at the orchestrator:
    /// `(iteration, micro_batch, output_plaintext)`.
    pub retained: Vec<(u32, u32, Vec<u8>)>,
    /// Per-edge epoch and IV positions at seal time.
    pub edges: Vec<EdgeCounterEntry>,
}

impl CheckpointState {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.u32(self.stage);
        w.u32(self.generation);
        w.u64(self.barrier);
        w.u32(self.processed.len() as u32);
        for &(it, mb) in &self.processed {
            w.u32(it);
            w.u32(mb);
        }
        w.u32(self.retained.len() as u32);
        for (it, mb, out) in &self.retained {
            w.u32(*it);
            w.u32(*mb);
            w.bytes(out);
        }
        w.u32(self.edges.len() as u32);
        for e in &self.edges {
            w.u32(e.a);
            w.u32(e.b);
            w.u32(e.epoch);
            w.u64(e.tx_iv);
            w.u64(e.rx_iv);
        }
        w.0
    }

    fn decode(payload: &[u8]) -> NetResult<CheckpointState> {
        let mut r = Reader::new(payload);
        let stage = r.u32()?;
        let generation = r.u32()?;
        let barrier = r.u64()?;
        let n = r.u32()? as usize;
        if n > MAX_RETAINED {
            return Err(NetError::Malformed {
                what: "checkpoint with absurd processed count",
            });
        }
        let mut processed = Vec::with_capacity(n);
        for _ in 0..n {
            processed.push((r.u32()?, r.u32()?));
        }
        let n = r.u32()? as usize;
        if n > MAX_RETAINED {
            return Err(NetError::Malformed {
                what: "checkpoint with absurd retained count",
            });
        }
        let mut retained = Vec::with_capacity(n);
        for _ in 0..n {
            retained.push((r.u32()?, r.u32()?, r.bytes()?.to_vec()));
        }
        let n = r.u32()? as usize;
        if n > 4096 {
            return Err(NetError::Malformed {
                what: "checkpoint with absurd edge count",
            });
        }
        let mut edges = Vec::with_capacity(n);
        for _ in 0..n {
            edges.push(EdgeCounterEntry {
                a: r.u32()?,
                b: r.u32()?,
                epoch: r.u32()?,
                tx_iv: r.u64()?,
                rx_iv: r.u64()?,
            });
        }
        r.finish()?;
        Ok(CheckpointState {
            stage,
            generation,
            barrier,
            processed,
            retained,
            edges,
        })
    }
}

/// The one-shot channel sealing/opening checkpoints of `(stage, barrier)`.
fn checkpoint_channel(cluster_seed: u64, stage: u32, barrier: u64) -> SecureChannel {
    let root = derive_subseed(cluster_seed, CHECKPOINT_TAG);
    let per_stage = derive_subseed(root, u64::from(stage));
    let per_barrier = derive_subseed(per_stage, barrier);
    SecureChannel::new(ChannelKeys::from_seed(per_barrier))
}

/// The AAD binding a checkpoint to its stage and barrier.
fn checkpoint_aad(stage: u32, barrier: u64) -> Vec<u8> {
    let mut w = Writer::default();
    w.u32(0x434B_5054); // "CKPT"
    w.u32(stage);
    w.u64(barrier);
    w.0
}

/// Seals `state` into an opaque blob only a holder of the cluster seed
/// can open.
///
/// # Errors
///
/// [`NetError::Crypto`] if sealing fails (practically unreachable: the
/// one-shot channel starts at IV 1).
pub fn seal_checkpoint(cluster_seed: u64, state: &CheckpointState) -> NetResult<Vec<u8>> {
    let mut channel = checkpoint_channel(cluster_seed, state.stage, state.barrier);
    let aad = checkpoint_aad(state.stage, state.barrier);
    let sealed = channel
        .host_mut()
        .tx_mut()
        .seal_with_aad(&aad, &state.encode())?;
    Ok(sealed.bytes)
}

/// Opens and validates a sealed checkpoint for exactly `(stage,
/// barrier)`.
///
/// # Errors
///
/// - [`NetError::Crypto`] if authentication fails — truncation, bit
///   flips, a tampered tag, or a blob sealed for any other stage or
///   barrier (their keys and AAD differ);
/// - [`NetError::Malformed`] / [`NetError::Truncated`] if the plaintext
///   does not decode exactly;
/// - [`NetError::Protocol`] if the decoded state contradicts the claimed
///   stage or barrier.
pub fn open_checkpoint(
    cluster_seed: u64,
    stage: u32,
    barrier: u64,
    sealed: &[u8],
) -> NetResult<CheckpointState> {
    let mut channel = checkpoint_channel(cluster_seed, stage, barrier);
    let aad = checkpoint_aad(stage, barrier);
    let message = SealedMessage {
        iv: channel.device().rx().next_iv(),
        aad: Arc::from(aad.into_boxed_slice()),
        bytes: sealed.to_vec(),
    };
    let plain = channel.device_mut().rx_mut().open(&message)?;
    let state = CheckpointState::decode(&plain)?;
    if state.stage != stage || state.barrier != barrier {
        return Err(NetError::Protocol {
            detail: format!(
                "checkpoint body claims stage {} barrier {}, envelope says stage {stage} barrier {barrier}",
                state.stage, state.barrier
            ),
        });
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> CheckpointState {
        CheckpointState {
            stage: 1,
            generation: 2,
            barrier: 3,
            processed: vec![(0, 0), (0, 1), (1, 0)],
            retained: vec![(1, 0, vec![0xA5; 32])],
            edges: vec![EdgeCounterEntry {
                a: 0,
                b: 1,
                epoch: 2,
                tx_iv: 7,
                rx_iv: 5,
            }],
        }
    }

    #[test]
    fn seal_open_roundtrips() {
        let state = sample_state();
        let sealed = seal_checkpoint(0x5EED, &state).unwrap();
        let opened = open_checkpoint(0x5EED, 1, 3, &sealed).unwrap();
        assert_eq!(opened, state);
    }

    #[test]
    fn sealed_blob_is_not_plaintext() {
        let state = sample_state();
        let sealed = seal_checkpoint(0x5EED, &state).unwrap();
        // The retained output bytes must not appear in the blob.
        assert!(!sealed.windows(8).any(|w| w == [0xA5; 8]));
    }

    #[test]
    fn wrong_barrier_or_stage_refuses() {
        let state = sample_state();
        let sealed = seal_checkpoint(0x5EED, &state).unwrap();
        // A stale blob replayed under a newer barrier's restore — and the
        // reverse — both fail: the per-barrier key schedule differs.
        assert!(open_checkpoint(0x5EED, 1, 4, &sealed).is_err());
        assert!(open_checkpoint(0x5EED, 1, 2, &sealed).is_err());
        assert!(open_checkpoint(0x5EED, 2, 3, &sealed).is_err());
        // And so does the wrong cluster seed entirely.
        assert!(open_checkpoint(0xBAD, 1, 3, &sealed).is_err());
    }

    #[test]
    fn tampered_blob_refuses_cleanly() {
        let state = sample_state();
        let sealed = seal_checkpoint(0x5EED, &state).unwrap();
        for flip in [0, sealed.len() / 2, sealed.len() - 1] {
            let mut bad = sealed.clone();
            bad[flip] ^= 0x01;
            assert!(open_checkpoint(0x5EED, 1, 3, &bad).is_err());
        }
        assert!(open_checkpoint(0x5EED, 1, 3, &sealed[..sealed.len() - 1]).is_err());
        assert!(open_checkpoint(0x5EED, 1, 3, &[]).is_err());
    }
}
