//! The common driver interface over every serving engine.
//!
//! The three engines (FlexGen-like offloading, vLLM-like serving,
//! PEFT-like fine-tuning) used to expose three ad-hoc entry points
//! (`run()`, `serve(&trace)`, `train(&dataset)`), so every experiment
//! harness and driver re-implemented the dispatch. [`ServingEngine`]
//! unifies them: an engine carries its queued workload and runs it to
//! completion, returning a [`ServingReport`]. The [`MultiTenantDriver`]
//! (in [`crate::multitenant`]) and the bench harness both program against
//! this trait only.
//!
//! [`MultiTenantDriver`]: crate::multitenant::MultiTenantDriver

use crate::report::ServingReport;
use pipellm_gpu::GpuError;

/// An LLM system that can run its configured workload to completion on
/// whatever [`pipellm_gpu::GpuRuntime`] it was loaded over.
pub trait ServingEngine {
    /// Engine-family name ("FlexGen", "vLLM", "PEFT").
    fn engine_name(&self) -> &'static str;

    /// Human-readable workload description.
    fn describe(&self) -> String;

    /// Runs the queued workload to completion.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (none are expected for valid configs).
    fn run_to_completion(&mut self) -> Result<ServingReport, GpuError>;
}
