//! Orchestrator-level resilience counters.
//!
//! The serving engines absorb injected (or real) failures with a layered
//! recovery protocol — bounded retries with jittered exponential backoff
//! for faulted transfers, per-op timeouts for hung stages, restart plus
//! forced rekey for killed stages, and mid-stream session replacement.
//! [`ResilienceStats`] tallies what that machinery actually did during a
//! run, so chaos benchmarks can report *how* a system survived, not just
//! that it finished.

use std::fmt;
use std::time::Duration;

/// What the recovery protocol did during one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Faulted transfers re-issued at a fresh IV after a backoff.
    pub retries: u64,
    /// Total simulated time spent waiting out retry backoffs.
    pub retry_backoff: Duration,
    /// Retry budgets exhausted: the final attempt ran with injection
    /// suppressed (chaos proves recovery works, not that an unbounded
    /// fault stream eventually wins).
    pub escalations: u64,
    /// Hung stages cut short by the per-op timeout (watchdog fired and
    /// the stage executor was restarted).
    pub timeouts: u64,
    /// Stage hangs observed (including those that cleared on their own
    /// before the watchdog fired).
    pub stage_hangs: u64,
    /// Stage crashes absorbed: executor restarted, adjacent edges rekeyed
    /// before traffic resumed.
    pub stage_kills: u64,
    /// Serving sessions replaced mid-stream (close + reopen + reroute).
    pub session_churns: u64,
    /// Forced epoch bumps (after a stage kill, or an injected rekey
    /// racing the pipeline's speculative state).
    pub forced_rekeys: u64,
}

impl ResilienceStats {
    /// Total recovery actions of any kind.
    pub fn total_events(&self) -> u64 {
        self.retries
            + self.escalations
            + self.timeouts
            + self.stage_hangs
            + self.stage_kills
            + self.session_churns
            + self.forced_rekeys
    }
}

impl std::ops::AddAssign for ResilienceStats {
    fn add_assign(&mut self, rhs: Self) {
        self.retries += rhs.retries;
        self.retry_backoff += rhs.retry_backoff;
        self.escalations += rhs.escalations;
        self.timeouts += rhs.timeouts;
        self.stage_hangs += rhs.stage_hangs;
        self.stage_kills += rhs.stage_kills;
        self.session_churns += rhs.session_churns;
        self.forced_rekeys += rhs.forced_rekeys;
    }
}

impl fmt::Display for ResilienceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retries={} (backoff {:?}) escalations={} timeouts={} \
             hangs={} kills={} churns={} rekeys={}",
            self.retries,
            self.retry_backoff,
            self.escalations,
            self.timeouts,
            self.stage_hangs,
            self.stage_kills,
            self.session_churns,
            self.forced_rekeys,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_accumulation() {
        let mut a = ResilienceStats {
            retries: 3,
            retry_backoff: Duration::from_micros(10),
            escalations: 1,
            ..Default::default()
        };
        let b = ResilienceStats {
            timeouts: 2,
            retry_backoff: Duration::from_micros(5),
            ..Default::default()
        };
        a += b;
        assert_eq!(a.retries, 3);
        assert_eq!(a.timeouts, 2);
        assert_eq!(a.retry_backoff, Duration::from_micros(15));
        assert_eq!(a.total_events(), 6);
    }

    #[test]
    fn display_names_every_counter() {
        let text = ResilienceStats::default().to_string();
        for key in [
            "retries=",
            "escalations=",
            "timeouts=",
            "hangs=",
            "kills=",
            "churns=",
            "rekeys=",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
