//! A vLLM-like serving engine with paged KV cache and request-wise swapping.
//!
//! vLLM (Kwon et al., SOSP'23) keeps all model weights on the GPU and
//! handles memory pressure from the KV cache of concurrent requests by
//! *swapping*: when the block pool runs dry, the lowest-priority running
//! request is preempted and its KV blocks are copied to host memory; it is
//! reloaded when memory frees up. Because the first request evicted is the
//! last reloaded, the swap-in sequence is **LIFO** (paper §5.1, Figure 5b).
//! A layer-wise **FIFO** policy is also provided for the ablation.
//!
//! The engine models what the paper's evaluation measures:
//!
//! - continuous batching over Poisson request arrivals;
//! - parallel sampling (2/4/6 output sequences per request) sharing prompt
//!   KV;
//! - per-step swap-ins on the critical path: the decode step cannot start
//!   until `synchronize` reports the swapped-in KV has landed — with native
//!   CC that includes on-the-fly encryption, which is precisely the
//!   bottleneck PipeLLM removes;
//! - the vLLM metric: *normalized latency* (mean request end-to-end latency
//!   divided by its output length), reported against request rate.

use crate::engine::ServingEngine;
use crate::report::{ServingReport, SwapPolicy};
use pipellm_gpu::memory::{DevicePtr, HostRegion, Payload};
use pipellm_gpu::runtime::{GpuRuntime, SessionedRuntime};
use pipellm_gpu::{GpuError, SessionId};
use pipellm_llm::{GpuComputeModel, ModelSpec};
use pipellm_sim::events::EventQueue;
use pipellm_sim::metrics::Samples;
use pipellm_sim::time::SimTime;
use pipellm_workloads::Request;
use std::collections::VecDeque;

/// Configuration for a vLLM-like serving run.
#[derive(Debug, Clone)]
pub struct VllmConfig {
    /// Model (weights stay fully resident on the GPU).
    pub model: ModelSpec,
    /// GPU compute calibration.
    pub gpu: GpuComputeModel,
    /// Tokens per KV block (vLLM default: 16).
    pub block_tokens: u32,
    /// Device bytes reserved for activations/workspace.
    pub workspace_bytes: u64,
    /// Maximum sequences decoded per step.
    pub max_batch_seqs: usize,
    /// Swap policy.
    pub policy: SwapPolicy,
    /// Maximum staging chunks ("swap pages") a preempted group's KV is
    /// split into. Each page covers a whole number of KV blocks and moves
    /// as one sealed transfer, so the encrypted swap pipeline sees a
    /// paged stream it can predict per page.
    pub swap_pages: usize,
}

impl VllmConfig {
    /// Paper defaults for a given model.
    pub fn new(model: ModelSpec) -> Self {
        VllmConfig {
            model,
            gpu: GpuComputeModel::h100(),
            block_tokens: 16,
            workspace_bytes: 2_000_000_000,
            max_batch_seqs: 256,
            policy: SwapPolicy::RequestLifo,
            swap_pages: 4,
        }
    }

    /// Bytes of one KV block (all layers, `block_tokens` tokens).
    pub fn block_bytes(&self) -> u64 {
        u64::from(self.block_tokens) * self.model.kv_bytes_per_token()
    }
}

/// A request group: one prompt plus `parallel` sampled output sequences
/// sharing the prompt's KV blocks.
#[derive(Debug, Clone)]
struct Group {
    request: Request,
    /// Tokens generated so far in each parallel sequence.
    generated: u32,
    /// GPU blocks currently held.
    blocks: u64,
    /// Host staging chunks holding the paged KV while swapped out, in
    /// eviction order (reloads run in reverse — LIFO).
    swap_chunks: Vec<HostRegion>,
    /// Whether the prompt has been prefilled.
    prefilled: bool,
    /// Guard against swap thrashing within one step.
    arrived_this_step: bool,
}

impl Group {
    fn new(request: Request) -> Self {
        Group {
            request,
            generated: 0,
            blocks: 0,
            swap_chunks: Vec::new(),
            prefilled: false,
            arrived_this_step: false,
        }
    }

    fn prompt_blocks(&self, block_tokens: u32) -> u64 {
        u64::from(self.request.prompt_tokens).div_ceil(u64::from(block_tokens))
    }

    /// Blocks needed on GPU right now (shared prompt + per-sequence output).
    fn blocks_needed(&self, block_tokens: u32) -> u64 {
        let out = u64::from(self.generated).div_ceil(u64::from(block_tokens));
        self.prompt_blocks(block_tokens) + out * u64::from(self.request.parallel)
    }

    /// Blocks needed after generating one more token per sequence.
    fn blocks_after_step(&self, block_tokens: u32) -> u64 {
        let out = (u64::from(self.generated) + 1).div_ceil(u64::from(block_tokens));
        self.prompt_blocks(block_tokens) + out * u64::from(self.request.parallel)
    }

    /// Context tokens read by one decode step across all parallel sequences.
    fn context_tokens(&self) -> u64 {
        u64::from(self.request.parallel)
            * (u64::from(self.request.prompt_tokens) + u64::from(self.generated))
    }

    fn done(&self) -> bool {
        self.generated >= self.request.output_tokens
    }
}

/// The serving engine.
#[derive(Debug)]
pub struct VllmEngine<R: GpuRuntime> {
    rt: R,
    config: VllmConfig,
    total_blocks: u64,
    free_blocks: u64,
    /// Blocks granted beyond the pool by the progress-guarantee valve
    /// (overcommit debt). Returned blocks pay this down before refilling
    /// the free pool, so `free + running == total + debt` holds exactly —
    /// no clamping that would mask accounting drift.
    overcommit_blocks: u64,
    /// Times the progress-guarantee valve opened.
    overcommits: u64,
    arrivals: EventQueue<Request>,
    waiting: VecDeque<Group>,
    running: Vec<Group>,
    /// Swapped-out groups; reload order depends on the policy.
    swapped: Vec<Group>,
    latencies: Samples,
    completed: u64,
    preemptions: u64,
    trace_label: String,
    /// Requests queued for [`ServingEngine::run_to_completion`].
    workload: Vec<Request>,
}

impl<R: GpuRuntime> VllmEngine<R> {
    /// Loads the model onto the GPU and sizes the KV block pool from the
    /// remaining capacity.
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] if the weights do not fit (vLLM does not
    /// offload weights; use the FlexGen engine for that regime).
    pub fn load(
        mut rt: R,
        config: VllmConfig,
        trace_label: impl Into<String>,
    ) -> Result<Self, GpuError> {
        rt.alloc_device(config.model.weight_bytes())?;
        rt.alloc_device(config.workspace_bytes.max(1))?;
        let kv_budget = rt.device_free_bytes();
        let total_blocks = kv_budget / config.block_bytes();
        Ok(VllmEngine {
            rt,
            config,
            total_blocks,
            free_blocks: total_blocks,
            overcommit_blocks: 0,
            overcommits: 0,
            arrivals: EventQueue::new(),
            waiting: VecDeque::new(),
            running: Vec::new(),
            swapped: Vec::new(),
            latencies: Samples::new(),
            completed: 0,
            preemptions: 0,
            trace_label: trace_label.into(),
            workload: Vec::new(),
        })
    }

    /// Queues requests for a later [`ServingEngine::run_to_completion`].
    pub fn queue_workload(&mut self, trace: &[Request]) {
        self.workload.extend_from_slice(trace);
    }

    /// Total KV blocks in the GPU pool.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Free blocks in the GPU pool.
    pub fn free_blocks(&self) -> u64 {
        self.free_blocks
    }

    /// Blocks currently granted beyond the pool (overcommit debt).
    pub fn overcommit_blocks(&self) -> u64 {
        self.overcommit_blocks
    }

    /// Times the progress-guarantee overcommit valve has opened.
    pub fn overcommit_events(&self) -> u64 {
        self.overcommits
    }

    /// Blocks currently held by running groups.
    pub fn running_blocks(&self) -> u64 {
        self.running.iter().map(|g| g.blocks).sum()
    }

    /// Grants `n` blocks even when the pool is dry, recording the excess
    /// as overcommit debt (the progress-guarantee valve; real systems
    /// recompute the KV instead).
    fn force_reserve_blocks(&mut self, n: u64) {
        let from_free = n.min(self.free_blocks);
        self.free_blocks -= from_free;
        if n > from_free {
            self.overcommit_blocks += n - from_free;
            self.overcommits += 1;
        }
    }

    /// Returns `n` blocks, paying overcommit debt before refilling the
    /// free pool.
    fn release_blocks(&mut self, n: u64) {
        let pay = n.min(self.overcommit_blocks);
        self.overcommit_blocks -= pay;
        self.free_blocks += n - pay;
    }

    /// Splits a KV footprint of `blocks` blocks into at most
    /// [`VllmConfig::swap_pages`] staging chunks of whole blocks (the
    /// last chunk takes the remainder) — the pages the encrypted swap
    /// pipeline moves as individual sealed transfers.
    fn swap_chunk_lens(&self, blocks: u64) -> Vec<u64> {
        let block_bytes = self.config.block_bytes().max(1);
        let blocks = blocks.max(1);
        let pages = self.config.swap_pages.max(1) as u64;
        let per_chunk = blocks.div_ceil(pages).max(1);
        let mut lens = Vec::new();
        let mut remaining = blocks;
        while remaining > 0 {
            let n = per_chunk.min(remaining);
            lens.push(n * block_bytes);
            remaining -= n;
        }
        lens
    }

    /// The configuration this engine was loaded with.
    pub fn config(&self) -> &VllmConfig {
        &self.config
    }

    /// The underlying runtime.
    pub fn runtime(&self) -> &R {
        &self.rt
    }

    /// Serves `trace` to completion and reports normalized latency.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (none are expected for valid configs).
    pub fn serve(&mut self, trace: &[Request]) -> Result<ServingReport, GpuError> {
        self.arrivals.extend(trace.iter().map(|r| (r.arrival, *r)));
        let mut now = SimTime::ZERO;
        while !(self.arrivals.is_empty()
            && self.waiting.is_empty()
            && self.running.is_empty()
            && self.swapped.is_empty())
        {
            now = self.step(now)?;
        }
        let stats = self.rt.io_stats();
        let total_tokens: u64 = self.completed; // groups; tokens tracked below
        let _ = total_tokens;
        Ok(ServingReport {
            system: self.rt.label().to_string(),
            workload: self.trace_label.clone(),
            finished_at: now,
            tokens_per_sec: 0.0,
            sequences_per_sec: self.completed as f64 / now.as_secs_f64().max(f64::MIN_POSITIVE),
            norm_latency_s_per_token: self.latencies.mean(),
            p99_norm_latency: self.latencies.percentile(99.0),
            completed: self.completed,
            gpu_io_stall: self.rt.gpu_io_stall(),
            io: stats,
            preemptions: self.preemptions,
        })
    }

    /// One scheduler iteration. Returns the time the step finished; always
    /// makes progress (generates a token or advances to the next arrival).
    fn step(&mut self, mut now: SimTime) -> Result<SimTime, GpuError> {
        // 1. If nothing is active, jump to the next arrival.
        if self.running.is_empty() && self.waiting.is_empty() && self.swapped.is_empty() {
            if let Some(at) = self.arrivals.peek_time() {
                now = now.max(at);
            }
        }
        // 2. Ingest due arrivals.
        while let Some((_, request)) = self.arrivals.pop_due(now) {
            self.waiting.push_back(Group::new(request));
        }
        for group in &mut self.running {
            group.arrived_this_step = false;
        }

        // 3. Resume swapped groups (policy order) while blocks allow. The
        // swap-in buffers are released only after the synchronization below:
        // an asynchronous copy may still be in flight (and with PipeLLM may
        // be suspended awaiting its IV) until then.
        let mut cpu = now;
        let mut releases: Vec<(DevicePtr, HostRegion)> = Vec::new();
        while let Some(idx) = self.next_resume_index() {
            let needed = self.swapped[idx].blocks_needed(self.config.block_tokens);
            if needed > self.free_blocks || self.running.len() >= self.config.max_batch_seqs {
                break;
            }
            // Stage the whole paged reload up front; if device memory
            // cannot hold the staging (in-flight transfers), defer the
            // resume to a later step instead of truncating the copy.
            let Some(pairs) = self.alloc_swap_in(idx)? else {
                break;
            };
            cpu = self.rt.kv_swap_in(cpu, &pairs)?;
            let mut group = self.swapped.remove(idx);
            group.swap_chunks.clear();
            releases.extend(pairs);
            self.free_blocks -= needed;
            group.blocks = needed;
            group.arrived_this_step = true;
            self.running.push(group);
        }

        // 4. Admit new requests FCFS while blocks allow; swapped groups
        // retain priority over fresh admissions.
        while self.swapped.is_empty() {
            let Some(front) = self.waiting.front() else {
                break;
            };
            let needed = front.blocks_after_step(self.config.block_tokens);
            if needed > self.free_blocks || self.running.len() >= self.config.max_batch_seqs {
                break;
            }
            let mut group = self.waiting.pop_front().expect("front exists");
            self.free_blocks -= needed;
            group.blocks = needed;
            group.arrived_this_step = true;
            self.running.push(group);
        }

        // 4b. Progress guarantee: if nothing is runnable but work exists,
        // force in one group even if accounting must overcommit — a
        // safety valve real systems handle by recomputation.
        if self.running.is_empty() {
            if let Some(at) = self.arrivals.peek_time() {
                if self.waiting.is_empty() && self.swapped.is_empty() {
                    return Ok(now.max(at));
                }
            }
            let mut resumed = false;
            if let Some(idx) = self.next_resume_index() {
                // Full-size staging only: a reload that cannot be staged
                // falls through to a fresh admission (or errors) instead
                // of silently transferring fewer bytes than the group's
                // KV footprint.
                if let Some(pairs) = self.alloc_swap_in(idx)? {
                    cpu = self.rt.kv_swap_in(cpu, &pairs)?;
                    let mut group = self.swapped.remove(idx);
                    group.swap_chunks.clear();
                    releases.extend(pairs);
                    group.blocks = group.blocks_needed(self.config.block_tokens);
                    self.force_reserve_blocks(group.blocks);
                    group.arrived_this_step = true;
                    self.running.push(group);
                    resumed = true;
                }
            }
            if !resumed {
                if let Some(mut group) = self.waiting.pop_front() {
                    group.blocks = group.blocks_after_step(self.config.block_tokens);
                    self.force_reserve_blocks(group.blocks);
                    group.arrived_this_step = true;
                    self.running.push(group);
                } else if let Some(idx) = self.next_resume_index() {
                    // A swapped group exists but its reload cannot even be
                    // staged: surface the out-of-memory condition.
                    let requested: u64 = self.swapped[idx].swap_chunks.iter().map(|c| c.len).sum();
                    return Err(GpuError::Memory(
                        pipellm_gpu::memory::MemoryError::DeviceOutOfMemory {
                            requested,
                            free: self.rt.device_free_bytes(),
                        },
                    ));
                } else {
                    return Ok(now);
                }
            }
        }

        // 5. Grow block allocations for this step, preempting victims when
        // the pool runs dry. Iterate by request id: preemption reshuffles
        // the running vector.
        let ids: Vec<u64> = self.running.iter().map(|g| g.request.id).collect();
        for id in ids {
            let Some(i) = self.running.iter().position(|g| g.request.id == id) else {
                continue; // already preempted as someone else's victim
            };
            let have = self.running[i].blocks;
            let need = self.running[i].blocks_after_step(self.config.block_tokens);
            if need <= have {
                continue;
            }
            let extra = need - have;
            while self.free_blocks < extra {
                match self.pick_victim(id) {
                    Some(victim) => cpu = self.swap_out(cpu, victim)?,
                    None => break,
                }
            }
            let i = self
                .running
                .iter()
                .position(|g| g.request.id == id)
                .expect("the grown group is never its own victim");
            if self.free_blocks >= extra {
                self.free_blocks -= extra;
                self.running[i].blocks = need;
            } else if self.running.len() > 1 && !self.running[i].arrived_this_step {
                // Cannot satisfy: preempt this group itself.
                cpu = self.swap_out(cpu, i)?;
            } else {
                // Alone (or just resumed): overcommit rather than livelock.
                self.force_reserve_blocks(extra);
                self.running[i].blocks = need;
            }
        }

        if self.running.is_empty() {
            // The batch drained, but the swap-ins issued this step still
            // ran: their transfer time is part of the simulated clock
            // (discarding the synchronized time here silently erased it).
            return self.finish_transfers(cpu, &mut releases);
        }

        // 6. Swap-ins are on the critical path: the step starts when all
        // transfers have landed.
        let inputs_ready = self.finish_transfers(cpu, &mut releases)?;

        // 7. Compute: prefills for fresh groups plus one decode iteration.
        let mut compute_end = inputs_ready;
        let mut decode_seqs = 0u64;
        let mut decode_context = 0u64;
        for group in &mut self.running {
            if !group.prefilled {
                let t = self.config.gpu.prefill_time(
                    &self.config.model,
                    1,
                    u64::from(group.request.prompt_tokens),
                );
                compute_end = self.rt.launch_compute(compute_end, t);
                group.prefilled = true;
            }
            decode_seqs += u64::from(group.request.parallel);
            decode_context += group.context_tokens();
        }
        let decode = self
            .config
            .gpu
            .decode_time(&self.config.model, decode_seqs, decode_context);
        compute_end = self.rt.launch_compute(compute_end, decode);

        // 8. Advance generation; retire finished groups.
        let mut idx = 0;
        while idx < self.running.len() {
            self.running[idx].generated += 1;
            if self.running[idx].done() {
                let group = self.running.swap_remove(idx);
                self.release_blocks(group.blocks);
                let latency = compute_end.saturating_since(group.request.arrival);
                let norm = latency.as_secs_f64() / f64::from(group.request.output_tokens).max(1.0);
                self.latencies.record(norm);
                self.completed += 1;
            } else {
                idx += 1;
            }
        }
        Ok(compute_end)
    }

    /// Index in `swapped` of the next group to reload, per policy.
    fn next_resume_index(&self) -> Option<usize> {
        if self.swapped.is_empty() {
            return None;
        }
        match self.config.policy {
            // Request-wise: last evicted, first reloaded.
            SwapPolicy::RequestLifo => Some(self.swapped.len() - 1),
            // Layer-wise analogue: first evicted, first reloaded.
            SwapPolicy::LayerFifo => Some(0),
        }
    }

    /// Chooses a running group to evict: the latest-arrived (lowest
    /// priority), excluding the protected id and groups that entered the
    /// batch this step.
    fn pick_victim(&self, protect_id: u64) -> Option<usize> {
        self.running
            .iter()
            .enumerate()
            .filter(|(_, g)| g.request.id != protect_id && !g.arrived_this_step)
            .max_by_key(|(_, g)| (g.request.arrival, g.request.id))
            .map(|(i, _)| i)
    }

    /// Swaps out the running group at `idx` through the paged encrypted
    /// KV-cache path: the group's footprint is split into whole-block
    /// staging pages, each moved as its own sealed transfer (one IV per
    /// page, drawn from the engine's session). Returns the CPU clock
    /// after issuing the copies.
    ///
    /// Device staging is allocated at full page size; if it does not fit,
    /// the out-of-memory error propagates instead of shrinking the copy.
    fn swap_out(&mut self, now: SimTime, idx: usize) -> Result<SimTime, GpuError> {
        let mut group = self.running.swap_remove(idx);
        let blocks = group.blocks_needed(self.config.block_tokens);
        let mut pairs: Vec<(HostRegion, DevicePtr)> = Vec::new();
        for len in self.swap_chunk_lens(blocks) {
            let chunk = self.rt.alloc_host(Payload::virtual_of(len));
            match self.rt.alloc_device(len) {
                Ok(src) => pairs.push((chunk, src)),
                Err(err) => {
                    // Unwind cleanly: the group stays running, nothing
                    // was transferred, and the OOM surfaces to the caller.
                    self.rt.free_host(chunk.addr)?;
                    for (c, s) in pairs {
                        self.rt.free_device(s)?;
                        self.rt.free_host(c.addr)?;
                    }
                    self.running.push(group);
                    return Err(err);
                }
            }
        }
        let cpu = match self.rt.kv_swap_out(now, &pairs) {
            Ok(cpu) => cpu,
            Err(err) => {
                // The group transfer is atomic, so nothing moved: release
                // the staging and keep the group running — the engine
                // stays consistent for callers that handle the error.
                for (chunk, src) in pairs {
                    self.rt.free_device(src)?;
                    self.rt.free_host(chunk.addr)?;
                }
                self.running.push(group);
                return Err(err);
            }
        };
        for (chunk, src) in pairs {
            self.rt.free_device(src)?;
            group.swap_chunks.push(chunk);
        }
        self.release_blocks(group.blocks);
        group.blocks = 0;
        self.preemptions += 1;
        self.swapped.push(group);
        Ok(cpu)
    }

    /// Allocates device destinations for every staged page of swapped
    /// group `idx`, in reload (LIFO — reverse of eviction) order. Returns
    /// `None`, freeing any partial allocations, when device memory cannot
    /// stage the full reload.
    fn alloc_swap_in(
        &mut self,
        idx: usize,
    ) -> Result<Option<Vec<(DevicePtr, HostRegion)>>, GpuError> {
        let chunks: Vec<HostRegion> = self.swapped[idx]
            .swap_chunks
            .iter()
            .rev()
            .copied()
            .collect();
        let mut pairs = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            match self.rt.alloc_device(chunk.len) {
                Ok(dst) => pairs.push((dst, chunk)),
                Err(GpuError::Memory(_)) => {
                    for (dst, _) in pairs {
                        self.rt.free_device(dst)?;
                    }
                    return Ok(None);
                }
                Err(err) => return Err(err),
            }
        }
        Ok(Some(pairs))
    }

    /// Waits for the in-flight swap-ins and releases their staging.
    /// Returns the synchronized completion time (never earlier than
    /// `cpu`) — the step's clock must include the transfer time even when
    /// the batch drained.
    fn finish_transfers(
        &mut self,
        cpu: SimTime,
        releases: &mut Vec<(DevicePtr, HostRegion)>,
    ) -> Result<SimTime, GpuError> {
        let done = self.rt.synchronize(cpu);
        for (dst, chunk) in releases.drain(..) {
            self.rt.free_device(dst)?;
            self.rt.free_host(chunk.addr)?;
        }
        Ok(done)
    }
}

impl<R: SessionedRuntime> VllmEngine<R> {
    /// Opens a dedicated tenant session and routes all of this engine's
    /// subsequent traffic — including the paged KV swap crypto — through
    /// it. The engine owns its runtime, so the session stays active for
    /// the engine's lifetime; a multi-tenant deployment gives each engine
    /// its own channel keys, IV streams, and speculation state this way.
    ///
    /// # Errors
    ///
    /// Propagates [`GpuError::UnknownSession`] (not expected: the session
    /// was just opened).
    pub fn bind_session(&mut self) -> Result<SessionId, GpuError> {
        let session = self.rt.open_session();
        self.rt.set_session(session)?;
        Ok(session)
    }
}

impl<R: GpuRuntime> ServingEngine for VllmEngine<R> {
    fn engine_name(&self) -> &'static str {
        "vLLM"
    }

    fn describe(&self) -> String {
        self.trace_label.clone()
    }

    fn run_to_completion(&mut self) -> Result<ServingReport, GpuError> {
        let trace = std::mem::take(&mut self.workload);
        self.serve(&trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipellm_gpu::runtime::{CcNativeRuntime, CcOffRuntime};
    use pipellm_gpu::IoTimingModel;
    use pipellm_workloads::{Dataset, TraceConfig};

    const GB: u64 = 1_000_000_000;

    fn config() -> VllmConfig {
        VllmConfig::new(ModelSpec::opt_30b())
    }

    fn trace(rate: f64, parallel: u32, secs: f64) -> Vec<Request> {
        TraceConfig::new(Dataset::Alpaca, rate)
            .duration_secs(secs)
            .parallel(parallel)
            .seed(11)
            .generate()
    }

    #[test]
    fn block_pool_sized_from_leftover_memory() {
        let rt = CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1);
        let engine = VllmEngine::load(rt, config(), "test").unwrap();
        // OPT-30B weights ≈ 60 GB, workspace 2 GB → ≈ 18 GB of KV.
        let kv_bytes = engine.total_blocks() * engine.config().block_bytes();
        assert!((14 * GB..22 * GB).contains(&kv_bytes), "{kv_bytes}");
    }

    #[test]
    fn oversized_model_is_rejected() {
        let rt = CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1);
        let err = VllmEngine::load(rt, VllmConfig::new(ModelSpec::opt_66b()), "x").unwrap_err();
        assert!(matches!(err, GpuError::Memory(_)));
    }

    #[test]
    fn low_rate_completes_all_requests_without_preemption() {
        let rt = CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1);
        let mut engine = VllmEngine::load(rt, config(), "alpaca low").unwrap();
        let trace = trace(1.0, 2, 60.0);
        let n = trace.len() as u64;
        let report = engine.serve(&trace).unwrap();
        assert_eq!(report.completed, n);
        assert_eq!(report.preemptions, 0, "no memory pressure at 1 req/s");
        assert!(report.norm_latency_s_per_token > 0.0);
    }

    #[test]
    fn high_rate_triggers_swapping() {
        let rt = CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1);
        let mut engine = VllmEngine::load(rt, config(), "sharegpt high").unwrap();
        // Parallel size 6 with long outputs creates KV pressure.
        let trace = TraceConfig::new(Dataset::ShareGpt, 1.2)
            .duration_secs(120.0)
            .parallel(6)
            .seed(3)
            .generate();
        let n = trace.len() as u64;
        let report = engine.serve(&trace).unwrap();
        assert_eq!(report.completed, n);
        assert!(report.preemptions > 0, "expected swapping under pressure");
        assert!(report.io.d2h_bytes > 0);
        assert!(report.io.h2d_bytes > 0);
    }

    #[test]
    fn cc_latency_exceeds_cc_off_under_pressure() {
        let make_trace = || {
            TraceConfig::new(Dataset::ShareGpt, 1.0)
                .duration_secs(120.0)
                .parallel(6)
                .seed(5)
                .generate()
        };
        let mut off = VllmEngine::load(
            CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1),
            config(),
            "x",
        )
        .unwrap();
        let r_off = off.serve(&make_trace()).unwrap();
        let mut cc = VllmEngine::load(
            CcNativeRuntime::new(IoTimingModel::default(), 80 * GB, 1),
            config(),
            "x",
        )
        .unwrap();
        let r_cc = cc.serve(&make_trace()).unwrap();
        assert!(
            r_cc.norm_latency_s_per_token > r_off.norm_latency_s_per_token,
            "CC {} vs off {}",
            r_cc.norm_latency_s_per_token,
            r_off.norm_latency_s_per_token
        );
    }

    #[test]
    fn latency_grows_with_rate() {
        let run = |rate: f64| {
            let rt = CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1);
            let mut engine = VllmEngine::load(rt, config(), "sweep").unwrap();
            engine
                .serve(&trace(rate, 4, 90.0))
                .unwrap()
                .norm_latency_s_per_token
        };
        let low = run(0.5);
        let high = run(12.0);
        assert!(high > low, "latency must rise with load: {low} vs {high}");
    }

    #[test]
    fn fifo_policy_also_serves_everything() {
        let rt = CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1);
        let cfg = VllmConfig {
            policy: SwapPolicy::LayerFifo,
            ..config()
        };
        let mut engine = VllmEngine::load(rt, cfg, "fifo").unwrap();
        let trace = TraceConfig::new(Dataset::ShareGpt, 1.0)
            .duration_secs(90.0)
            .parallel(6)
            .seed(8)
            .generate();
        let n = trace.len() as u64;
        let report = engine.serve(&trace).unwrap();
        assert_eq!(report.completed, n);
    }

    #[test]
    fn drained_batch_step_returns_synchronized_time() {
        // Regression: the drained-batch early return called
        // `synchronize` and discarded the result, so swap-in transfer
        // time silently vanished from the simulated clock.
        let rt = CcNativeRuntime::new(IoTimingModel::default(), 80 * GB, 1);
        let mut engine = VllmEngine::load(rt, config(), "drain").unwrap();
        let len = 64 << 20;
        let dst = engine.rt.alloc_device(len).unwrap();
        let chunk = engine.rt.alloc_host(Payload::virtual_of(len));
        let t = engine.rt.memcpy_htod(SimTime::ZERO, dst, chunk).unwrap();
        let mut releases = vec![(dst, chunk)];
        let done = engine.finish_transfers(t, &mut releases).unwrap();
        assert!(
            done > SimTime::ZERO,
            "transfer time must survive the drain path"
        );
        assert!(releases.is_empty(), "staging was released");
    }

    #[test]
    fn swap_out_surfaces_oom_instead_of_truncating() {
        // Regression: eviction staging was allocated at
        // `min(kv_bytes, device_free_bytes)`, silently copying fewer
        // bytes than the group's KV footprint under memory pressure.
        let rt = CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1);
        let mut engine = VllmEngine::load(rt, config(), "oom").unwrap();
        let free = engine.rt.device_free_bytes();
        let _hog = engine.rt.alloc_device(free - 1024).unwrap();
        let req = trace(1.0, 6, 10.0)[0];
        let mut group = Group::new(req);
        group.blocks = group.blocks_needed(engine.config.block_tokens);
        let held = group.blocks;
        engine.free_blocks -= held.min(engine.free_blocks);
        engine.running.push(group);
        let err = engine.swap_out(SimTime::ZERO, 0).unwrap_err();
        assert!(matches!(err, GpuError::Memory(_)), "{err}");
        // The group is still running, nothing was transferred, and no
        // staging leaked.
        assert_eq!(engine.running.len(), 1);
        assert!(engine.swapped.is_empty());
        assert_eq!(engine.running[0].blocks, held);
        assert_eq!(engine.rt.device_free_bytes(), 1024);
    }

    #[test]
    fn block_accounting_invariant_across_scheduler_transitions() {
        // `free + running == total + overcommit_debt` must hold exactly
        // after every scheduler iteration — admit, grow, preempt, resume,
        // retire — with no clamps masking drift.
        let scenarios: &[(Dataset, f64, u32, f64, u64)] = &[
            // Heavy swapping: admit/grow/preempt/resume all fire.
            (Dataset::ShareGpt, 1.2, 6, 90.0, 80 * GB),
            // Light load: admit/grow/retire only.
            (Dataset::Alpaca, 1.0, 2, 60.0, 80 * GB),
            // Pathologically small pool: the overcommit valve opens.
            (Dataset::ShareGpt, 0.5, 4, 60.0, 62 * GB),
        ];
        let mut valve_opened = false;
        for &(dataset, rate, parallel, secs, capacity) in scenarios {
            let rt = CcOffRuntime::new(IoTimingModel::default(), capacity, 1);
            let mut engine = VllmEngine::load(rt, config(), "invariant").unwrap();
            let trace = TraceConfig::new(dataset, rate)
                .duration_secs(secs)
                .parallel(parallel)
                .seed(17)
                .generate();
            engine
                .arrivals
                .extend(trace.iter().map(|r| (r.arrival, *r)));
            let mut now = SimTime::ZERO;
            let mut steps = 0u64;
            while !(engine.arrivals.is_empty()
                && engine.waiting.is_empty()
                && engine.running.is_empty()
                && engine.swapped.is_empty())
            {
                now = engine.step(now).unwrap();
                steps += 1;
                assert_eq!(
                    engine.free_blocks() + engine.running_blocks(),
                    engine.total_blocks() + engine.overcommit_blocks(),
                    "accounting drifted after step {steps} at rate {rate} \
                     with capacity {capacity}"
                );
                assert!(
                    engine.swapped.iter().all(|g| g.blocks == 0),
                    "swapped groups must hold no blocks"
                );
            }
            assert_eq!(engine.free_blocks(), engine.total_blocks());
            assert_eq!(engine.overcommit_blocks(), 0, "debt fully repaid");
            valve_opened |= engine.overcommit_events() > 0;
        }
        assert!(valve_opened, "the tiny pool must exercise the valve");
    }

    #[test]
    fn bound_session_carries_the_engine_swap_crypto() {
        let rt = CcNativeRuntime::new(IoTimingModel::default(), 80 * GB, 1);
        let mut engine = VllmEngine::load(rt, config(), "tenant").unwrap();
        let session = engine.bind_session().unwrap();
        assert_ne!(session, SessionId::DEFAULT);
        let trace = TraceConfig::new(Dataset::ShareGpt, 1.2)
            .duration_secs(90.0)
            .parallel(6)
            .seed(3)
            .generate();
        let report = engine.serve(&trace).unwrap();
        assert!(report.preemptions > 0, "the point of the test is swapping");
        let counters = engine.runtime().session_counters(session).unwrap();
        assert!(counters.in_lockstep(), "{counters:?}");
        assert!(
            counters.d2h_tx > 1,
            "swap-outs must be sealed under the tenant session: {counters:?}"
        );
        let default = engine
            .runtime()
            .session_counters(SessionId::DEFAULT)
            .unwrap();
        assert_eq!(default.d2h_tx, 1, "default session carried no swaps");
    }

    #[test]
    fn paged_swap_speculates_and_pre_decrypts_on_pipellm() {
        use pipellm::{PipeLlmConfig, PipeLlmRuntime};
        let rt = PipeLlmRuntime::new(PipeLlmConfig {
            device_capacity: 80 * GB,
            crypto_threads: 2,
            ..PipeLlmConfig::default()
        });
        let mut engine = VllmEngine::load(rt, config(), "pipellm paged").unwrap();
        let trace = TraceConfig::new(Dataset::ShareGpt, 1.0)
            .duration_secs(120.0)
            .parallel(6)
            .seed(5)
            .generate();
        let report = engine.serve(&trace).unwrap();
        assert!(report.preemptions > 0, "the point of the test is swapping");
        let stats = engine.runtime().spec_stats();
        assert!(stats.async_decrypts > 0, "{stats}");
        assert!(
            stats.pre_decrypts > 0,
            "LIFO reloads must be pre-decrypted: {stats}"
        );
        assert!(
            stats.spec_hits > 0,
            "paged LIFO reloads must hit pre-encryption: {stats}"
        );
    }

    #[test]
    fn tiny_kv_pool_still_makes_progress() {
        // A pathologically small pool exercises the overcommit safety
        // valve: everything must still complete.
        let rt = CcOffRuntime::new(IoTimingModel::default(), 62 * GB, 1);
        let mut engine = VllmEngine::load(rt, config(), "tiny pool").unwrap();
        let trace = TraceConfig::new(Dataset::ShareGpt, 0.5)
            .duration_secs(60.0)
            .parallel(4)
            .seed(21)
            .generate();
        let n = trace.len() as u64;
        let report = engine.serve(&trace).unwrap();
        assert_eq!(report.completed, n);
    }
}
