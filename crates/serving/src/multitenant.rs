//! Multi-tenant serving: N independent tenants over one shared runtime.
//!
//! The paper evaluates PipeLLM with a single confidential channel; a
//! production deployment multiplexes many tenants over the same GPU, PCIe
//! link, and CPU crypto workers. The [`MultiTenantDriver`] builds that
//! scenario: each tenant owns a session of a
//! [`SessionedRuntime`] (its own keys, IV counters, predictor, and
//! speculation queue) and issues Poisson-arriving requests; the driver
//! merges all tenants' arrivals into one timeline and interleaves them, so
//! tenant A's speculative seals genuinely contend with tenant B's
//! on-demand encryption on the shared worker pool.
//!
//! Each request models one decode step of a KV-swapping server (the vLLM
//! regime the paper's §7.2 measures): swap the tenant's working set in
//! (LIFO — last evicted, first reloaded), compute, swap it back out. Under
//! native CC the swap-ins pay on-the-fly encryption on the critical path;
//! under PipeLLM the per-session predictor learns each tenant's LIFO
//! pattern and hides the encryption — per tenant, despite the
//! interleaving.
//!
//! At the end of a run the driver verifies every session's channel
//! counters in lockstep: each direction's sender and receiver must agree,
//! per session, or ciphertext was lost or replayed somewhere.

use pipellm_gpu::context::SessionCounters;
use pipellm_gpu::memory::{HostRegion, Payload};
use pipellm_gpu::runtime::SessionedRuntime;
use pipellm_gpu::{GpuError, SessionId};
use pipellm_sim::metrics::Samples;
use pipellm_sim::rng::SimRng;
use pipellm_sim::time::SimTime;
use std::time::Duration;

/// One tenant's workload shape.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Mean Poisson arrival rate in requests/second.
    pub rate_rps: f64,
    /// Requests this tenant issues in total.
    pub requests: usize,
    /// Bytes per KV chunk (must classify as a swap: ≥ 128 KiB).
    pub chunk_bytes: u64,
    /// Chunks in the tenant's swapped working set.
    pub chunks: usize,
    /// GPU compute per request (one decode step).
    pub compute: Duration,
    /// Arrival-process seed.
    pub seed: u64,
    /// Queue-age budget: a request still waiting for the dispatch thread
    /// this long past its arrival is shed instead of served — the
    /// serving-level mirror of the supervised deployment's deadline-aware
    /// admission control. `None` never sheds.
    pub deadline: Option<Duration>,
}

impl TenantSpec {
    /// A KV-swapping tenant at `rate_rps` with paper-plausible defaults:
    /// three 512 KiB KV chunks per request, 2 ms of decode compute.
    pub fn new(rate_rps: f64) -> Self {
        TenantSpec {
            rate_rps,
            requests: 32,
            chunk_bytes: 512 * 1024,
            chunks: 3,
            compute: Duration::from_millis(2),
            seed: 0x7e4a,
            deadline: None,
        }
    }

    /// Sets the number of requests.
    pub fn requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// Sets the working-set shape.
    pub fn working_set(mut self, chunks: usize, chunk_bytes: u64) -> Self {
        self.chunks = chunks.max(1);
        self.chunk_bytes = chunk_bytes;
        self
    }

    /// Sets the per-request compute time.
    pub fn compute(mut self, compute: Duration) -> Self {
        self.compute = compute;
        self
    }

    /// Sets the arrival-process seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the queue-age budget past which a waiting request is shed.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// One tenant's live state inside the driver.
#[derive(Debug)]
struct Tenant {
    session: SessionId,
    spec: TenantSpec,
    /// Host-side working set (swapped out between requests).
    chunks: Vec<HostRegion>,
    latencies: Samples,
    completed: u64,
    shed: u64,
}

/// Per-tenant outcome of a run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant's session.
    pub session: SessionId,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed by the queue-age deadline before being served.
    pub shed: u64,
    /// Mean end-to-end request latency in seconds.
    pub mean_latency_s: f64,
    /// 99th-percentile request latency in seconds.
    pub p99_latency_s: f64,
    /// Mean latency normalized by working-set chunks (s/chunk) — the
    /// multi-tenant analogue of vLLM's normalized latency.
    pub norm_latency_s_per_chunk: f64,
    /// Final IV-counter snapshot of the tenant's channel.
    pub counters: SessionCounters,
}

/// Outcome of a multi-tenant run.
#[derive(Debug, Clone)]
pub struct MultiTenantReport {
    /// Runtime label ("CC", "PipeLLM", …).
    pub system: String,
    /// Per-tenant outcomes, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Simulated wall-clock at completion.
    pub finished_at: SimTime,
}

impl MultiTenantReport {
    /// Mean normalized latency across all tenants' requests.
    pub fn mean_norm_latency(&self) -> f64 {
        let (mut weighted, mut n) = (0.0, 0u64);
        for t in &self.tenants {
            weighted += t.norm_latency_s_per_chunk * t.completed as f64;
            n += t.completed;
        }
        if n == 0 {
            0.0
        } else {
            weighted / n as f64
        }
    }

    /// Errors if any session's channel counters disagree between the two
    /// endpoints — the lockstep invariant every healthy run must satisfy.
    pub fn verify_lockstep(&self) -> Result<(), String> {
        for t in &self.tenants {
            if !t.counters.in_lockstep() {
                return Err(format!(
                    "{} endpoints out of lockstep: {:?}",
                    t.session, t.counters
                ));
            }
        }
        Ok(())
    }
}

/// Interleaves Poisson arrivals from N tenants over one shared
/// [`SessionedRuntime`].
#[derive(Debug)]
pub struct MultiTenantDriver<R: SessionedRuntime> {
    rt: R,
    tenants: Vec<Tenant>,
}

impl<R: SessionedRuntime> MultiTenantDriver<R> {
    /// Wraps a runtime. Tenants are added with
    /// [`MultiTenantDriver::add_tenant`]; the runtime's default session
    /// stays reserved for non-tenant traffic.
    pub fn new(rt: R) -> Self {
        MultiTenantDriver {
            rt,
            tenants: Vec::new(),
        }
    }

    /// Opens a session for a new tenant and allocates its host-side
    /// working set. Returns the tenant's session id.
    pub fn add_tenant(&mut self, spec: TenantSpec) -> SessionId {
        let session = self.rt.open_session();
        let chunks = (0..spec.chunks)
            .map(|_| self.rt.alloc_host(Payload::virtual_of(spec.chunk_bytes)))
            .collect();
        self.tenants.push(Tenant {
            session,
            spec,
            chunks,
            latencies: Samples::new(),
            completed: 0,
            shed: 0,
        });
        session
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The tenants' session ids, in tenant order.
    pub fn sessions(&self) -> Vec<SessionId> {
        self.tenants.iter().map(|t| t.session).collect()
    }

    /// The wrapped runtime.
    pub fn runtime(&self) -> &R {
        &self.rt
    }

    /// Consumes the driver, returning the runtime (e.g. to read
    /// per-session speculation statistics off a concrete type).
    pub fn into_runtime(self) -> R {
        self.rt
    }

    /// Runs every tenant's full request schedule, interleaved in arrival
    /// order over the shared runtime.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (none are expected for valid specs).
    pub fn run(&mut self) -> Result<MultiTenantReport, GpuError> {
        // Merge all tenants' Poisson arrivals into one timeline.
        let mut events: Vec<(SimTime, usize)> = Vec::new();
        for (idx, tenant) in self.tenants.iter().enumerate() {
            let mut rng = SimRng::seed_from(tenant.spec.seed ^ tenant.session.0);
            let mut clock = 0.0f64;
            for _ in 0..tenant.spec.requests {
                clock += rng.next_exponential(tenant.spec.rate_rps);
                events.push((SimTime::from_secs_f64(clock), idx));
            }
        }
        events.sort_by_key(|&(at, idx)| (at, idx));

        // One dispatch thread serves the merged stream, like a serving
        // frontend draining a request queue.
        let mut cpu = SimTime::ZERO;
        let mut finished = SimTime::ZERO;
        for (arrival, idx) in events {
            let start = arrival.max(cpu);
            // Deadline-aware shedding: a request that already waited out
            // its queue-age budget is refused, not served late — the
            // dispatch thread moves straight to the next arrival.
            if let Some(deadline) = self.tenants[idx].spec.deadline {
                if start.saturating_since(arrival) > deadline {
                    self.tenants[idx].shed += 1;
                    continue;
                }
            }
            let end = self.serve_one(idx, start)?;
            let tenant = &mut self.tenants[idx];
            tenant
                .latencies
                .record(end.saturating_since(arrival).as_secs_f64());
            tenant.completed += 1;
            cpu = end;
            finished = finished.max(end);
        }

        let tenants = self
            .tenants
            .iter_mut()
            .map(|t| {
                let counters = self
                    .rt
                    .session_counters(t.session)
                    .expect("tenant session is live");
                TenantReport {
                    session: t.session,
                    completed: t.completed,
                    shed: t.shed,
                    mean_latency_s: t.latencies.mean(),
                    p99_latency_s: t.latencies.percentile(99.0),
                    norm_latency_s_per_chunk: t.latencies.mean() / t.spec.chunks as f64,
                    counters,
                }
            })
            .collect();
        Ok(MultiTenantReport {
            system: self.rt.label().to_string(),
            tenants,
            finished_at: finished,
        })
    }

    /// One request of tenant `idx`: swap the working set in (LIFO), run
    /// the decode step, swap it back out. Returns when the request is
    /// fully retired (swap-outs issued; their decryption is asynchronous).
    fn serve_one(&mut self, idx: usize, start: SimTime) -> Result<SimTime, GpuError> {
        let (session, chunk_bytes, compute) = {
            let t = &self.tenants[idx];
            (t.session, t.spec.chunk_bytes, t.spec.compute)
        };
        self.rt.set_session(session)?;
        let chunks = self.tenants[idx].chunks.clone();
        let mut now = start;
        // Swap in, LIFO: the reverse of the swap-out order below — the
        // recurring pattern each tenant's predictor learns.
        let mut devs = Vec::with_capacity(chunks.len());
        for chunk in chunks.iter().rev() {
            let dev = self.rt.alloc_device(chunk_bytes)?;
            now = self.rt.memcpy_htod(now, dev, *chunk)?;
            devs.push(dev);
        }
        // The decode step cannot start before its KV has landed.
        let inputs_ready = self.rt.synchronize(now);
        let compute_end = self.rt.launch_compute(inputs_ready, compute);
        // Swap back out in forward order (lowest-priority chunk first).
        let mut cpu = compute_end;
        for (chunk, dev) in chunks.iter().zip(devs.iter().rev()) {
            cpu = self.rt.memcpy_dtoh(cpu, *chunk, *dev)?;
        }
        let end = self.rt.synchronize(cpu).max(compute_end);
        for dev in devs {
            self.rt.free_device(dev)?;
        }
        Ok(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipellm_gpu::runtime::CcNativeRuntime;
    use pipellm_gpu::IoTimingModel;

    const GB: u64 = 1_000_000_000;

    fn specs(n: usize) -> Vec<TenantSpec> {
        (0..n)
            .map(|i| TenantSpec::new(4.0).requests(12).seed(100 + i as u64))
            .collect()
    }

    #[test]
    fn four_tenants_complete_all_requests_in_lockstep() {
        let rt = CcNativeRuntime::new(IoTimingModel::default(), 8 * GB, 2);
        let mut driver = MultiTenantDriver::new(rt);
        for spec in specs(4) {
            driver.add_tenant(spec);
        }
        assert_eq!(driver.tenant_count(), 4);
        let report = driver.run().unwrap();
        assert_eq!(report.tenants.len(), 4);
        for t in &report.tenants {
            assert_eq!(t.completed, 12);
            assert!(t.mean_latency_s > 0.0);
            // ≥ up to float accumulation error (all-equal samples).
            assert!(t.p99_latency_s >= t.mean_latency_s * 0.999);
        }
        report.verify_lockstep().unwrap();
        assert!(report.mean_norm_latency() > 0.0);
        assert_eq!(report.system, "CC");
    }

    #[test]
    fn tight_deadline_sheds_overflow_but_keeps_lockstep() {
        // One slow crypto worker and an aggressive arrival rate saturate
        // the dispatch thread; a tight queue-age budget must shed the
        // overflow while everything actually served stays in lockstep.
        let rt = CcNativeRuntime::new(IoTimingModel::default(), 8 * GB, 1);
        let mut driver = MultiTenantDriver::new(rt);
        for i in 0..4 {
            driver.add_tenant(
                TenantSpec::new(2000.0)
                    .requests(24)
                    .seed(300 + i)
                    .deadline(Duration::from_millis(5)),
            );
        }
        let report = driver.run().unwrap();
        let (served, shed): (u64, u64) = report
            .tenants
            .iter()
            .fold((0, 0), |(c, s), t| (c + t.completed, s + t.shed));
        assert_eq!(served + shed, 4 * 24, "every request served or shed");
        assert!(shed > 0, "saturation with a 5ms budget must shed");
        assert!(served > 0, "shedding must not starve the queue");
        report.verify_lockstep().unwrap();
        // Without a deadline the same load completes everything.
        let rt = CcNativeRuntime::new(IoTimingModel::default(), 8 * GB, 1);
        let mut driver = MultiTenantDriver::new(rt);
        for i in 0..4 {
            driver.add_tenant(TenantSpec::new(2000.0).requests(24).seed(300 + i));
        }
        let unbounded = driver.run().unwrap();
        assert!(unbounded.tenants.iter().all(|t| t.shed == 0));
        assert_eq!(
            unbounded.tenants.iter().map(|t| t.completed).sum::<u64>(),
            4 * 24
        );
    }

    #[test]
    fn tenants_use_distinct_sessions() {
        let rt = CcNativeRuntime::new(IoTimingModel::default(), 8 * GB, 2);
        let mut driver = MultiTenantDriver::new(rt);
        for spec in specs(3) {
            driver.add_tenant(spec);
        }
        let sessions = driver.sessions();
        let mut unique = sessions.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 3);
        // None of them is the runtime's default session.
        assert!(!sessions.contains(&SessionId::DEFAULT));
    }

    #[test]
    fn contention_raises_latency_with_tenant_count() {
        let run = |n: usize| {
            let rt = CcNativeRuntime::new(IoTimingModel::default(), 8 * GB, 2);
            let mut driver = MultiTenantDriver::new(rt);
            for spec in specs(n) {
                driver.add_tenant(spec);
            }
            driver.run().unwrap().mean_norm_latency()
        };
        let one = run(1);
        let eight = run(8);
        assert!(
            eight > one,
            "8 tenants must contend harder than 1: {one} vs {eight}"
        );
    }
}
