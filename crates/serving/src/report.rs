//! Result types shared by the serving engines.

use pipellm_gpu::context::IoStats;
use pipellm_sim::time::SimTime;
use std::fmt;
use std::time::Duration;

/// KV-cache swap policy (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SwapPolicy {
    /// Request-wise swapping: lowest-priority request is evicted first and
    /// reloaded last → swap-in order is LIFO. vLLM's default.
    #[default]
    RequestLifo,
    /// Layer-wise swapping: KV of each layer is swapped out in layer order
    /// and reloaded in the same order → FIFO.
    LayerFifo,
}

impl fmt::Display for SwapPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapPolicy::RequestLifo => f.write_str("request-wise (LIFO)"),
            SwapPolicy::LayerFifo => f.write_str("layer-wise (FIFO)"),
        }
    }
}

/// Outcome of one engine run under one runtime.
#[derive(Debug, Clone, Default)]
pub struct ServingReport {
    /// Runtime label ("w/o CC", "CC", "PipeLLM").
    pub system: String,
    /// Workload/engine description.
    pub workload: String,
    /// Simulated wall-clock at completion.
    pub finished_at: SimTime,
    /// Output tokens generated per second (FlexGen metric).
    pub tokens_per_sec: f64,
    /// Sequences completed per second (PEFT metric).
    pub sequences_per_sec: f64,
    /// Mean normalized latency in seconds per output token (vLLM metric).
    pub norm_latency_s_per_token: f64,
    /// 99th-percentile normalized latency.
    pub p99_norm_latency: f64,
    /// Requests (or samples) completed.
    pub completed: u64,
    /// Total GPU idle time attributable to waiting on transfers.
    pub gpu_io_stall: Duration,
    /// Raw I/O statistics from the runtime.
    pub io: IoStats,
    /// KV-cache swap-out events (vLLM).
    pub preemptions: u64,
}

impl ServingReport {
    /// One aligned summary line for experiment tables.
    pub fn summary_row(&self) -> String {
        format!(
            "{:<10} {:<24} tok/s={:>9.2} seq/s={:>7.3} norm_lat={:>8.4}s/tok stall={:>9.3?} nops={}",
            self.system,
            self.workload,
            self.tokens_per_sec,
            self.sequences_per_sec,
            self.norm_latency_s_per_token,
            self.gpu_io_stall,
            self.io.nops,
        )
    }
}

impl fmt::Display for ServingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary_row())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_row_mentions_key_fields() {
        let report = ServingReport {
            system: "PipeLLM".to_string(),
            workload: "vLLM OPT-30B".to_string(),
            tokens_per_sec: 123.4,
            ..ServingReport::default()
        };
        let row = report.summary_row();
        assert!(row.contains("PipeLLM"));
        assert!(row.contains("123.4"));
        assert_eq!(report.to_string(), row);
    }

    #[test]
    fn swap_policy_display() {
        assert!(SwapPolicy::RequestLifo.to_string().contains("LIFO"));
        assert!(SwapPolicy::LayerFifo.to_string().contains("FIFO"));
        assert_eq!(SwapPolicy::default(), SwapPolicy::RequestLifo);
    }
}
