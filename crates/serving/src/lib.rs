//! LLM serving and fine-tuning engines for the PipeLLM reproduction.
//!
//! The paper evaluates PipeLLM under three state-of-the-art systems whose
//! memory-swapping behaviour differs (§3, §7):
//!
//! - [`flexgen`]: a FlexGen-like *model offloading* engine — throughput-
//!   oriented inference for models larger than GPU memory, streaming
//!   offloaded layers in a **repetitive** pattern every iteration.
//! - [`vllm`]: a vLLM-like *serving* engine — paged KV cache, continuous
//!   batching, parallel sampling, and request-wise KV swapping under memory
//!   pressure (**LIFO** reload order), plus an optional layer-wise
//!   (**FIFO**) policy.
//! - [`peft`]: a PEFT/DeepSpeed-like *LoRA fine-tuning* engine — layer
//!   streaming for forward and (reversed) backward passes with optimizer
//!   offload.
//!
//! All three implement the common [`engine::ServingEngine`] trait and are
//! generic over [`pipellm_gpu::GpuRuntime`], so the identical engine code
//! runs on CC-off, native-CC, and PipeLLM runtimes — the paper's
//! user-transparency property. Their shared layer-streaming loop lives in
//! [`stream`], and [`multitenant`] interleaves Poisson arrivals from N
//! tenants over one session-aware runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod engine;
pub mod flexgen;
pub mod multitenant;
pub mod peft;
pub mod pipeline;
pub mod report;
pub mod resilience;
pub mod stream;
pub mod vllm;

pub use engine::ServingEngine;
pub use flexgen::{FlexGenConfig, FlexGenEngine};
pub use multitenant::{MultiTenantDriver, MultiTenantReport, TenantReport, TenantSpec};
pub use peft::{PeftConfig, PeftEngine};
pub use pipeline::{PipelineConfig, PipelineEngine, PipelineSystem};
pub use report::{ServingReport, SwapPolicy};
pub use resilience::ResilienceStats;
pub use stream::LayerPlan;
pub use vllm::{VllmConfig, VllmEngine};
