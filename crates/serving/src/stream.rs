//! Shared layer-streaming machinery for offloading engines.
//!
//! The FlexGen-like and PEFT-like engines used to carry verbatim copies of
//! the same driver loop: decide which layers stay GPU-resident, allocate
//! two staging buffers, then per pass stream each offloaded layer with
//! depth-1 prefetch (double buffering) while the previous layer computes.
//! That loop now lives here once; the engines differ only in traversal
//! direction (PEFT's backward pass streams in reverse) and in the CPU-side
//! per-layer overhead they model.

use pipellm_gpu::memory::{DevicePtr, HostRegion, Payload};
use pipellm_gpu::runtime::GpuRuntime;
use pipellm_gpu::GpuError;
use pipellm_sim::time::SimTime;
use std::time::Duration;

/// Layer placement decided at load time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// The layer's weights stay resident in device memory.
    Resident,
    /// The layer streams from host memory each pass.
    Offloaded {
        /// Index into the engine's host-layer table.
        host_index: usize,
    },
}

/// The static layer split an offloading engine decided at load time, plus
/// the device-side staging buffers the streamed layers cycle through.
#[derive(Debug)]
pub struct LayerPlan {
    /// Per-layer placement, in layer order.
    pub placements: Vec<Placement>,
    /// Host regions of the offloaded layers, in layer order.
    pub host_layers: Vec<HostRegion>,
    /// Double-buffered staging allocations (empty when nothing offloads).
    pub staging: Vec<DevicePtr>,
}

impl LayerPlan {
    /// Number of layers streamed from host memory each pass.
    pub fn offloaded(&self) -> usize {
        self.host_layers.len()
    }

    /// Builds the plan: places `resident` of `total` layers on the GPU
    /// (allocating their weights), backs the rest with host regions, and
    /// allocates the two staging buffers when anything is offloaded.
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] if the resident set does not fit.
    pub fn build<R: GpuRuntime>(
        rt: &mut R,
        resident: usize,
        total: usize,
        layer_bytes: u64,
    ) -> Result<Self, GpuError> {
        let mut placements = Vec::with_capacity(total);
        let mut host_layers = Vec::new();
        for layer in 0..total {
            if layer < resident {
                rt.alloc_device(layer_bytes)?;
                placements.push(Placement::Resident);
            } else {
                let region = rt.alloc_host(Payload::virtual_of(layer_bytes));
                placements.push(Placement::Offloaded {
                    host_index: host_layers.len(),
                });
                host_layers.push(region);
            }
        }
        let staging = if host_layers.is_empty() {
            Vec::new()
        } else {
            vec![rt.alloc_device(layer_bytes)?, rt.alloc_device(layer_bytes)?]
        };
        Ok(LayerPlan {
            placements,
            host_layers,
            staging,
        })
    }

    /// How many layers fit on the device after `reserve` bytes of other
    /// state, leaving room for the two staging buffers.
    pub fn resident_layers(capacity: u64, reserve: u64, layer_bytes: u64, total: u32) -> usize {
        let budget = capacity.saturating_sub(reserve);
        ((budget / layer_bytes).saturating_sub(2) as usize).min(total as usize)
    }

    /// One pass over all layers with depth-1 prefetch of offloaded layers
    /// through the two staging buffers; `reverse` streams and computes the
    /// layers backwards (a training backward pass). `host_overhead` is the
    /// CPU-side cost paid per streamed layer (buffer management,
    /// scheduling) after its transfer lands.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (none are expected for valid plans).
    pub fn run_pass<R: GpuRuntime>(
        &self,
        rt: &mut R,
        start: SimTime,
        per_layer: Duration,
        host_overhead: Duration,
        reverse: bool,
    ) -> Result<SimTime, GpuError> {
        let order: Vec<usize> = if reverse {
            (0..self.placements.len()).rev().collect()
        } else {
            (0..self.placements.len()).collect()
        };
        // Host indices of offloaded layers in traversal order.
        let stream_order: Vec<usize> = order
            .iter()
            .filter_map(|&l| match self.placements[l] {
                Placement::Offloaded { host_index } => Some(host_index),
                Placement::Resident => None,
            })
            .collect();
        let mut cpu = start;
        let mut gpu_end = start;
        let mut next_stream = 0usize;
        if !stream_order.is_empty() {
            let slot = self.staging[0];
            cpu = rt.memcpy_htod(cpu, slot, self.host_layers[stream_order[0]])?;
            next_stream = 1;
        }
        for &layer in &order {
            let ready = match self.placements[layer] {
                Placement::Resident => gpu_end.max(start),
                Placement::Offloaded { .. } => {
                    // Wait for this layer's transfer, pay the CPU-side
                    // layer-management cost, then queue the next offloaded
                    // layer into the other staging buffer.
                    let done = rt.synchronize(cpu) + host_overhead;
                    if next_stream < stream_order.len() {
                        let slot = self.staging[next_stream % 2];
                        cpu = rt.memcpy_htod(
                            done,
                            slot,
                            self.host_layers[stream_order[next_stream]],
                        )?;
                        next_stream += 1;
                    } else {
                        cpu = done;
                    }
                    done
                }
            };
            gpu_end = rt.launch_compute(ready.max(gpu_end), per_layer);
        }
        Ok(gpu_end.max(cpu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipellm_gpu::runtime::CcOffRuntime;
    use pipellm_gpu::IoTimingModel;

    const MB: u64 = 1_000_000;

    #[test]
    fn build_splits_layers_and_allocates_staging() {
        let mut rt = CcOffRuntime::new(IoTimingModel::default(), 100 * MB, 1);
        let plan = LayerPlan::build(&mut rt, 3, 8, 10 * MB).unwrap();
        assert_eq!(plan.offloaded(), 5);
        assert_eq!(plan.staging.len(), 2);
        assert_eq!(plan.placements.len(), 8);
        // 3 resident + 2 staging buffers live on the device.
        assert_eq!(rt.device_free_bytes(), 50 * MB);
    }

    #[test]
    fn fully_resident_plan_needs_no_staging() {
        let mut rt = CcOffRuntime::new(IoTimingModel::default(), 100 * MB, 1);
        let plan = LayerPlan::build(&mut rt, 4, 4, 10 * MB).unwrap();
        assert_eq!(plan.offloaded(), 0);
        assert!(plan.staging.is_empty());
    }

    #[test]
    fn resident_layers_reserves_staging_headroom() {
        assert_eq!(LayerPlan::resident_layers(100 * MB, 0, 10 * MB, 64), 8);
        assert_eq!(
            LayerPlan::resident_layers(100 * MB, 60 * MB, 10 * MB, 64),
            2
        );
        assert_eq!(LayerPlan::resident_layers(100 * MB, 0, 10 * MB, 4), 4);
        assert_eq!(LayerPlan::resident_layers(5 * MB, 0, 10 * MB, 4), 0);
    }

    #[test]
    fn forward_and_reverse_passes_stream_the_same_volume() {
        let mut rt = CcOffRuntime::new(IoTimingModel::default(), 100 * MB, 1);
        let plan = LayerPlan::build(&mut rt, 2, 6, 10 * MB).unwrap();
        let t1 = plan
            .run_pass(
                &mut rt,
                SimTime::ZERO,
                Duration::from_micros(100),
                Duration::ZERO,
                false,
            )
            .unwrap();
        let t2 = plan
            .run_pass(
                &mut rt,
                t1,
                Duration::from_micros(100),
                Duration::ZERO,
                true,
            )
            .unwrap();
        assert!(t2 > t1);
        assert_eq!(rt.io_stats().h2d_ops, 8, "4 offloaded layers × 2 passes");
    }

    #[test]
    fn host_overhead_slows_the_pass() {
        let run = |overhead: Duration| {
            let mut rt = CcOffRuntime::new(IoTimingModel::default(), 100 * MB, 1);
            let plan = LayerPlan::build(&mut rt, 2, 6, 10 * MB).unwrap();
            plan.run_pass(
                &mut rt,
                SimTime::ZERO,
                Duration::from_micros(100),
                overhead,
                false,
            )
            .unwrap()
        };
        assert!(run(Duration::from_millis(5)) > run(Duration::ZERO));
    }
}
