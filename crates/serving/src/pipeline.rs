//! Pipeline-parallel serving over a multi-GPU cluster with encrypted
//! inter-stage links.
//!
//! The [`PipelineEngine`] shards a model's layers across the devices of a
//! [`ClusterContext`] (balanced contiguous [`StagePartition`]), streams
//! micro-batches through the stages under a fill–drain or 1F1B
//! [`PipelineSchedule`], and moves every inter-stage activation over that
//! edge's own secure channel. Three systems are compared:
//!
//! - [`PipelineSystem::CcOff`]: plaintext NVLink at full bandwidth;
//! - [`PipelineSystem::CcNative`]: native CC — every hop seals on the
//!   issuing stage's thread and decrypts before use, crypto on the
//!   critical path at both ends of every link;
//! - [`PipelineSystem::PipeLlm`]: the speculative [`EdgePipeline`] per
//!   edge direction — activations are pre-sealed on a crypto worker the
//!   moment their producer kernel retires, so the stage thread never
//!   blocks on encryption and the seal overlaps the next micro-batch's
//!   compute.
//!
//! The engine is *functional*: micro-batch bytes really cross the links
//! under AES-GCM with per-edge incrementing IVs, and each stage applies
//! its layer range's deterministic transform ([`pipellm::partition`]), so
//! an N-stage run is bit-exact with the single-GPU run — the repo-level
//! acceptance tests pin that down.
//!
//! Host ingress/egress (PCIe into stage 0, out of the last stage) uses the
//! native path for every system, so the comparison isolates what the
//! *inter-stage* links cost.

use crate::engine::ServingEngine;
use crate::report::ServingReport;
use crate::resilience::ResilienceStats;
use pipellm::edge::EdgePipeline;
use pipellm::partition::{apply_stage, Pass, PipelineSchedule, ScheduleOp, StagePartition};
use pipellm::stats::PipeLlmStats;
use pipellm_chaos::{ChaosInjector, FaultKind, FaultSite, RetryPolicy};
use pipellm_gpu::cluster::{ClusterConfig, ClusterContext, EdgeId, NvLinkModel};
use pipellm_gpu::memory::{DevicePtr, HostRegion, Payload};
use pipellm_gpu::{CcMode, GpuError, IoTimingModel};
use pipellm_sim::metrics::Samples;
use pipellm_sim::time::SimTime;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Which runtime discipline the inter-stage links run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineSystem {
    /// Confidential computing disabled.
    CcOff,
    /// Native CC: seal/open coupled to every transfer API call.
    CcNative,
    /// PipeLLM: speculative pre-encryption per edge direction.
    PipeLlm,
}

impl PipelineSystem {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            PipelineSystem::CcOff => "w/o CC",
            PipelineSystem::CcNative => "CC",
            PipelineSystem::PipeLlm => "PipeLLM",
        }
    }

    fn cc_mode(&self) -> CcMode {
        match self {
            PipelineSystem::CcOff => CcMode::Off,
            _ => CcMode::On,
        }
    }
}

/// Configuration for a [`PipelineEngine`].
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Pipeline stages (one device per stage), ≥ 1.
    pub stages: usize,
    /// Model layers to shard (must be ≥ `stages`).
    pub layers: u32,
    /// Micro-batches per iteration.
    pub micro_batches: usize,
    /// Iterations (synchronized batches) to run.
    pub iterations: usize,
    /// Bytes per micro-batch activation.
    pub activation_bytes: u64,
    /// Per-stage issue schedule.
    pub schedule: PipelineSchedule,
    /// Link discipline under test.
    pub system: PipelineSystem,
    /// Whether to run backward passes (gradients flow over the reverse
    /// direction of every edge).
    pub train: bool,
    /// GPU compute per layer per micro-batch (backward costs 2×).
    pub compute_per_layer: Duration,
    /// Input-generation and key-derivation seed.
    pub seed: u64,
    /// Crypto worker threads per device.
    pub crypto_threads: usize,
    /// Host↔device timing calibration.
    pub timing: IoTimingModel,
    /// Inter-GPU link calibration.
    pub nvlink: NvLinkModel,
    /// Fault injector shared with every device context and edge (`None`
    /// runs chaos-free). Frame faults fire inside the transfer layers;
    /// the engine itself rolls the stage- and session-level kinds.
    pub chaos: Option<Arc<ChaosInjector>>,
    /// Retry/backoff/timeout policy for faulted inter-stage operations.
    pub retry: RetryPolicy,
    /// Simulated cost of restarting a killed or timed-out stage executor.
    pub restart_penalty: Duration,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            stages: 2,
            layers: 16,
            micro_batches: 4,
            iterations: 3,
            activation_bytes: 256 * 1024,
            schedule: PipelineSchedule::FillDrain,
            system: PipelineSystem::PipeLlm,
            train: false,
            compute_per_layer: Duration::from_micros(20),
            seed: 0x51ce,
            crypto_threads: 1,
            timing: IoTimingModel::default(),
            nvlink: NvLinkModel::default(),
            chaos: None,
            retry: RetryPolicy::default(),
            restart_penalty: Duration::from_micros(200),
        }
    }
}

/// Deterministic input bytes for `(seed, iteration, micro_batch)` — the
/// shared generator the networked orchestrator also uses, so both
/// deployments inject bit-identical micro-batches.
fn input_bytes(seed: u64, iteration: usize, micro_batch: usize, len: usize) -> Vec<u8> {
    pipellm::partition::iteration_input(seed, iteration, micro_batch, len)
}

/// Pipeline-parallel serving engine over an N-device cluster.
pub struct PipelineEngine {
    config: PipelineConfig,
    cluster: ClusterContext,
    partition: StagePartition,
    /// Forward edge pipelines, `fwd[s]` covering `s → s+1` (PipeLLM only).
    fwd_pipes: Vec<EdgePipeline>,
    /// Backward edge pipelines, `bwd[s]` covering `s+1 → s` (PipeLLM +
    /// training only).
    bwd_pipes: Vec<EdgePipeline>,
    /// Per-stage, per-micro-batch activation buffers on device `s`.
    in_buf: Vec<Vec<DevicePtr>>,
    /// Per-stage gradient source buffer (training).
    grad_src: Vec<DevicePtr>,
    /// Per-stage gradient destination buffer (training).
    grad_dst: Vec<DevicePtr>,
    /// Per-micro-batch host ingress regions on device 0's context,
    /// rewritten (not reallocated) every iteration.
    ingress: Vec<HostRegion>,
    /// Per-micro-batch host output regions on the last device's context.
    out_regions: Vec<HostRegion>,
    outputs: Vec<Vec<u8>>,
    latencies: Samples,
    resilience: ResilienceStats,
}

impl PipelineEngine {
    /// Builds the cluster, partitions the layers, and allocates the
    /// per-stage activation buffers.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero stages, more
    /// stages than layers) or the device capacity cannot hold the
    /// activation buffers.
    pub fn new(config: PipelineConfig) -> Self {
        let stages = config.stages;
        let partition = StagePartition::balanced(config.layers, stages);
        let mut cluster = ClusterContext::new(ClusterConfig {
            devices: stages,
            cc: config.system.cc_mode(),
            timing: config.timing,
            nvlink: config.nvlink,
            device_capacity: (config.activation_bytes * (config.micro_batches as u64 + 2))
                .max(1 << 30),
            crypto_threads: config.crypto_threads,
            seed: config.seed,
            chaos: config.chaos.clone(),
        });
        let len = config.activation_bytes;
        let in_buf: Vec<Vec<DevicePtr>> = (0..stages)
            .map(|s| {
                (0..config.micro_batches)
                    .map(|_| {
                        cluster
                            .device_mut(s)
                            .alloc_device(len)
                            .expect("activation buffers fit device memory")
                    })
                    .collect()
            })
            .collect();
        let (grad_src, grad_dst) = if config.train {
            let alloc_virtual = |cluster: &mut ClusterContext, s: usize| {
                let ptr = cluster
                    .device_mut(s)
                    .alloc_device(len)
                    .expect("gradient buffer fits");
                cluster
                    .device_mut(s)
                    .device_memory_mut()
                    .store(ptr, Payload::virtual_of(len))
                    .expect("fresh allocation");
                ptr
            };
            (
                (0..stages)
                    .map(|s| alloc_virtual(&mut cluster, s))
                    .collect(),
                (0..stages)
                    .map(|s| alloc_virtual(&mut cluster, s))
                    .collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        let ingress = (0..config.micro_batches)
            .map(|_| {
                cluster
                    .device_mut(0)
                    .host_mut()
                    .alloc_real(vec![0u8; len as usize])
            })
            .collect();
        let out_regions = (0..config.micro_batches)
            .map(|_| {
                cluster
                    .device_mut(stages - 1)
                    .host_mut()
                    .alloc_real(vec![0u8; len as usize])
            })
            .collect();
        let speculative = config.system == PipelineSystem::PipeLlm;
        let fwd_pipes = if speculative {
            (0..stages.saturating_sub(1))
                .map(|s| EdgePipeline::new(s, s + 1, 2))
                .collect()
        } else {
            Vec::new()
        };
        let bwd_pipes = if speculative && config.train {
            (0..stages.saturating_sub(1))
                .map(|s| EdgePipeline::new(s + 1, s, 2))
                .collect()
        } else {
            Vec::new()
        };
        PipelineEngine {
            config,
            cluster,
            partition,
            fwd_pipes,
            bwd_pipes,
            in_buf,
            grad_src,
            grad_dst,
            ingress,
            out_regions,
            outputs: Vec::new(),
            latencies: Samples::new(),
            resilience: ResilienceStats::default(),
        }
    }

    /// The underlying cluster (counters, timelines, edge stats).
    pub fn cluster(&self) -> &ClusterContext {
        &self.cluster
    }

    /// The layer partition in use.
    pub fn partition(&self) -> &StagePartition {
        &self.partition
    }

    /// Final activations per micro-batch, in `(iteration, micro_batch)`
    /// order — the bit-exactness witness.
    pub fn outputs(&self) -> &[Vec<u8>] {
        &self.outputs
    }

    /// What the recovery protocol did during the run (all-zero without
    /// an injector or when no fault fired).
    pub fn resilience(&self) -> &ResilienceStats {
        &self.resilience
    }

    /// Aggregate speculation statistics over every edge direction
    /// (all-zero for the non-speculative systems).
    pub fn spec_stats(&self) -> PipeLlmStats {
        let mut total = PipeLlmStats::default();
        for pipe in self.fwd_pipes.iter().chain(self.bwd_pipes.iter()) {
            total += pipe.stats();
        }
        total
    }

    /// Errors if any edge's channel counters ended out of lockstep for
    /// any live session — ciphertext lost or replayed on a link.
    pub fn verify_edges(&self) -> Result<(), String> {
        for edge in self.cluster.edge_ids() {
            for session in self.cluster.session_ids() {
                let counters = self
                    .cluster
                    .edge_counters(edge, session)
                    .ok_or_else(|| format!("{edge} missing {session}"))?;
                if !counters.in_lockstep() {
                    return Err(format!("{edge} {session} out of lockstep: {counters:?}"));
                }
            }
        }
        Ok(())
    }

    /// Per-stage compute time of one pass over `stage`'s layers.
    fn stage_compute(&self, stage: usize, pass: Pass) -> Duration {
        let layers = self.partition.layers_of(stage).len() as u32;
        let fwd = self.config.compute_per_layer * layers;
        match pass {
            Pass::Forward => fwd,
            Pass::Backward => fwd * 2,
        }
    }

    /// Runs a transfer under the retry policy. A
    /// [`GpuError::TransferFaulted`] means both channel endpoints consumed
    /// the frame's IV (lockstep held, sentinel landed), so the op is safely
    /// re-issued after a jittered backoff — the re-issue seals at the fresh
    /// IV. When the retry budget is exhausted, one final escalation attempt
    /// runs with injection suppressed: chaos verifies that recovery works,
    /// not that an unbounded fault stream eventually wins. Every other
    /// error propagates immediately.
    fn with_retry<T>(
        &mut self,
        now: SimTime,
        salt: u64,
        mut op: impl FnMut(&mut Self, SimTime) -> Result<T, GpuError>,
    ) -> Result<T, GpuError> {
        let mut at = now;
        let mut attempt = 0u32;
        loop {
            match op(self, at) {
                Err(GpuError::TransferFaulted { .. }) if self.config.retry.allows(attempt) => {
                    let wait = self.config.retry.backoff_after(attempt, salt);
                    self.resilience.retries += 1;
                    self.resilience.retry_backoff += wait;
                    at += wait;
                    attempt += 1;
                }
                Err(GpuError::TransferFaulted { .. }) => {
                    self.resilience.escalations += 1;
                    let chaos = self.config.chaos.clone();
                    let _quiet = chaos.as_deref().map(ChaosInjector::suppress);
                    return op(self, at);
                }
                other => return other,
            }
        }
    }

    /// Per-hop jitter salt: distinct per (stage, micro-batch, direction)
    /// so concurrent retries never thundering-herd the same backoffs.
    fn hop_salt(stage: usize, m: usize, backward: bool) -> u64 {
        ((stage as u64) << 32) | ((m as u64) << 1) | u64::from(backward)
    }

    /// Rolls the stage-level chaos for one schedule op on `stage` and
    /// prices the recovery into the launch time: a hang stalls the stage
    /// executor until it clears or the per-op timeout fires (watchdog +
    /// restart); a kill restarts the executor and force-rekeys every edge
    /// touching the stage before traffic resumes.
    fn stage_chaos(&mut self, stage: usize, launch: SimTime) -> SimTime {
        let Some(fault) = self
            .config
            .chaos
            .as_deref()
            .and_then(|c| c.roll_stage(FaultSite::StageStep))
        else {
            return launch;
        };
        match fault.kind {
            FaultKind::StageHang => {
                self.resilience.stage_hangs += 1;
                // Salt-derived stall on [0, 2 × op_timeout): about half
                // the hangs clear on their own, the rest are cut short by
                // the watchdog and pay the restart.
                let hang = self.config.retry.op_timeout.mul_f64(fault.unit() * 2.0);
                if hang < self.config.retry.op_timeout {
                    launch + hang
                } else {
                    self.resilience.timeouts += 1;
                    launch + self.config.retry.op_timeout + self.config.restart_penalty
                }
            }
            FaultKind::StageKill => {
                self.resilience.stage_kills += 1;
                self.rekey_stage_edges(stage);
                launch + self.config.restart_penalty
            }
            _ => launch,
        }
    }

    /// Force-rekeys the active session on every edge adjacent to `stage`:
    /// a killed stage's channel state is gone, so both neighbours restart
    /// at a fresh epoch before traffic resumes. Speculative entries sealed
    /// under the old epoch are dropped by the edge pipelines' epoch check;
    /// every other edge keeps its counters untouched.
    fn rekey_stage_edges(&mut self, stage: usize) {
        let active = self.cluster.active_session();
        for neighbour in [stage.wrapping_sub(1), stage + 1] {
            if neighbour >= self.config.stages {
                continue;
            }
            let edge = EdgeId::between(stage, neighbour);
            if let Some(sessions) = self.cluster.edge_sessions_mut(edge) {
                if sessions.rekey(active).is_some() {
                    self.resilience.forced_rekeys += 1;
                }
            }
        }
    }

    /// Rolls the session-level chaos at an iteration boundary: a churn
    /// closes the serving session and reroutes every channel to a freshly
    /// keyed one (IV counters restart at zero everywhere); a rekey race
    /// bumps the epoch of one salt-chosen edge out from under whatever
    /// speculative state survived the iteration.
    fn session_chaos(&mut self, now: SimTime) -> Result<SimTime, GpuError> {
        let Some(fault) = self
            .config
            .chaos
            .as_deref()
            .and_then(|c| c.roll_session(FaultSite::SessionControl))
        else {
            return Ok(now);
        };
        match fault.kind {
            FaultKind::SessionChurn => {
                self.resilience.session_churns += 1;
                let old = self.cluster.active_session();
                let fresh = self.cluster.open_session();
                self.cluster.set_session(fresh)?;
                self.cluster.close_session(old)?;
                // The edge pipelines notice the active-session change and
                // drop their stale queues on the next prepare.
                Ok(now + self.config.restart_penalty)
            }
            FaultKind::RekeyRace => {
                let edges = self.cluster.edge_ids();
                if !edges.is_empty() {
                    let edge = edges[(fault.salt % edges.len() as u64) as usize];
                    let active = self.cluster.active_session();
                    if let Some(sessions) = self.cluster.edge_sessions_mut(edge) {
                        if sessions.rekey(active).is_some() {
                            self.resilience.forced_rekeys += 1;
                        }
                    }
                }
                Ok(now)
            }
            _ => Ok(now),
        }
    }

    /// Sends the forward activation of `(stage, m)` to `stage + 1` at
    /// `now`, returning `(issue thread free, arrival at next stage)`.
    fn send_forward(
        &mut self,
        stage: usize,
        m: usize,
        now: SimTime,
    ) -> Result<(SimTime, SimTime), GpuError> {
        let src = self.in_buf[stage][m];
        let dst = self.in_buf[stage + 1][m];
        let len = self.config.activation_bytes;
        if self.config.system == PipelineSystem::PipeLlm {
            let pipe = &mut self.fwd_pipes[stage];
            pipe.prepare(&mut self.cluster, now, src, dst, len);
            let t = pipe.transfer(&mut self.cluster, now, src, dst, len)?;
            Ok((t.api_return, t.complete))
        } else {
            let t = self
                .cluster
                .memcpy_dtod_async(now, stage, src, stage + 1, dst)?;
            Ok((t.api_return, t.complete))
        }
    }

    /// Sends the gradient of `(stage, m)` to `stage - 1` at `now`.
    fn send_backward(
        &mut self,
        stage: usize,
        _m: usize,
        now: SimTime,
    ) -> Result<(SimTime, SimTime), GpuError> {
        let src = self.grad_src[stage];
        let dst = self.grad_dst[stage - 1];
        let len = self.config.activation_bytes;
        if self.config.system == PipelineSystem::PipeLlm {
            let pipe = &mut self.bwd_pipes[stage - 1];
            pipe.prepare(&mut self.cluster, now, src, dst, len);
            let t = pipe.transfer(&mut self.cluster, now, src, dst, len)?;
            Ok((t.api_return, t.complete))
        } else {
            let t = self
                .cluster
                .memcpy_dtod_async(now, stage, src, stage - 1, dst)?;
            Ok((t.api_return, t.complete))
        }
    }

    /// Applies stage `stage`'s layer range to the activation buffer of
    /// micro-batch `m`, in place on the device.
    fn compute_functional(&mut self, stage: usize, m: usize) {
        let ptr = self.in_buf[stage][m];
        let layers = self.partition.layers_of(stage);
        let payload = self
            .cluster
            .device_mut(stage)
            .device_memory_mut()
            .get_mut(ptr)
            .expect("activation buffer is live");
        match payload {
            Payload::Real(bytes) => apply_stage(layers, bytes),
            Payload::Virtual { version, .. } => *version += u64::from(layers.len() as u32),
        }
    }

    /// Runs one synchronized iteration starting at `start`; returns its
    /// completion time.
    fn run_iteration(&mut self, iteration: usize, start: SimTime) -> Result<SimTime, GpuError> {
        let stages = self.config.stages;
        let mb = self.config.micro_batches;
        let len = self.config.activation_bytes as usize;

        // Inject inputs: the frontend issues the micro-batch uploads
        // sequentially over stage 0's PCIe link (native path for every
        // system — ingress cost cancels out of the comparison).
        let mut inject = vec![SimTime::ZERO; mb];
        let mut arrive_fwd: Vec<Vec<Option<SimTime>>> = vec![vec![None; mb]; stages];
        let mut frontend = start;
        for m in 0..mb {
            let bytes = input_bytes(self.config.seed, iteration, m, len);
            let region = self.ingress[m];
            self.cluster
                .device_mut(0)
                .host_mut()
                .write(region.addr, Payload::Real(bytes))
                .map_err(pipellm_gpu::GpuError::from)?;
            let dst = self.in_buf[0][m];
            let t = self.with_retry(frontend, Self::hop_salt(0, m, false) ^ 0x16e7, |e, at| {
                e.cluster.device_mut(0).memcpy_htod_async(at, dst, region)
            })?;
            inject[m] = frontend;
            frontend = t.api_return;
            arrive_fwd[0][m] = Some(t.complete);
        }

        // Dependency-driven execution of the per-stage schedules.
        let mut queues: Vec<VecDeque<ScheduleOp>> = (0..stages)
            .map(|s| {
                self.config
                    .schedule
                    .stage_ops(s, stages, mb, self.config.train)
                    .into()
            })
            .collect();
        let mut arrive_bwd: Vec<Vec<Option<SimTime>>> = vec![vec![None; mb]; stages];
        let mut fwd_done: Vec<Vec<Option<SimTime>>> = vec![vec![None; mb]; stages];
        let mut thread_free = vec![start; stages];
        let mut finished = start;
        loop {
            let mut progress = false;
            for s in 0..stages {
                while let Some(&op) = queues[s].front() {
                    let m = op.micro_batch;
                    let ready = match op.pass {
                        Pass::Forward => arrive_fwd[s][m],
                        Pass::Backward => {
                            if fwd_done[s][m].is_none() {
                                None
                            } else {
                                arrive_bwd[s][m]
                            }
                        }
                    };
                    let Some(ready) = ready else { break };
                    queues[s].pop_front();
                    progress = true;
                    let launch = self.stage_chaos(s, ready.max(thread_free[s]));
                    let duration = self.stage_compute(s, op.pass);
                    let compute_end = self
                        .cluster
                        .device_mut(s)
                        .launch_compute(launch, duration)
                        .end;
                    thread_free[s] = compute_end;
                    match op.pass {
                        Pass::Forward => {
                            self.compute_functional(s, m);
                            fwd_done[s][m] = Some(compute_end);
                            if s + 1 < stages {
                                let (free, arrival) = self.with_retry(
                                    compute_end,
                                    Self::hop_salt(s, m, false),
                                    |e, at| e.send_forward(s, m, at),
                                )?;
                                thread_free[s] = free;
                                arrive_fwd[s + 1][m] = Some(arrival);
                            } else {
                                // Egress: native D2H off the last stage.
                                let out = self.out_regions[m];
                                let src = self.in_buf[stages - 1][m];
                                let t = self.with_retry(
                                    compute_end,
                                    Self::hop_salt(s, m, false) ^ 0xe62e55,
                                    |e, at| {
                                        e.cluster
                                            .device_mut(stages - 1)
                                            .memcpy_dtoh_async(at, out, src)
                                    },
                                )?;
                                thread_free[s] = t.api_return;
                                finished = finished.max(t.complete);
                                self.latencies
                                    .record(t.complete.saturating_since(inject[m]).as_secs_f64());
                                if let Payload::Real(bytes) = self
                                    .cluster
                                    .device(stages - 1)
                                    .host()
                                    .get(out.addr)
                                    .expect("output region is live")
                                    .payload()
                                {
                                    self.outputs.push(bytes.clone());
                                }
                                if self.config.train {
                                    // Loss gradient is available as soon as
                                    // the last forward retires.
                                    arrive_bwd[s][m] = Some(compute_end);
                                }
                            }
                        }
                        Pass::Backward => {
                            if s > 0 {
                                let (free, arrival) = self.with_retry(
                                    compute_end,
                                    Self::hop_salt(s, m, true),
                                    |e, at| e.send_backward(s, m, at),
                                )?;
                                thread_free[s] = free;
                                arrive_bwd[s - 1][m] = Some(arrival);
                            }
                            finished = finished.max(compute_end);
                        }
                    }
                }
            }
            if queues.iter().all(VecDeque::is_empty) {
                break;
            }
            assert!(progress, "pipeline schedule deadlocked");
        }
        Ok(self.cluster.synchronize(finished))
    }
}

impl ServingEngine for PipelineEngine {
    fn engine_name(&self) -> &'static str {
        "Pipeline"
    }

    fn describe(&self) -> String {
        format!(
            "pipeline {} stages × {} mb × {} iters, {} layers, {}, {}",
            self.config.stages,
            self.config.micro_batches,
            self.config.iterations,
            self.config.layers,
            self.config.schedule,
            if self.config.train { "train" } else { "infer" },
        )
    }

    fn run_to_completion(&mut self) -> Result<ServingReport, GpuError> {
        let mut now = SimTime::ZERO;
        for iteration in 0..self.config.iterations {
            now = self.run_iteration(iteration, now)?;
            if iteration + 1 < self.config.iterations {
                now = self.session_chaos(now)?;
            }
        }
        let completed = (self.config.iterations * self.config.micro_batches) as u64;
        let secs = now.as_secs_f64().max(f64::MIN_POSITIVE);
        Ok(ServingReport {
            system: self.config.system.label().to_string(),
            workload: self.describe(),
            finished_at: now,
            tokens_per_sec: completed as f64 / secs,
            sequences_per_sec: self.config.iterations as f64 / secs,
            norm_latency_s_per_token: self.latencies.mean(),
            p99_norm_latency: self.latencies.percentile(99.0),
            completed,
            gpu_io_stall: self.cluster.total_io_stall(),
            io: self.cluster.host_io_stats(),
            preemptions: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipellm_gpu::cluster::EdgeId;

    fn config(stages: usize, system: PipelineSystem) -> PipelineConfig {
        PipelineConfig {
            stages,
            system,
            micro_batches: 4,
            iterations: 3,
            ..PipelineConfig::default()
        }
    }

    fn run(config: PipelineConfig) -> (PipelineEngine, ServingReport) {
        let mut engine = PipelineEngine::new(config);
        let report = engine.run_to_completion().expect("pipeline run");
        (engine, report)
    }

    #[test]
    fn n_stage_output_is_bit_exact_with_single_gpu() {
        let (single, _) = run(config(1, PipelineSystem::CcNative));
        for stages in [2usize, 4] {
            for system in [
                PipelineSystem::CcOff,
                PipelineSystem::CcNative,
                PipelineSystem::PipeLlm,
            ] {
                let (engine, _) = run(config(stages, system));
                assert_eq!(
                    engine.outputs(),
                    single.outputs(),
                    "{stages} stages under {:?} must match the single-GPU run",
                    system
                );
            }
        }
        assert_eq!(single.outputs().len(), 12, "iterations × micro-batches");
    }

    #[test]
    fn pipellm_frees_the_stage_threads_and_beats_native_cc() {
        let (_, native) = run(config(4, PipelineSystem::CcNative));
        let (engine, pipellm) = run(config(4, PipelineSystem::PipeLlm));
        let (_, off) = run(config(4, PipelineSystem::CcOff));
        assert!(
            pipellm.tokens_per_sec > native.tokens_per_sec,
            "PipeLLM {} vs CC {}",
            pipellm.tokens_per_sec,
            native.tokens_per_sec
        );
        assert!(off.tokens_per_sec >= pipellm.tokens_per_sec);
        let stats = engine.spec_stats();
        assert!(stats.spec_hits > 0, "{stats}");
        assert!(
            stats.success_rate() > 0.8,
            "ring slots are highly predictable: {stats}"
        );
    }

    #[test]
    fn single_stage_pipellm_equals_native_cc() {
        // With no inter-stage links the speculative system degenerates to
        // the native one exactly.
        let (_, native) = run(config(1, PipelineSystem::CcNative));
        let (engine, pipellm) = run(config(1, PipelineSystem::PipeLlm));
        assert_eq!(pipellm.finished_at, native.finished_at);
        assert_eq!(engine.spec_stats(), PipeLlmStats::default());
    }

    #[test]
    fn every_edge_ends_in_lockstep() {
        for system in [PipelineSystem::CcNative, PipelineSystem::PipeLlm] {
            let (engine, _) = run(config(4, system));
            engine.verify_edges().expect("lockstep");
            // Each of the 3 chain edges carried mb × iters transfers a→b.
            for s in 0..3 {
                let stats = engine
                    .cluster()
                    .edge_stats(EdgeId::between(s, s + 1))
                    .unwrap();
                assert_eq!(stats.ab_ops, 12, "{system:?} edge {s}");
                assert_eq!(stats.ba_ops, 0, "inference sends nothing back");
            }
        }
    }

    #[test]
    fn training_flows_gradients_over_the_reverse_direction() {
        let mut cfg = config(3, PipelineSystem::PipeLlm);
        cfg.train = true;
        cfg.schedule = PipelineSchedule::OneFOneB;
        let (engine, report) = run(cfg);
        assert_eq!(report.completed, 12);
        engine.verify_edges().expect("lockstep");
        for s in 0..2 {
            let stats = engine
                .cluster()
                .edge_stats(EdgeId::between(s, s + 1))
                .unwrap();
            assert_eq!(stats.ab_ops, 12);
            assert_eq!(stats.ba_ops, 12, "every gradient crosses back");
        }
        // Forward outputs stay bit-exact with the inference run.
        let (infer, _) = run(config(3, PipelineSystem::PipeLlm));
        assert_eq!(engine.outputs(), infer.outputs());
    }

    #[test]
    fn fill_drain_and_one_f_one_b_agree_on_results() {
        let mut fd = config(4, PipelineSystem::PipeLlm);
        fd.train = true;
        let mut ob = fd.clone();
        ob.schedule = PipelineSchedule::OneFOneB;
        let (fd_engine, _) = run(fd);
        let (ob_engine, _) = run(ob);
        assert_eq!(fd_engine.outputs(), ob_engine.outputs());
    }

    use pipellm_chaos::FaultPlan;

    /// `config(..)` plus a seeded injector shared engine-wide.
    fn chaotic(stages: usize, system: PipelineSystem, plan: FaultPlan) -> PipelineConfig {
        PipelineConfig {
            chaos: Some(Arc::new(ChaosInjector::new(plan))),
            ..config(stages, system)
        }
    }

    #[test]
    fn chaos_free_run_records_no_resilience_events() {
        let (engine, _) = run(config(3, PipelineSystem::PipeLlm));
        assert_eq!(engine.resilience().total_events(), 0);
    }

    #[test]
    fn faulted_links_retry_and_outputs_stay_bit_exact() {
        let (clean, _) = run(config(2, PipelineSystem::CcNative));
        for system in [PipelineSystem::CcNative, PipelineSystem::PipeLlm] {
            let plan = FaultPlan::new(17).with_frame_rate(1.0);
            let (engine, _) = run(chaotic(2, system, plan));
            assert_eq!(
                engine.outputs(),
                clean.outputs(),
                "{system:?} must recover every frame"
            );
            engine.verify_edges().expect("lockstep after recovery");
            let res = engine.resilience();
            assert!(res.escalations > 0, "rate 1.0 exhausts every budget");
            // Rate 1.0 means every live attempt faults: each op walks the
            // full ladder — max_retries retries, then one suppressed
            // escalation. Bounded, never infinite.
            assert_eq!(
                res.retries,
                res.escalations * u64::from(PipelineConfig::default().retry.max_retries),
                "{res}"
            );
            assert!(res.retry_backoff > Duration::ZERO);
        }
    }

    #[test]
    fn moderate_fault_rate_recovers_with_partial_retries() {
        let (clean, clean_report) = run(config(2, PipelineSystem::PipeLlm));
        let plan = FaultPlan::new(29).with_frame_rate(0.3);
        let (engine, report) = run(chaotic(2, PipelineSystem::PipeLlm, plan));
        assert_eq!(engine.outputs(), clean.outputs());
        engine.verify_edges().expect("lockstep");
        let res = engine.resilience();
        assert!(res.retries > 0, "30% faults must trigger retries: {res}");
        assert!(
            res.escalations < res.retries,
            "most retries succeed before the budget runs out: {res}"
        );
        assert!(
            report.finished_at > clean_report.finished_at,
            "recovery costs time: {:?} vs {:?}",
            report.finished_at,
            clean_report.finished_at
        );
    }

    #[test]
    fn hung_stage_times_out_and_the_run_completes() {
        let (clean, clean_report) = run(config(2, PipelineSystem::CcNative));
        let plan = FaultPlan::new(41).with_rate(FaultKind::StageHang, 1.0);
        let (engine, report) = run(chaotic(2, PipelineSystem::CcNative, plan));
        let res = engine.resilience();
        assert!(res.stage_hangs > 0, "{res}");
        assert!(
            res.timeouts > 0,
            "some hangs must outlast the watchdog: {res}"
        );
        assert!(
            res.timeouts < res.stage_hangs,
            "some hangs clear before the watchdog: {res}"
        );
        assert_eq!(engine.outputs(), clean.outputs());
        assert!(report.finished_at > clean_report.finished_at);
    }

    #[test]
    fn killed_stage_rekeys_its_edges_and_lockstep_holds_everywhere() {
        let (clean, _) = run(config(4, PipelineSystem::PipeLlm));
        let plan = FaultPlan::new(53).with_rate(FaultKind::StageKill, 0.2);
        let (engine, _) = run(chaotic(4, PipelineSystem::PipeLlm, plan));
        let res = engine.resilience();
        assert!(res.stage_kills > 0, "{res}");
        assert!(
            res.forced_rekeys >= res.stage_kills,
            "every kill rekeys at least one adjacent edge: {res}"
        );
        // The reroute must not desync any edge — including edges nowhere
        // near the killed stage.
        engine.verify_edges().expect("lockstep across all edges");
        assert_eq!(engine.outputs(), clean.outputs());
    }

    #[test]
    fn session_churn_reroutes_mid_stream_without_losing_work() {
        let (clean, _) = run(config(2, PipelineSystem::PipeLlm));
        let plan = FaultPlan::new(61).with_rate(FaultKind::SessionChurn, 1.0);
        let (engine, report) = run(chaotic(2, PipelineSystem::PipeLlm, plan));
        let res = engine.resilience();
        // One churn per iteration boundary (3 iterations → 2 boundaries).
        assert_eq!(res.session_churns, 2, "{res}");
        // Old sessions are closed, not leaked.
        assert_eq!(engine.cluster().session_ids().len(), 1);
        engine.verify_edges().expect("fresh session in lockstep");
        assert_eq!(engine.outputs(), clean.outputs());
        assert_eq!(report.completed, 12);
    }

    #[test]
    fn report_carries_the_pipeline_shape() {
        let (_, report) = run(config(2, PipelineSystem::CcOff));
        assert_eq!(report.system, "w/o CC");
        assert!(report.workload.contains("2 stages"));
        assert!(report.tokens_per_sec > 0.0);
        assert!(report.norm_latency_s_per_token > 0.0);
        assert_eq!(report.completed, 12);
    }
}
