//! A PEFT/DeepSpeed-like LoRA fine-tuning engine with model offloading.
//!
//! The paper's case study 3 (§3) fine-tunes OPT-30B/13B with LoRA using
//! PEFT + DeepSpeed model offloading on the ultrachat dataset. The
//! performance-relevant structure is:
//!
//! - frozen base weights partially offloaded to host memory, streamed in
//!   layer order for the **forward** pass and in *reverse* layer order for
//!   the **backward** pass — together a repeating cycle the PipeLLM
//!   predictor recognizes as the repetitive pattern;
//! - small LoRA adapter gradients shipped to the CPU optimizer and updated
//!   adapters shipped back each step (DeepSpeed optimizer offload);
//! - throughput measured in training sequences per second (Figure 3c/7c).

use crate::engine::ServingEngine;
use crate::report::ServingReport;
use crate::stream::LayerPlan;
use pipellm_gpu::memory::{HostRegion, Payload};
use pipellm_gpu::runtime::GpuRuntime;
use pipellm_gpu::GpuError;
use pipellm_llm::{GpuComputeModel, ModelSpec};
use pipellm_sim::time::SimTime;
use pipellm_workloads::FinetuneSample;

/// Configuration for a LoRA fine-tuning run.
#[derive(Debug, Clone)]
pub struct PeftConfig {
    /// Base model (frozen weights).
    pub model: ModelSpec,
    /// GPU compute calibration.
    pub gpu: GpuComputeModel,
    /// Sequences per training step.
    pub batch: u64,
    /// LoRA rank (adapters on q/v projections).
    pub lora_rank: u64,
    /// Device bytes reserved for activations/workspace. Training
    /// activations are large — this is what forces base-weight offloading
    /// even for models that fit for inference.
    pub workspace_bytes: u64,
}

impl PeftConfig {
    /// The paper's configuration for a given model (max batch to trigger
    /// swapping; generous activation workspace).
    pub fn new(model: ModelSpec) -> Self {
        PeftConfig {
            model,
            gpu: GpuComputeModel::h100(),
            batch: 16,
            lora_rank: 16,
            workspace_bytes: 40_000_000_000,
        }
    }

    /// LoRA adapter parameters across the whole model (A and B matrices on
    /// the q and v projections of every layer).
    pub fn lora_params(&self) -> u64 {
        u64::from(self.model.layers) * 4 * self.model.hidden * self.lora_rank
    }

    /// Bytes of one direction of the per-step optimizer exchange
    /// (fp16 gradients out; updated fp16 adapters back).
    pub fn optimizer_exchange_bytes(&self) -> u64 {
        self.lora_params() * 2
    }

    /// Description string for reports.
    pub fn describe(&self) -> String {
        format!("PEFT LoRA {}", self.model.name)
    }
}

/// The fine-tuning engine.
#[derive(Debug)]
pub struct PeftEngine<R: GpuRuntime> {
    rt: R,
    config: PeftConfig,
    plan: LayerPlan,
    grad_chunk: HostRegion,
    grad_dev: pipellm_gpu::memory::DevicePtr,
    /// Samples queued for [`ServingEngine::run_to_completion`].
    dataset: Vec<FinetuneSample>,
}

impl<R: GpuRuntime> PeftEngine<R> {
    /// Loads the model, offloading base layers that do not fit next to the
    /// activation workspace.
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] if the resident set cannot be allocated.
    pub fn load(mut rt: R, config: PeftConfig) -> Result<Self, GpuError> {
        let layer_bytes = config.model.layer_weight_bytes();
        let reserve = config.workspace_bytes
            + config.model.embedding_bytes()
            + 4 * config.optimizer_exchange_bytes();
        let resident = LayerPlan::resident_layers(
            rt.device_capacity(),
            reserve,
            layer_bytes,
            config.model.layers,
        );
        rt.alloc_device(config.model.embedding_bytes())?;
        rt.alloc_device(config.workspace_bytes)?;
        let plan = LayerPlan::build(&mut rt, resident, config.model.layers as usize, layer_bytes)?;
        let exchange = config.optimizer_exchange_bytes().max(1);
        let grad_chunk = rt.alloc_host(Payload::virtual_of(exchange));
        let grad_dev = rt.alloc_device(exchange)?;
        Ok(PeftEngine {
            rt,
            config,
            plan,
            grad_chunk,
            grad_dev,
            dataset: Vec::new(),
        })
    }

    /// Number of base layers streamed from host memory each pass.
    pub fn offloaded_layers(&self) -> usize {
        self.plan.offloaded()
    }

    /// Queues samples for a later [`ServingEngine::run_to_completion`].
    pub fn queue_dataset(&mut self, samples: &[FinetuneSample]) {
        self.dataset.extend_from_slice(samples);
    }

    /// The underlying runtime.
    pub fn runtime(&self) -> &R {
        &self.rt
    }

    /// Trains one epoch over `dataset`; reports sequences/second.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (none are expected for valid configs).
    pub fn train(&mut self, dataset: &[FinetuneSample]) -> Result<ServingReport, GpuError> {
        let mut now = SimTime::ZERO;
        let mut sequences = 0u64;
        for batch in dataset.chunks(self.config.batch.max(1) as usize) {
            let mean_len = (batch.iter().map(|s| u64::from(s.tokens)).sum::<u64>()
                / batch.len() as u64)
                .max(1);
            let per_layer =
                self.config
                    .gpu
                    .train_layer_time(&self.config.model, batch.len() as u64, mean_len);
            // Forward pass: layers in order; backward: reverse order.
            now = self.run_pass(now, per_layer, false)?;
            now = self.run_pass(now, per_layer, true)?;
            // Optimizer offload: gradients out, updated adapters back. The
            // CPU optimizer must see the gradients before updating, so this
            // exchange is synchronous with the step boundary.
            let cpu = self.rt.memcpy_dtoh(now, self.grad_chunk, self.grad_dev)?;
            // The CPU optimizer updates the adapters in host memory; with
            // asynchronous decryption this may fault and wait.
            let cpu = self.rt.host_touch(cpu, self.grad_chunk.addr)?;
            let cpu = self.rt.memcpy_htod(cpu, self.grad_dev, self.grad_chunk)?;
            now = self.rt.synchronize(cpu);
            sequences += batch.len() as u64;
        }
        let stats = self.rt.io_stats();
        Ok(ServingReport {
            system: self.rt.label().to_string(),
            workload: self.config.describe(),
            finished_at: now,
            sequences_per_sec: sequences as f64 / now.as_secs_f64().max(f64::MIN_POSITIVE),
            completed: sequences,
            gpu_io_stall: self.rt.gpu_io_stall(),
            io: stats,
            ..ServingReport::default()
        })
    }

    /// One pass over the layers (forward or reversed) via the shared
    /// streaming loop; training pays no extra CPU-side per-layer cost.
    fn run_pass(
        &mut self,
        start: SimTime,
        per_layer: std::time::Duration,
        reverse: bool,
    ) -> Result<SimTime, GpuError> {
        self.plan.run_pass(
            &mut self.rt,
            start,
            per_layer,
            std::time::Duration::ZERO,
            reverse,
        )
    }
}

impl<R: GpuRuntime> ServingEngine for PeftEngine<R> {
    fn engine_name(&self) -> &'static str {
        "PEFT"
    }

    fn describe(&self) -> String {
        self.config.describe()
    }

    fn run_to_completion(&mut self) -> Result<ServingReport, GpuError> {
        let dataset = std::mem::take(&mut self.dataset);
        self.train(&dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipellm_gpu::runtime::{CcNativeRuntime, CcOffRuntime};
    use pipellm_gpu::IoTimingModel;
    use pipellm_workloads::ultrachat_like;

    const GB: u64 = 1_000_000_000;

    fn dataset(n: usize) -> Vec<FinetuneSample> {
        ultrachat_like(n, 13)
    }

    #[test]
    fn training_forces_offload_even_for_30b() {
        // OPT-30B fits for inference but not next to 40 GB of activations.
        let rt = CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1);
        let engine = PeftEngine::load(rt, PeftConfig::new(ModelSpec::opt_30b())).unwrap();
        assert!(
            engine.offloaded_layers() > 10,
            "{}",
            engine.offloaded_layers()
        );
    }

    #[test]
    fn smaller_model_offloads_less() {
        let rt13 = CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1);
        let rt30 = CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1);
        let e13 = PeftEngine::load(rt13, PeftConfig::new(ModelSpec::opt_13b())).unwrap();
        let e30 = PeftEngine::load(rt30, PeftConfig::new(ModelSpec::opt_30b())).unwrap();
        assert!(e13.offloaded_layers() < e30.offloaded_layers());
    }

    #[test]
    fn cc_reduces_training_throughput() {
        let data = dataset(64);
        let r_off = PeftEngine::load(
            CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1),
            PeftConfig::new(ModelSpec::opt_30b()),
        )
        .unwrap()
        .train(&data)
        .unwrap();
        let r_cc = PeftEngine::load(
            CcNativeRuntime::new(IoTimingModel::default(), 80 * GB, 1),
            PeftConfig::new(ModelSpec::opt_30b()),
        )
        .unwrap()
        .train(&data)
        .unwrap();
        let drop = 1.0 - r_cc.sequences_per_sec / r_off.sequences_per_sec;
        // Figure 3c: 36.2% drop on OPT-30B. Expect a material drop (>15%).
        assert!(drop > 0.15, "drop {:.1}%", drop * 100.0);
        assert!(
            drop < 0.95,
            "training is partly compute-bound: {:.1}%",
            drop * 100.0
        );
    }

    #[test]
    fn lora_exchange_is_small_io() {
        let config = PeftConfig::new(ModelSpec::opt_30b());
        // 48 layers × 4 × 7168 × 16 params ≈ 22M params ≈ 44 MB fp16 —
        // tiny next to per-step layer streaming (tens of GB).
        let exchange = config.optimizer_exchange_bytes();
        assert!(exchange < 100_000_000, "{exchange}");
        let layer_stream = config.model.layer_weight_bytes() * 20;
        assert!(layer_stream / exchange > 100);
    }

    #[test]
    fn both_passes_stream_the_same_volume() {
        let data = dataset(16);
        let config = PeftConfig::new(ModelSpec::opt_30b());
        let mut engine = PeftEngine::load(
            CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1),
            config.clone(),
        )
        .unwrap();
        let offloaded = engine.offloaded_layers() as u64;
        let report = engine.train(&data).unwrap();
        let steps = (data.len() as u64).div_ceil(config.batch);
        // Forward + backward each stream the offloaded layers once per step.
        let expected_layer_bytes = steps * 2 * offloaded * config.model.layer_weight_bytes();
        let expected_h2d = expected_layer_bytes + steps * config.optimizer_exchange_bytes();
        assert_eq!(report.io.h2d_bytes, expected_h2d);
        assert_eq!(
            report.io.d2h_bytes,
            steps * config.optimizer_exchange_bytes()
        );
        assert_eq!(report.completed, data.len() as u64);
    }
}
