//! A FlexGen-like model-offloading inference engine.
//!
//! FlexGen (Sheng et al., 2023) serves models larger than GPU memory by
//! keeping only part of the weights resident and streaming the remaining
//! layers from host memory every iteration — the paper's case study 1 (§3)
//! and Figures 3a/7a/7b. The swap-in pattern is **repetitive**: the same
//! offloaded layers in the same order, once per forward pass.
//!
//! The engine below reproduces the structure that matters to PipeLLM:
//!
//! - a static split of layers into GPU-resident and host-offloaded, chosen
//!   from device capacity after reserving KV cache and workspace;
//! - per pass: for each offloaded layer, an H2D copy into one of two
//!   staging buffers (double buffering), a synchronize, then the layer's
//!   compute — so transfers overlap the previous layer's compute exactly as
//!   far as the runtime allows;
//! - batched auto-regressive generation: one prefill pass plus
//!   `output_tokens − 1` decode passes per batch.

use crate::engine::ServingEngine;
use crate::report::ServingReport;
use crate::stream::LayerPlan;
use pipellm_gpu::runtime::GpuRuntime;
use pipellm_gpu::GpuError;
use pipellm_llm::{GpuComputeModel, ModelSpec};
use pipellm_sim::metrics::Throughput;
use pipellm_sim::time::SimTime;

/// Configuration for a FlexGen-like run.
#[derive(Debug, Clone)]
pub struct FlexGenConfig {
    /// Model to serve.
    pub model: ModelSpec,
    /// GPU compute calibration.
    pub gpu: GpuComputeModel,
    /// Sequences per batch.
    pub batch: u64,
    /// Prompt length in tokens.
    pub prompt_tokens: u32,
    /// Output length in tokens.
    pub output_tokens: u32,
    /// Total requests to serve (the paper uses 1000 per test case).
    pub requests: u64,
    /// Device bytes reserved for activations/workspace.
    pub workspace_bytes: u64,
    /// CPU-side work per streamed layer (buffer management, scheduling,
    /// partial CPU attention) — what keeps real FlexGen below PCIe line
    /// rate (the paper measures ≈56 GB/s effective vs 64 GB/s peak).
    pub host_overhead_per_layer: std::time::Duration,
}

impl FlexGenConfig {
    /// The paper's OPT-66B configuration with a given prompt/output split.
    pub fn opt_66b(prompt_tokens: u32, output_tokens: u32) -> Self {
        FlexGenConfig {
            model: ModelSpec::opt_66b(),
            gpu: GpuComputeModel::h100(),
            batch: 64,
            prompt_tokens,
            output_tokens,
            requests: 1000,
            workspace_bytes: 4_000_000_000,
            host_overhead_per_layer: std::time::Duration::from_millis(12),
        }
    }

    /// The paper's 4-bit OPT-175B configuration.
    pub fn opt_175b_int4(prompt_tokens: u32, output_tokens: u32) -> Self {
        FlexGenConfig {
            model: ModelSpec::opt_175b_int4(),
            batch: 32,
            ..Self::opt_66b(prompt_tokens, output_tokens)
        }
    }

    /// KV-cache bytes the batch needs at peak (all KV stays on GPU: the
    /// paper pins KV to isolate model offloading).
    pub fn kv_reserve_bytes(&self) -> u64 {
        let peak = u64::from(self.prompt_tokens) + u64::from(self.output_tokens);
        self.batch * self.model.kv_bytes_for_seq(peak)
    }

    /// Description string for reports.
    pub fn describe(&self) -> String {
        format!(
            "FlexGen {} {}/{}",
            self.model.name, self.prompt_tokens, self.output_tokens
        )
    }
}

/// The engine. Generic over the runtime, per the transparency requirement.
#[derive(Debug)]
pub struct FlexGenEngine<R: GpuRuntime> {
    rt: R,
    config: FlexGenConfig,
    plan: LayerPlan,
}

impl<R: GpuRuntime> FlexGenEngine<R> {
    /// Loads the model: places as many layers on the GPU as fit after
    /// reserving KV cache and workspace; offloads the rest to host memory.
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] if even the resident set cannot be allocated.
    pub fn load(mut rt: R, config: FlexGenConfig) -> Result<Self, GpuError> {
        let layer_bytes = config.model.layer_weight_bytes();
        let embed_bytes = config.model.embedding_bytes();
        let reserve = config.kv_reserve_bytes() + config.workspace_bytes + embed_bytes;
        let resident = LayerPlan::resident_layers(
            rt.device_capacity(),
            reserve,
            layer_bytes,
            config.model.layers,
        );

        // Claim embeddings and KV as device allocations; the plan claims
        // the resident weights and the staging buffers.
        rt.alloc_device(embed_bytes)?;
        rt.alloc_device(config.kv_reserve_bytes().max(1))?;
        let plan = LayerPlan::build(&mut rt, resident, config.model.layers as usize, layer_bytes)?;
        Ok(FlexGenEngine { rt, config, plan })
    }

    /// Number of layers streamed from host memory each pass.
    pub fn offloaded_layers(&self) -> usize {
        self.plan.offloaded()
    }

    /// The underlying runtime.
    pub fn runtime(&self) -> &R {
        &self.rt
    }

    /// Runs the configured workload and reports throughput.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (none are expected for valid configs).
    pub fn run(&mut self) -> Result<ServingReport, GpuError> {
        let batches = (self.config.requests / self.config.batch).max(1);
        let mut now = SimTime::ZERO;
        let mut throughput = Throughput::new();
        for _batch in 0..batches {
            // Pass 0 is prefill; the rest are decode iterations.
            for pass in 0..u64::from(self.config.output_tokens) {
                let per_layer = if pass == 0 {
                    self.config.gpu.prefill_layer_time(
                        &self.config.model,
                        self.config.batch,
                        u64::from(self.config.prompt_tokens),
                    )
                } else {
                    let context = self.config.batch * (u64::from(self.config.prompt_tokens) + pass);
                    self.config.gpu.decode_layer_time(
                        &self.config.model,
                        self.config.batch,
                        context,
                    )
                };
                now = self.run_pass(now, per_layer)?;
                throughput.record(self.config.batch as f64, now);
            }
        }
        let stats = self.rt.io_stats();
        Ok(ServingReport {
            system: self.rt.label().to_string(),
            workload: self.config.describe(),
            finished_at: now,
            // Prefill passes do not emit tokens; subtract them.
            tokens_per_sec: {
                let tokens = batches * self.config.batch * u64::from(self.config.output_tokens);
                tokens as f64 / now.as_secs_f64().max(f64::MIN_POSITIVE)
            },
            sequences_per_sec: (batches * self.config.batch) as f64
                / now.as_secs_f64().max(f64::MIN_POSITIVE),
            completed: batches * self.config.batch,
            gpu_io_stall: self.rt.gpu_io_stall(),
            io: stats,
            ..ServingReport::default()
        })
    }

    /// One forward pass over all layers (shared streaming loop, forward
    /// order, with this engine's CPU-side per-layer overhead).
    fn run_pass(
        &mut self,
        start: SimTime,
        per_layer: std::time::Duration,
    ) -> Result<SimTime, GpuError> {
        self.plan.run_pass(
            &mut self.rt,
            start,
            per_layer,
            self.config.host_overhead_per_layer,
            false,
        )
    }
}

impl<R: GpuRuntime> ServingEngine for FlexGenEngine<R> {
    fn engine_name(&self) -> &'static str {
        "FlexGen"
    }

    fn describe(&self) -> String {
        self.config.describe()
    }

    fn run_to_completion(&mut self) -> Result<ServingReport, GpuError> {
        self.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipellm_gpu::runtime::{CcNativeRuntime, CcOffRuntime};
    use pipellm_gpu::IoTimingModel;

    const GB: u64 = 1_000_000_000;

    fn small_config() -> FlexGenConfig {
        // A scaled-down configuration that still forces offloading.
        FlexGenConfig {
            model: ModelSpec::opt_66b(),
            gpu: GpuComputeModel::h100(),
            batch: 16,
            prompt_tokens: 32,
            output_tokens: 8,
            requests: 32,
            workspace_bytes: 4 * GB,
            host_overhead_per_layer: std::time::Duration::from_millis(12),
        }
    }

    #[test]
    fn oversized_model_gets_offloaded() {
        let rt = CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1);
        let engine = FlexGenEngine::load(rt, small_config()).unwrap();
        // OPT-66B is 132 GB; a large fraction of its 64 layers must stream.
        assert!(
            engine.offloaded_layers() > 20,
            "{}",
            engine.offloaded_layers()
        );
        assert!(engine.offloaded_layers() < 64);
    }

    #[test]
    fn model_that_fits_needs_no_offload() {
        let rt = CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1);
        let config = FlexGenConfig {
            model: ModelSpec::opt_13b(),
            ..small_config()
        };
        let engine = FlexGenEngine::load(rt, config).unwrap();
        assert_eq!(engine.offloaded_layers(), 0);
    }

    #[test]
    fn cc_throughput_collapses_versus_cc_off() {
        let config = small_config();
        let off = FlexGenEngine::load(
            CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1),
            config.clone(),
        )
        .unwrap()
        .run()
        .unwrap();
        let cc = FlexGenEngine::load(
            CcNativeRuntime::new(IoTimingModel::default(), 80 * GB, 1),
            config,
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(off.tokens_per_sec > 0.0);
        let drop = 1.0 - cc.tokens_per_sec / off.tokens_per_sec;
        // §3: "up to an 88.2% serving throughput drop" — the shape we need
        // is a drop of the same order (>70%).
        assert!(drop > 0.70, "CC drop was only {:.1}%", drop * 100.0);
    }

    #[test]
    fn swap_traffic_matches_offloaded_volume() {
        let config = small_config();
        let mut engine = FlexGenEngine::load(
            CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1),
            config.clone(),
        )
        .unwrap();
        let offloaded = engine.offloaded_layers() as u64;
        let report = engine.run().unwrap();
        let passes = (config.requests / config.batch) * u64::from(config.output_tokens);
        let expected = passes * offloaded * config.model.layer_weight_bytes();
        assert_eq!(report.io.h2d_bytes, expected);
        assert_eq!(report.io.d2h_bytes, 0, "model offloading never swaps out");
    }

    #[test]
    fn report_counts_all_sequences() {
        let config = small_config();
        let report = FlexGenEngine::load(
            CcOffRuntime::new(IoTimingModel::default(), 80 * GB, 1),
            config.clone(),
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(
            report.completed,
            (config.requests / config.batch) * config.batch
        );
        assert!(report.finished_at > SimTime::ZERO);
        assert_eq!(report.system, "w/o CC");
    }
}
