//! Property tests for the resource timelines: the scheduling invariants
//! every timing result in the reproduction rests on.

use pipellm_sim::resource::{GpuEngine, Link, Server, WorkerPool};
use pipellm_sim::time::SimTime;
use proptest::prelude::*;
use std::time::Duration;

/// (arrival offset µs, service µs) request streams.
fn requests() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..500, 1u64..200), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A single server never overlaps reservations and never serves before
    /// arrival; total busy time equals the sum of service times.
    #[test]
    fn server_reservations_are_disjoint_and_causal(reqs in requests()) {
        let mut server = Server::new();
        let mut arrival = SimTime::ZERO;
        let mut last_end = SimTime::ZERO;
        let mut total_service = Duration::ZERO;
        for (gap, service) in reqs {
            arrival += Duration::from_micros(gap);
            let service = Duration::from_micros(service);
            let r = server.reserve(arrival, service);
            prop_assert!(r.start >= arrival, "service before arrival");
            prop_assert!(r.start >= last_end, "overlapping reservations");
            prop_assert_eq!(r.end, r.start + service);
            last_end = r.end;
            total_service += service;
        }
        prop_assert!(server.next_free() >= SimTime::ZERO + total_service);
    }

    /// A k-worker pool admits at most k overlapping reservations and is
    /// work-conserving: a request never waits while a worker is idle.
    #[test]
    fn worker_pool_parallelism_is_bounded_and_work_conserving(
        reqs in requests(),
        workers in 1usize..6,
    ) {
        let mut pool = WorkerPool::new(workers);
        let mut arrival = SimTime::ZERO;
        let mut spans: Vec<(SimTime, SimTime)> = Vec::new();
        for (gap, service) in reqs {
            arrival += Duration::from_micros(gap);
            let r = pool.reserve(arrival, Duration::from_micros(service));
            prop_assert!(r.start >= arrival);
            // Work conservation: if the request waited, all workers were
            // busy at its arrival.
            if r.start > arrival {
                let busy_at_arrival = spans
                    .iter()
                    .filter(|(s, e)| *s <= arrival && arrival < *e)
                    .count();
                prop_assert!(
                    busy_at_arrival >= workers,
                    "waited with only {busy_at_arrival}/{workers} busy"
                );
            }
            spans.push((r.start, r.end));
        }
        // At no reservation start are more than `workers` spans active.
        for &(start, _) in &spans {
            let active = spans.iter().filter(|(s, e)| *s <= start && start < *e).count();
            prop_assert!(active <= workers, "{active} active on {workers} workers");
        }
    }

    /// The link conserves bytes and sustains exactly its configured
    /// bandwidth under saturation.
    #[test]
    fn link_conserves_bytes_and_bandwidth(
        sizes in proptest::collection::vec(1u64..4_000_000, 1..30),
        gbps in 1u32..100,
    ) {
        let mut link = Link::new(f64::from(gbps), Duration::from_micros(1));
        let mut last_end = SimTime::ZERO;
        let total: u64 = sizes.iter().sum();
        for bytes in &sizes {
            // Saturating schedule: everything arrives at time zero.
            let r = link.transfer(SimTime::ZERO, *bytes);
            prop_assert!(r.end > r.start || *bytes == 0);
            last_end = last_end.max(r.end);
        }
        prop_assert_eq!(link.bytes_moved(), total);
        // Wire time (minus the single trailing latency) matches bytes/bw.
        let expected = total as f64 / link.bytes_per_sec();
        let measured = last_end.as_secs_f64() - 1e-6;
        prop_assert!(
            (measured - expected).abs() <= expected * 0.01 + 1e-9,
            "expected {expected}s got {measured}s"
        );
    }

    /// GPU engine: kernels are serial, causal, and stall accounting adds up.
    #[test]
    fn gpu_engine_is_serial_and_accounts_stalls(reqs in requests()) {
        let mut gpu = GpuEngine::new();
        let mut ready = SimTime::ZERO;
        let mut last_end = SimTime::ZERO;
        let mut busy = Duration::ZERO;
        for (gap, dur) in reqs {
            ready += Duration::from_micros(gap);
            let dur = Duration::from_micros(dur);
            let r = gpu.run(ready, dur);
            prop_assert!(r.start >= ready);
            prop_assert!(r.start >= last_end);
            last_end = r.end;
            busy += dur;
        }
        prop_assert_eq!(gpu.busy_time(), busy);
        // Stall + busy ≤ makespan.
        let makespan = last_end.saturating_since(SimTime::ZERO);
        prop_assert!(gpu.io_stall_time() + busy <= makespan + Duration::from_nanos(1));
    }
}
