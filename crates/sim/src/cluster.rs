//! Per-device and per-edge timelines for multi-GPU topologies.
//!
//! A pipeline-parallel cluster is a set of device compute engines joined by
//! inter-GPU links. Each link is a bandwidth-limited [`Link`] plus the
//! *crypto serialization* the confidential-computing mode adds on that hop:
//! every sealed transfer occupies a crypto worker for its seal and open
//! time, and that per-link serialization is exactly the quantity the
//! TM-style cost analyses say must be measured rather than assumed — it
//! grows with the number of stages a model is sharded across.
//!
//! [`EdgeTimeline`] wraps one link with that accounting;
//! [`TimelineSummary`] collects per-device and per-edge utilization rows so
//! the cluster context and the benches report one consistent table.

use crate::resource::{Link, Reservation};
use crate::time::SimTime;
use std::fmt;
use std::time::Duration;

/// One inter-GPU link's timeline: wire occupancy plus the crypto
/// serialization attributed to transfers crossing this edge.
#[derive(Debug, Clone)]
pub struct EdgeTimeline {
    link: Link,
    crypto_serialization: Duration,
    transfers: u64,
    nops: u64,
}

impl EdgeTimeline {
    /// Creates a timeline over a link with `gbps` GB/s of bandwidth and a
    /// fixed per-operation latency.
    pub fn new(gbps: f64, latency: Duration) -> Self {
        EdgeTimeline {
            link: Link::new(gbps, latency),
            crypto_serialization: Duration::ZERO,
            transfers: 0,
            nops: 0,
        }
    }

    /// Moves `bytes` over the wire starting no earlier than `at`.
    pub fn transfer(&mut self, at: SimTime, bytes: u64) -> Reservation {
        self.transfers += 1;
        self.link.transfer(at, bytes)
    }

    /// Moves a 1-byte NOP over the wire (IV padding traffic).
    pub fn nop(&mut self, at: SimTime) -> Reservation {
        self.nops += 1;
        self.link.transfer(at, 1)
    }

    /// Attributes `time` of seal/open work to this edge's serialization
    /// account (the per-link crypto cost the cluster report surfaces).
    pub fn record_crypto(&mut self, time: Duration) {
        self.crypto_serialization += time;
    }

    /// Total seal/open time serialized onto this edge so far.
    pub fn crypto_serialization(&self) -> Duration {
        self.crypto_serialization
    }

    /// Payload bytes moved over the edge.
    pub fn bytes_moved(&self) -> u64 {
        self.link.bytes_moved()
    }

    /// Transfers (excluding NOPs) carried so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// NOP (IV-padding) operations carried so far.
    pub fn nops(&self) -> u64 {
        self.nops
    }

    /// When the wire can next accept data.
    pub fn next_free(&self) -> SimTime {
        self.link.next_free()
    }

    /// The underlying link (occupancy math).
    pub fn link(&self) -> &Link {
        &self.link
    }
}

/// One utilization row of a [`TimelineSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineRow {
    /// Resource label (`"gpu0"`, `"edge0-1"`, …).
    pub label: String,
    /// Time the resource spent serving work.
    pub busy: Duration,
    /// Extra serialized time (I/O stall for devices, crypto serialization
    /// for edges).
    pub serialized: Duration,
    /// Operations served.
    pub ops: u64,
}

impl TimelineRow {
    /// Busy fraction of `makespan` (clamped to [0, 1]).
    pub fn utilization(&self, makespan: Duration) -> f64 {
        if makespan.is_zero() {
            0.0
        } else {
            (self.busy.as_secs_f64() / makespan.as_secs_f64()).min(1.0)
        }
    }
}

/// Per-resource utilization of one cluster run.
#[derive(Debug, Clone, Default)]
pub struct TimelineSummary {
    /// Per-device compute rows, in device order.
    pub devices: Vec<TimelineRow>,
    /// Per-edge link rows, in edge order.
    pub edges: Vec<TimelineRow>,
    /// Simulated wall-clock the rows are measured against.
    pub makespan: Duration,
}

impl TimelineSummary {
    /// Sum of the per-edge crypto serialization — the per-link overhead
    /// whose scaling with stage count the pipeline bench tracks.
    pub fn total_edge_serialization(&self) -> Duration {
        self.edges.iter().map(|row| row.serialized).sum()
    }

    /// Sum of the per-device I/O stall time.
    pub fn total_device_stall(&self) -> Duration {
        self.devices.iter().map(|row| row.serialized).sum()
    }
}

impl fmt::Display for TimelineSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:>12} {:>12} {:>8} {:>6}",
            "resource", "busy", "serialized", "ops", "util"
        )?;
        for row in self.devices.iter().chain(self.edges.iter()) {
            writeln!(
                f,
                "{:<10} {:>12.3?} {:>12.3?} {:>8} {:>5.1}%",
                row.label,
                row.busy,
                row.serialized,
                row.ops,
                row.utilization(self.makespan) * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_timeline_accounts_wire_and_crypto() {
        let mut edge = EdgeTimeline::new(1.0, Duration::ZERO); // 1 GiB/s
        let r = edge.transfer(SimTime::ZERO, 1 << 30);
        assert!((r.end.as_secs_f64() - 1.0).abs() < 1e-6);
        edge.record_crypto(Duration::from_millis(3));
        edge.record_crypto(Duration::from_millis(2));
        assert_eq!(edge.crypto_serialization(), Duration::from_millis(5));
        assert_eq!(edge.transfers(), 1);
        assert_eq!(edge.bytes_moved(), 1 << 30);
        edge.nop(SimTime::ZERO);
        assert_eq!(edge.nops(), 1);
        assert_eq!(edge.transfers(), 1, "NOPs are not payload transfers");
    }

    #[test]
    fn summary_totals_and_utilization() {
        let summary = TimelineSummary {
            devices: vec![TimelineRow {
                label: "gpu0".into(),
                busy: Duration::from_millis(50),
                serialized: Duration::from_millis(10),
                ops: 4,
            }],
            edges: vec![
                TimelineRow {
                    label: "edge0-1".into(),
                    busy: Duration::from_millis(20),
                    serialized: Duration::from_millis(7),
                    ops: 4,
                },
                TimelineRow {
                    label: "edge1-2".into(),
                    busy: Duration::from_millis(20),
                    serialized: Duration::from_millis(5),
                    ops: 4,
                },
            ],
            makespan: Duration::from_millis(100),
        };
        assert_eq!(
            summary.total_edge_serialization(),
            Duration::from_millis(12)
        );
        assert_eq!(summary.total_device_stall(), Duration::from_millis(10));
        assert!((summary.devices[0].utilization(summary.makespan) - 0.5).abs() < 1e-9);
        let text = summary.to_string();
        assert!(text.contains("gpu0") && text.contains("edge1-2"));
    }

    #[test]
    fn utilization_handles_zero_makespan() {
        let row = TimelineRow {
            label: "gpu0".into(),
            busy: Duration::from_millis(1),
            serialized: Duration::ZERO,
            ops: 1,
        };
        assert_eq!(row.utilization(Duration::ZERO), 0.0);
    }
}
