//! Metric collectors for the evaluation harness.
//!
//! The paper reports throughput (tokens/s, sequences/s), normalized latency
//! (s/token averaged over requests), and distributional statistics. These
//! collectors are deliberately simple — exact samples, not sketches — since
//! simulated experiments produce modest sample counts.

use crate::time::SimTime;
use std::fmt;
use std::time::Duration;

/// An exact-sample statistics accumulator over `f64` observations.
///
/// # Example
///
/// ```
/// use pipellm_sim::metrics::Samples;
///
/// let mut s = Samples::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.percentile(50.0), 2.0); // nearest-rank
/// ```
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.values.push(value);
        self.sorted = false;
    }

    /// Records a duration in seconds.
    pub fn record_duration(&mut self, value: Duration) {
        self.record(value.as_secs_f64());
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Maximum observation, or 0 if empty.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// The `p`-th percentile (nearest-rank), or 0 if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.values.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
        let rank = ((p / 100.0) * self.values.len() as f64).ceil() as usize;
        self.values[rank.saturating_sub(1).min(self.values.len() - 1)]
    }

    /// Immutable view of the raw samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Throughput meter: completed units over an observation window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Throughput {
    units: f64,
    last_completion: SimTime,
}

impl Throughput {
    /// Creates an idle meter.
    pub fn new() -> Self {
        Throughput::default()
    }

    /// Records `units` of work completing at time `at`.
    pub fn record(&mut self, units: f64, at: SimTime) {
        self.units += units;
        self.last_completion = self.last_completion.max(at);
    }

    /// Total units completed.
    pub fn units(&self) -> f64 {
        self.units
    }

    /// Time of the last completion.
    pub fn last_completion(&self) -> SimTime {
        self.last_completion
    }

    /// Units per second over `[SimTime::ZERO, last_completion]`.
    pub fn per_second(&self) -> f64 {
        let elapsed = self.last_completion.as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            self.units / elapsed
        }
    }
}

/// A labelled monotonically increasing counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.count
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.count)
    }
}

/// One (x, y) series for a figure: e.g. request rate vs normalized latency.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty named series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Series label (legend entry).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The collected points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Renders as aligned `x y` rows, gnuplot-style.
    pub fn to_rows(&self) -> String {
        let mut out = format!("# {}\n", self.name);
        for (x, y) in &self.points {
            out.push_str(&format!("{x:>12.4} {y:>12.4}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_statistics() {
        let mut s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        for x in [4.0, 1.0, 3.0, 2.0, 5.0] {
            s.record(x);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.sum(), 15.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(50.0), 3.0);
        assert_eq!(s.percentile(100.0), 5.0);
    }

    #[test]
    fn samples_record_after_percentile() {
        let mut s = Samples::new();
        s.record(10.0);
        assert_eq!(s.percentile(50.0), 10.0);
        s.record(1.0); // must re-sort lazily
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn samples_from_durations() {
        let mut s = Samples::new();
        s.record_duration(Duration::from_millis(250));
        assert!((s.mean() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn throughput_math() {
        let mut t = Throughput::new();
        assert_eq!(t.per_second(), 0.0);
        t.record(10.0, SimTime::from_secs(2));
        t.record(10.0, SimTime::from_secs(4));
        assert_eq!(t.units(), 20.0);
        assert!((t.per_second() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn series_renders_rows() {
        let mut s = Series::new("w/o CC");
        s.push(1.0, 0.5);
        s.push(2.0, 0.75);
        let rows = s.to_rows();
        assert!(rows.starts_with("# w/o CC\n"));
        assert_eq!(rows.lines().count(), 3);
        assert_eq!(s.points().len(), 2);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn bad_percentile_panics() {
        Samples::new().percentile(101.0);
    }
}
