//! Deterministic timing substrate for the PipeLLM reproduction.
//!
//! The reproduction separates *function* (real AES-GCM bytes, real IV
//! counters — see `pipellm-crypto` and `pipellm-gpu`) from *timing*. This
//! crate is the timing half: a simulated nanosecond clock, reservation-based
//! resource timelines (PCIe link, CPU crypto worker pool, GPU compute
//! engine), an event queue for workload arrival processes, seeded random
//! number generation, and metric collectors for the figures in the paper's
//! evaluation.
//!
//! Everything here is deterministic: the same seed and workload produce the
//! same timeline, which is what lets the test suite assert throughput
//! *orderings* (e.g. `w/o CC ≥ PipeLLM ≥ CC`) rather than fuzzy wall-clock
//! numbers.
//!
//! # Example
//!
//! ```
//! use pipellm_sim::resource::Link;
//! use pipellm_sim::time::SimTime;
//! use std::time::Duration;
//!
//! // A PCIe-like link: 55 GB/s, 1.2 µs per-operation latency.
//! let mut link = Link::new(55.0, Duration::from_nanos(1_200));
//! let xfer = link.transfer(SimTime::ZERO, 1 << 20); // 1 MiB
//! assert!(xfer.end > xfer.start);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod cluster;
pub mod events;
pub mod metrics;
pub mod resource;
pub mod rng;
pub mod time;

pub use cluster::{EdgeTimeline, TimelineRow, TimelineSummary};
pub use events::EventQueue;
pub use resource::{GpuEngine, Link, Reservation, WorkerPool};
pub use rng::SimRng;
pub use time::SimTime;
