//! A deterministic time-ordered event queue.
//!
//! Workload generators schedule request arrivals; serving engines pop them
//! in timestamp order. Ties break by insertion sequence so simulations are
//! fully reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first ordering.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of `(SimTime, payload)` events with FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use pipellm_sim::events::EventQueue;
/// use pipellm_sim::time::SimTime;
///
/// let mut queue = EventQueue::new();
/// queue.push(SimTime::from_micros(5), "late");
/// queue.push(SimTime::from_micros(1), "early");
/// assert_eq!(queue.pop().map(|(_, e)| e), Some("early"));
/// assert_eq!(queue.pop().map(|(_, e)| e), Some("late"));
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at time `at`.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest event only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Extend<(SimTime, T)> for EventQueue<T> {
    fn extend<I: IntoIterator<Item = (SimTime, T)>>(&mut self, iter: I) {
        for (at, payload) in iter {
            self.push(at, payload);
        }
    }
}

impl<T> FromIterator<(SimTime, T)> for EventQueue<T> {
    fn from_iter<I: IntoIterator<Item = (SimTime, T)>>(iter: I) -> Self {
        let mut queue = EventQueue::new();
        queue.extend(iter);
        queue
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(3), 'c');
        q.push(SimTime::from_micros(1), 'a');
        q.push(SimTime::from_micros(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, c)| c)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, i)| i)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), "later");
        assert!(q.pop_due(SimTime::from_micros(9)).is_none());
        assert!(q.pop_due(SimTime::from_micros(10)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn collects_from_iterator() {
        let q: EventQueue<&str> = vec![
            (SimTime::from_micros(2), "b"),
            (SimTime::from_micros(1), "a"),
        ]
        .into_iter()
        .collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(1)));
    }
}
