//! Simulated time: a nanosecond-resolution monotonic clock value.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant on the simulated timeline, in nanoseconds since simulation
/// start.
///
/// `SimTime` is a plain value — there is no global clock object. Engines
/// carry their own notion of "now" and resources remember when they are next
/// free.
///
/// # Example
///
/// ```
/// use pipellm_sim::time::SimTime;
/// use std::time::Duration;
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + Duration::from_micros(5);
/// assert_eq!((t1 - t0).as_nanos(), 5_000);
/// assert!(t1 > t0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Creates a time from fractional seconds, saturating at zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs.max(0.0) * 1e9) as u64)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Elapsed duration since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos() as u64;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;

    /// Saturates at time zero.
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.as_nanos() as u64))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(self >= rhs, "SimTime subtraction went negative");
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nanos = self.0;
        if nanos >= 1_000_000_000 {
            write!(f, "{:.3}s", nanos as f64 / 1e9)
        } else if nanos >= 1_000_000 {
            write!(f, "{:.3}ms", nanos as f64 / 1e6)
        } else if nanos >= 1_000 {
            write!(f, "{:.3}µs", nanos as f64 / 1e3)
        } else {
            write!(f, "{nanos}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_micros(10);
        let later = t + Duration::from_micros(5);
        assert_eq!(later - t, Duration::from_micros(5));
        let mut acc = SimTime::ZERO;
        acc += Duration::from_nanos(7);
        assert_eq!(acc.as_nanos(), 7);
    }

    #[test]
    fn ordering_and_extrema() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(b.saturating_since(a), Duration::from_nanos(4));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    fn negative_secs_clamps_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_nanos(42).to_string(), "42ns");
        assert_eq!(SimTime::from_micros(42).to_string(), "42.000µs");
        assert_eq!(SimTime::from_millis(42).to_string(), "42.000ms");
        assert_eq!(SimTime::from_secs(42).to_string(), "42.000s");
    }
}
