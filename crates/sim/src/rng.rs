//! Seeded, dependency-free random number generation for workloads.
//!
//! Workload generators must be deterministic across platforms and crate
//! versions (the experiment harness re-runs traces and compares systems on
//! identical arrivals), so this module implements its own xoshiro256++
//! generator plus the handful of distributions the evaluation needs:
//! uniform, exponential (Poisson arrivals), log-normal (ShareGPT-like
//! lengths), and categorical sampling.

/// A deterministic xoshiro256++ pseudo-random generator.
///
/// # Example
///
/// ```
/// use pipellm_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // reproducible
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        SimRng { state }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling; bias is negligible for our use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// An exponentially distributed value with the given `rate` (events per
    /// unit): the inter-arrival time of a Poisson process.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn next_exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -u.ln() / rate
    }

    /// A standard normal via Box–Muller.
    pub fn next_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A log-normal sample with the given parameters of the underlying
    /// normal (`mu`, `sigma`).
    pub fn next_lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.next_normal()).exp()
    }

    /// Samples an index according to `weights` (need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn next_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must be non-empty with positive sum");
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_across_instances() {
        let mut a = SimRng::seed_from(99);
        let mut b = SimRng::seed_from(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_unit_interval() {
        let mut rng = SimRng::seed_from(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bounded_sampling_stays_in_bounds() {
        let mut rng = SimRng::seed_from(4);
        for _ in 0..10_000 {
            assert!(rng.next_below(7) < 7);
            let r = rng.next_range(10, 20);
            assert!((10..=20).contains(&r));
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SimRng::seed_from(5);
        let rate = 4.0;
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.next_exponential(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_mean_and_variance() {
        let mut rng = SimRng::seed_from(6);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = SimRng::seed_from(7);
        for _ in 0..1000 {
            assert!(rng.next_lognormal(3.0, 1.2) > 0.0);
        }
    }

    #[test]
    fn weighted_sampling_tracks_weights() {
        let mut rng = SimRng::seed_from(8);
        let weights = [1.0, 3.0];
        let n = 20_000;
        let ones = (0..n).filter(|_| rng.next_weighted(&weights) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SimRng::seed_from(1).next_below(0);
    }
}
