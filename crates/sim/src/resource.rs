//! Reservation-based resource timelines.
//!
//! The timing layer models hardware as queuing resources: a request arrives
//! at time `t`, waits until the resource is free, occupies it for a service
//! duration, and completes. This "timeline reservation" style keeps the
//! simulation deterministic and cheap while capturing the contention and
//! pipelining effects the paper's evaluation depends on:
//!
//! - [`Link`] — the PCIe link (bandwidth + per-operation latency);
//! - [`WorkerPool`] — the pool of CPU crypto threads (k parallel servers);
//! - [`GpuEngine`] — the GPU compute engine (single serial server, since
//!   LLM iterations are serialized on the SMs).

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

/// Bytes per gigabyte (2^30), matching the units the paper quotes.
const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// The outcome of reserving a resource: when service started and ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the resource actually began serving the request (≥ arrival).
    pub start: SimTime,
    /// When the request completed.
    pub end: SimTime,
}

impl Reservation {
    /// Queueing delay: time between arrival and service start.
    pub fn wait(&self, arrival: SimTime) -> Duration {
        self.start.saturating_since(arrival)
    }

    /// Service duration.
    pub fn service(&self) -> Duration {
        self.end.saturating_since(self.start)
    }
}

/// A single-server FIFO resource.
///
/// # Example
///
/// ```
/// use pipellm_sim::resource::Server;
/// use pipellm_sim::time::SimTime;
/// use std::time::Duration;
///
/// let mut gpu = Server::new();
/// let a = gpu.reserve(SimTime::ZERO, Duration::from_micros(10));
/// let b = gpu.reserve(SimTime::ZERO, Duration::from_micros(10));
/// assert_eq!(b.start, a.end); // second request queues behind the first
/// ```
#[derive(Debug, Clone, Default)]
pub struct Server {
    next_free: SimTime,
}

impl Server {
    /// Creates an idle server.
    pub fn new() -> Self {
        Server::default()
    }

    /// When the server will next be idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Reserves the server at `arrival` for `service` time.
    pub fn reserve(&mut self, arrival: SimTime, service: Duration) -> Reservation {
        let start = arrival.max(self.next_free);
        let end = start + service;
        self.next_free = end;
        Reservation { start, end }
    }

    /// Advances the idle horizon without serving work (e.g. a blocked span).
    pub fn block_until(&mut self, until: SimTime) {
        self.next_free = self.next_free.max(until);
    }

    /// Resets the server to idle at time zero.
    pub fn reset(&mut self) {
        self.next_free = SimTime::ZERO;
    }
}

/// A bandwidth-limited link with per-operation latency: the PCIe model.
///
/// Occupancy is `bytes / bandwidth`; each operation additionally experiences
/// a fixed `latency` that delays its completion but does not occupy the link
/// (control-plane work rides alongside the data of other transfers).
#[derive(Debug, Clone)]
pub struct Link {
    server: Server,
    bytes_per_sec: f64,
    latency: Duration,
    bytes_moved: u64,
}

impl Link {
    /// Creates a link with `gbps` GB/s of bandwidth and fixed per-op latency.
    pub fn new(gbps: f64, latency: Duration) -> Self {
        assert!(gbps > 0.0, "link bandwidth must be positive");
        Link {
            server: Server::new(),
            bytes_per_sec: gbps * GIB,
            latency,
            bytes_moved: 0,
        }
    }

    /// Configured bandwidth in bytes/second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Pure service time for `bytes` (no queueing, no latency).
    pub fn occupancy(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Transfers `bytes` starting no earlier than `arrival`.
    ///
    /// The returned reservation's `end` includes the per-op latency; the
    /// link itself is released `latency` earlier so back-to-back transfers
    /// pipeline at full bandwidth.
    pub fn transfer(&mut self, arrival: SimTime, bytes: u64) -> Reservation {
        let occupancy = self.occupancy(bytes);
        let on_wire = self.server.reserve(arrival, occupancy);
        self.bytes_moved += bytes;
        Reservation {
            start: on_wire.start,
            end: on_wire.end + self.latency,
        }
    }

    /// When the link can next accept data.
    pub fn next_free(&self) -> SimTime {
        self.server.next_free()
    }

    /// Total payload bytes moved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Resets occupancy and counters.
    pub fn reset(&mut self) {
        self.server.reset();
        self.bytes_moved = 0;
    }
}

/// A pool of `k` identical parallel servers: the CPU crypto thread pool.
///
/// Work items are dispatched to the earliest-available worker, which is how
/// PipeLLM fans independent chunk encryptions across threads (§7.1: "multiple
/// CPU threads dedicated to encryption").
#[derive(Debug, Clone)]
pub struct WorkerPool {
    free_at: BinaryHeap<Reverse<SimTime>>,
    workers: usize,
    busy: Duration,
}

impl WorkerPool {
    /// Creates a pool of `workers` servers (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let mut free_at = BinaryHeap::with_capacity(workers);
        for _ in 0..workers {
            free_at.push(Reverse(SimTime::ZERO));
        }
        WorkerPool {
            free_at,
            workers,
            busy: Duration::ZERO,
        }
    }

    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Reserves the earliest-available worker at `arrival` for `service`.
    pub fn reserve(&mut self, arrival: SimTime, service: Duration) -> Reservation {
        let Reverse(free) = self.free_at.pop().expect("pool always has ≥1 worker");
        let start = arrival.max(free);
        let end = start + service;
        self.free_at.push(Reverse(end));
        self.busy += service;
        Reservation { start, end }
    }

    /// Reserves **every** worker for `service` wall time: the gang-parallel
    /// chunked operation, where one payload is sharded across the whole
    /// pool (the real engine's chunked AES-GCM). Each worker picks up its
    /// segment as soon as it is individually free (segments queue greedily;
    /// there is no all-workers barrier), so on an idle pool this is
    /// `service` wall time on all `k` workers, and a straggler worker only
    /// delays the segments it actually serves. The reservation spans from
    /// the first segment's start to the last segment's completion.
    pub fn reserve_gang(&mut self, arrival: SimTime, service: Duration) -> Reservation {
        let mut starts = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let Reverse(free) = self.free_at.pop().expect("pool always has ≥1 worker");
            starts.push(arrival.max(free));
        }
        let first = starts.iter().copied().min().expect("pool has ≥1 worker");
        let mut last = first;
        for start in starts {
            let end = start + service;
            last = last.max(end);
            self.free_at.push(Reverse(end));
        }
        self.busy += service * self.workers as u32;
        Reservation {
            start: first,
            end: last,
        }
    }

    /// The earliest time any worker is free.
    pub fn earliest_free(&self) -> SimTime {
        self.free_at
            .peek()
            .map(|Reverse(t)| *t)
            .unwrap_or(SimTime::ZERO)
    }

    /// Total busy time accumulated across all workers.
    pub fn busy_time(&self) -> Duration {
        self.busy
    }

    /// Resets all workers to idle at time zero.
    pub fn reset(&mut self) {
        let workers = self.workers;
        self.free_at.clear();
        for _ in 0..workers {
            self.free_at.push(Reverse(SimTime::ZERO));
        }
        self.busy = Duration::ZERO;
    }
}

/// The GPU compute engine: a serial server with utilization accounting.
///
/// LLM layers/iterations execute serially on the device in all three systems
/// the paper evaluates, so a single-server model captures GPU idle time —
/// the quantity PipeLLM exists to eliminate.
#[derive(Debug, Clone, Default)]
pub struct GpuEngine {
    server: Server,
    busy: Duration,
    idle_waiting_io: Duration,
}

impl GpuEngine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        GpuEngine::default()
    }

    /// Runs a kernel that becomes *ready* (all inputs transferred) at
    /// `inputs_ready` and takes `compute` time.
    ///
    /// Idle time between the engine becoming free and inputs arriving is
    /// accounted as I/O stall — the paper's "GPU is idle due to the
    /// unavailability of the input" (§3, case study 2).
    pub fn run(&mut self, inputs_ready: SimTime, compute: Duration) -> Reservation {
        let free = self.server.next_free();
        if inputs_ready > free {
            self.idle_waiting_io += inputs_ready - free;
        }
        let reservation = self.server.reserve(inputs_ready, compute);
        self.busy += compute;
        reservation
    }

    /// When the engine will next be idle.
    pub fn next_free(&self) -> SimTime {
        self.server.next_free()
    }

    /// Total compute time executed.
    pub fn busy_time(&self) -> Duration {
        self.busy
    }

    /// Total time the engine sat idle waiting for transfers.
    pub fn io_stall_time(&self) -> Duration {
        self.idle_waiting_io
    }

    /// Resets the engine and its accounting.
    pub fn reset(&mut self) {
        self.server.reset();
        self.busy = Duration::ZERO;
        self.idle_waiting_io = Duration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_serializes_requests() {
        let mut s = Server::new();
        let a = s.reserve(SimTime::ZERO, Duration::from_micros(3));
        let b = s.reserve(SimTime::from_micros(1), Duration::from_micros(3));
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(a.end, SimTime::from_micros(3));
        assert_eq!(b.start, a.end, "second request queues");
        assert_eq!(b.wait(SimTime::from_micros(1)), Duration::from_micros(2));
    }

    #[test]
    fn server_idles_until_next_arrival() {
        let mut s = Server::new();
        s.reserve(SimTime::ZERO, Duration::from_micros(1));
        let late = s.reserve(SimTime::from_micros(10), Duration::from_micros(1));
        assert_eq!(late.start, SimTime::from_micros(10), "no work is invented");
    }

    #[test]
    fn link_bandwidth_math() {
        let mut link = Link::new(1.0, Duration::ZERO); // 1 GiB/s
        let r = link.transfer(SimTime::ZERO, GIB as u64);
        assert!((r.end.as_secs_f64() - 1.0).abs() < 1e-6);
        assert_eq!(link.bytes_moved(), GIB as u64);
    }

    #[test]
    fn link_latency_does_not_hold_the_wire() {
        let mut link = Link::new(1.0, Duration::from_millis(5));
        let a = link.transfer(SimTime::ZERO, (GIB / 1000.0) as u64);
        let b = link.transfer(SimTime::ZERO, (GIB / 1000.0) as u64);
        // b starts when a's payload leaves the wire, not after a's latency.
        assert_eq!(b.start, a.end - Duration::from_millis(5));
        assert!(a.end.saturating_since(a.start) >= Duration::from_millis(5));
    }

    #[test]
    fn pool_runs_k_jobs_in_parallel() {
        let mut pool = WorkerPool::new(4);
        let service = Duration::from_micros(10);
        let ends: Vec<SimTime> = (0..4)
            .map(|_| pool.reserve(SimTime::ZERO, service).end)
            .collect();
        assert!(ends.iter().all(|&e| e == SimTime::from_micros(10)));
        // A fifth job waits for the first free worker.
        let fifth = pool.reserve(SimTime::ZERO, service);
        assert_eq!(fifth.start, SimTime::from_micros(10));
        assert_eq!(pool.busy_time(), service * 5);
    }

    #[test]
    fn pool_of_zero_degrades_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn gang_reservation_occupies_the_whole_pool() {
        let mut pool = WorkerPool::new(4);
        let gang = pool.reserve_gang(SimTime::from_micros(2), Duration::from_micros(10));
        assert_eq!(gang.start, SimTime::from_micros(2));
        assert_eq!(gang.end, SimTime::from_micros(12));
        // Every worker is held until the gang completes.
        assert_eq!(pool.earliest_free(), SimTime::from_micros(12));
        assert_eq!(pool.busy_time(), Duration::from_micros(10) * 4);
        // A follow-up single job queues behind the gang.
        let next = pool.reserve(SimTime::ZERO, Duration::from_micros(1));
        assert_eq!(next.start, SimTime::from_micros(12));
    }

    #[test]
    fn gang_segments_start_greedily_without_a_barrier() {
        let mut pool = WorkerPool::new(2);
        // One worker is busy until t=8; the other starts its segment at
        // arrival, and the gang completes when the straggler's does.
        pool.reserve(SimTime::ZERO, Duration::from_micros(8));
        let gang = pool.reserve_gang(SimTime::from_micros(2), Duration::from_micros(5));
        assert_eq!(gang.start, SimTime::from_micros(2), "no all-free barrier");
        assert_eq!(gang.end, SimTime::from_micros(13), "8 + 5 on the straggler");
    }

    #[test]
    fn gpu_accounts_io_stalls() {
        let mut gpu = GpuEngine::new();
        gpu.run(SimTime::ZERO, Duration::from_micros(10));
        // Inputs for the next kernel arrive 5 µs after the engine went idle.
        gpu.run(SimTime::from_micros(15), Duration::from_micros(10));
        assert_eq!(gpu.io_stall_time(), Duration::from_micros(5));
        assert_eq!(gpu.busy_time(), Duration::from_micros(20));
        assert_eq!(gpu.next_free(), SimTime::from_micros(25));
    }

    #[test]
    fn gpu_no_stall_when_inputs_ready_early() {
        let mut gpu = GpuEngine::new();
        gpu.run(SimTime::ZERO, Duration::from_micros(10));
        gpu.run(SimTime::from_micros(2), Duration::from_micros(10));
        assert_eq!(gpu.io_stall_time(), Duration::ZERO);
    }

    #[test]
    fn resets_restore_time_zero() {
        let mut link = Link::new(2.0, Duration::ZERO);
        link.transfer(SimTime::ZERO, 1024);
        link.reset();
        assert_eq!(link.next_free(), SimTime::ZERO);
        assert_eq!(link.bytes_moved(), 0);

        let mut pool = WorkerPool::new(2);
        pool.reserve(SimTime::ZERO, Duration::from_micros(1));
        pool.reset();
        assert_eq!(pool.earliest_free(), SimTime::ZERO);
        assert_eq!(pool.busy_time(), Duration::ZERO);

        let mut gpu = GpuEngine::new();
        gpu.run(SimTime::from_micros(9), Duration::from_micros(1));
        gpu.reset();
        assert_eq!(gpu.next_free(), SimTime::ZERO);
        assert_eq!(gpu.io_stall_time(), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_link_is_rejected() {
        let _ = Link::new(0.0, Duration::ZERO);
    }
}
