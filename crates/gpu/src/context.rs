//! The simulated CUDA context: device memory + secure channel + timing
//! resources behind an asynchronous memcpy API.
//!
//! In CC mode this context behaves like the H100 + CUDA stack the paper
//! describes (§2.2): `memcpy_htod_async` seals the payload with AES-GCM at
//! the host counter IV, the simulated copy engine opens it at the device
//! counter IV, and the IVs advance in lockstep without ever being
//! transmitted. Delivering ciphertext out of order genuinely fails
//! authentication.
//!
//! Two API surfaces coexist:
//!
//! - the **application surface** (`memcpy_*`, `synchronize`,
//!   `launch_compute`) used by serving engines — equivalent to stock CUDA;
//! - the **interposition surface** (`seal_region`, `submit_htod_sealed`,
//!   `send_nop`, `memcpy_dtoh_raw`, `crypto_pool_mut`, `drain_faults`)
//!   equivalent to the CUDA/OpenSSL hooks the PipeLLM prototype installs
//!   (§6: "PipeLLM also hacks those OpenSSL APIs to decouple encryption or
//!   decryption from the memory copy API").

use crate::memory::{DeviceMemory, DevicePtr, HostMemory, HostRegion, MemoryError, Payload};
use crate::pages::{Access, PageRegistry, Protection};
use crate::timing::IoTimingModel;
use pipellm_chaos::{ChaosInjector, Fault, FaultKind, FaultSite};
use pipellm_crypto::channel::{DeferredOpen, Direction, RxContext, SealedMessage, SecureChannel};
use pipellm_crypto::engine::CryptoEngine;
use pipellm_crypto::gcm::TAG_LEN;
use pipellm_crypto::kv;
use pipellm_crypto::session::{SessionId, SessionManager};
use pipellm_crypto::CryptoError;
use pipellm_sim::resource::{GpuEngine, Link, Reservation, WorkerPool};
use pipellm_sim::time::SimTime;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Whether confidential computing is enabled on the context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcMode {
    /// No encryption: transfers move plaintext at full PCIe bandwidth.
    Off,
    /// NVIDIA CC: every transfer is sealed/opened under the IV discipline.
    On,
}

/// Errors surfaced by the GPU context.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GpuError {
    /// A memory management error.
    Memory(MemoryError),
    /// A cryptographic error (IV mismatch, authentication failure, …).
    Crypto(CryptoError),
    /// An operation that requires CC mode was invoked with CC off.
    CcDisabled,
    /// A session id that names no live session.
    UnknownSession {
        /// The unknown id.
        session: SessionId,
    },
    /// A frame was lost or mangled in flight (injected chaos or a real
    /// link fault). Under the sentinel discipline both endpoints consumed
    /// the frame's IV — the channel is still in lockstep and the burned IV
    /// is never reused — but the payload was **not** delivered. The
    /// operation is retryable: a retry re-seals at a fresh IV.
    TransferFaulted {
        /// What happened to the frame ([`FaultKind::label`]).
        fault: &'static str,
        /// The sender-side IV the frame burned.
        iv: u64,
    },
    /// An open failed *outside* any injected-fault window: the two
    /// endpoints fell out of IV lockstep, which no retry can repair. The
    /// stage label pinpoints which hop broke.
    ChannelDesync {
        /// Which transfer path observed the desync.
        stage: &'static str,
        /// The receiver-side IV the failing frame carried.
        iv: u64,
        /// The underlying cryptographic failure.
        source: CryptoError,
    },
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::Memory(e) => write!(f, "memory error: {e}"),
            GpuError::Crypto(e) => write!(f, "crypto error: {e}"),
            GpuError::CcDisabled => f.write_str("operation requires confidential computing mode"),
            GpuError::UnknownSession { session } => write!(f, "unknown {session}"),
            GpuError::TransferFaulted { fault, iv } => {
                write!(f, "transfer faulted ({fault}) at IV {iv}; channel resynced")
            }
            GpuError::ChannelDesync { stage, iv, source } => {
                write!(f, "channel desync on {stage} at IV {iv}: {source}")
            }
        }
    }
}

impl std::error::Error for GpuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GpuError::Memory(e) => Some(e),
            GpuError::Crypto(e) => Some(e),
            GpuError::ChannelDesync { source, .. } => Some(source),
            GpuError::CcDisabled
            | GpuError::UnknownSession { .. }
            | GpuError::TransferFaulted { .. } => None,
        }
    }
}

impl From<MemoryError> for GpuError {
    fn from(e: MemoryError) -> Self {
        GpuError::Memory(e)
    }
}

impl From<CryptoError> for GpuError {
    fn from(e: CryptoError) -> Self {
        GpuError::Crypto(e)
    }
}

/// Opens a frame that already cleared its fault-injection window, so a
/// failure here is a genuine loss of IV lockstep rather than injected
/// chaos. The [`CryptoError`] is handled at this choke point — classified
/// as a [`GpuError::ChannelDesync`] with the stage and IV that broke —
/// rather than blindly propagated from each call site.
pub(crate) fn open_delivered(
    rx: &mut RxContext,
    sealed: SealedMessage,
    stage: &'static str,
) -> Result<Vec<u8>, GpuError> {
    let iv = sealed.iv;
    match rx.open_owned(sealed) {
        Ok(plaintext) => Ok(plaintext),
        Err(source) => Err(GpuError::ChannelDesync { stage, iv, source }),
    }
}

/// One entry in the low-level transfer trace — the only information PipeLLM
/// is allowed to observe (paper §4.2: "only low-level memory-copy
/// information is available").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferRecord {
    /// Session whose channel carried the transfer.
    pub session: SessionId,
    /// Transfer direction.
    pub direction: Direction,
    /// Host-side region.
    pub region: HostRegion,
    /// Device-side buffer.
    pub device: DevicePtr,
    /// Payload length in bytes.
    pub len: u64,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time (data usable at destination).
    pub completed: SimTime,
    /// IV consumed on the wire, when CC is enabled.
    pub iv: Option<u64>,
}

/// One block of a swapped-out KV group whose device→host transfer has
/// completed but whose host-side decryption is deferred (paper §5.4): the
/// destination region is access-revoked under `cookie`, and `ciphertext`
/// is the authoritative at-rest copy of the block until the owner opens it
/// and stores the plaintext.
#[derive(Debug)]
pub struct DeferredKvOpen {
    /// Destination (access-revoked) host region.
    pub region: HostRegion,
    /// Payload kind byte from the transfer descriptor.
    pub kind: u8,
    /// `ciphertext || tag` — genuine AES-GCM bytes sealed by the device.
    pub ciphertext: Vec<u8>,
    /// Associated data the ciphertext authenticates under.
    pub aad: Arc<[u8]>,
    /// Decryption handle at the IV reserved in wire order.
    pub open: DeferredOpen,
    /// When the scheduled background open completes on the crypto pool.
    pub ready_at: SimTime,
    /// Page-fault cookie guarding the revoked destination pages.
    pub cookie: u64,
}

/// Timing of one asynchronous memcpy.
///
/// `api_return` is when control returns to the calling CPU thread. Figure 2
/// of the paper shows that with CC enabled the "asynchronous" API blocks for
/// the encryption ("encryption and decryption processes are coupled with the
/// API call"), so under native CC `api_return` includes the seal time.
/// `complete` is when the data is usable at the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemcpyTiming {
    /// When the API call returns to the caller.
    pub api_return: SimTime,
    /// When the transferred data is usable.
    pub complete: SimTime,
}

/// Aggregate I/O statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Host→device operations.
    pub h2d_ops: u64,
    /// Host→device payload bytes.
    pub h2d_bytes: u64,
    /// Device→host operations.
    pub d2h_ops: u64,
    /// Device→host payload bytes.
    pub d2h_bytes: u64,
    /// NOP (1-byte IV-advance) transfers.
    pub nops: u64,
    /// Transfers lost to injected (or real) link faults. Each one burned
    /// an IV on both endpoints and delivered nothing.
    pub faulted_ops: u64,
}

/// Snapshot of one session's four IV counters (both directions, both
/// endpoints). In a healthy session the endpoints advance in lockstep:
/// every committed H2D seal was opened by the device and vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionCounters {
    /// Host-side H2D sender counter (next IV a swap-in consumes).
    pub h2d_tx: u64,
    /// Device-side H2D receiver counter.
    pub h2d_rx: u64,
    /// Device-side D2H sender counter.
    pub d2h_tx: u64,
    /// Host-side D2H receiver counter.
    pub d2h_rx: u64,
}

impl SessionCounters {
    /// Whether both directions' endpoints agree — no message was sealed
    /// and then lost, and none was opened twice.
    pub fn in_lockstep(&self) -> bool {
        self.h2d_tx == self.h2d_rx && self.d2h_tx == self.d2h_rx
    }
}

/// Configuration for constructing a [`CudaContext`].
#[derive(Debug, Clone)]
pub struct ContextConfig {
    /// CC mode.
    pub cc: CcMode,
    /// Timing calibration.
    pub timing: IoTimingModel,
    /// Device memory capacity in bytes (H100-SXM: 80 GB).
    pub device_capacity: u64,
    /// CPU crypto worker threads available to this context. This one knob
    /// sizes both crypto timelines: the *real* [`CryptoEngine`] pool that
    /// chunk-seals the actual bytes and the simulated [`WorkerPool`] the
    /// timing layer reserves — the same `k` on both. Blocking paths are
    /// priced as `k`-wide gangs ([`CpuCryptoModel::pool_seal_time`]);
    /// speculative seals are priced as whole chunks pipelined one per
    /// worker (§7.1), the queue depth keeping the pool busy.
    ///
    /// [`CpuCryptoModel::pool_seal_time`]: pipellm_crypto::cost::CpuCryptoModel::pool_seal_time
    pub crypto_threads: usize,
    /// Key-derivation seed for the secure channel.
    pub seed: u64,
    /// An existing engine to share (a [`ClusterContext`] hands one pool to
    /// all of its devices); `None` spawns a fresh `crypto_threads`-wide
    /// pool for this context.
    ///
    /// [`ClusterContext`]: crate::cluster::ClusterContext
    pub engine: Option<Arc<CryptoEngine>>,
    /// Fault injector for chaos testing; `None` (the default) injects
    /// nothing and costs one branch per transfer.
    pub chaos: Option<Arc<ChaosInjector>>,
}

impl Default for ContextConfig {
    fn default() -> Self {
        ContextConfig {
            cc: CcMode::On,
            timing: IoTimingModel::default(),
            device_capacity: 80 * 1_000_000_000,
            crypto_threads: 1,
            seed: 0x9e37,
            engine: None,
            chaos: None,
        }
    }
}

/// The simulated device + driver context.
pub struct CudaContext {
    cc: CcMode,
    timing: IoTimingModel,
    crypto_threads: usize,
    host: HostMemory,
    device_mem: DeviceMemory,
    /// Per-session secure channels, keyed from one root secret. All
    /// sessions share every other resource in this struct: the link, the
    /// crypto pool, the GPU engine, and both memories.
    sessions: SessionManager,
    /// Session the session-unaware API surface currently operates on.
    active: SessionId,
    link: Link,
    crypto_pool: WorkerPool,
    /// The real worker pool chunk-sealing the actual bytes; installed on
    /// every session channel, same width as `crypto_pool` models.
    engine: Arc<CryptoEngine>,
    gpu: GpuEngine,
    pages: PageRegistry,
    pending: Vec<SimTime>,
    trace: Vec<TransferRecord>,
    nop_log: Vec<SimTime>,
    faults: Vec<u64>,
    stats: IoStats,
    /// Recycled NOP ciphertext buffer: IV-padding bursts allocate nothing.
    nop_staging: Vec<u8>,
    /// Fault injector; frames it fires on are absorbed under the sentinel
    /// discipline (IV burned on both endpoints, nothing delivered).
    chaos: Option<Arc<ChaosInjector>>,
}

impl fmt::Debug for CudaContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CudaContext")
            .field("cc", &self.cc)
            .field("device_used", &self.device_mem.used())
            .field("pending_ops", &self.pending.len())
            .field("stats", &self.stats)
            .finish()
    }
}

/// Builds the AAD descriptor authenticated with every sealed transfer.
fn descriptor(kind: u8, len: u64, addr: u64) -> Vec<u8> {
    let mut aad = Vec::with_capacity(17);
    aad.push(kind);
    aad.extend_from_slice(&len.to_be_bytes());
    aad.extend_from_slice(&addr.to_be_bytes());
    aad
}

/// Stages a payload's plaintext into `buf` (serialized via
/// [`Payload::write_plaintext`], with tag headroom reserved) and returns
/// the AAD descriptor. The buffer then flows through the channel's
/// prepared-seal API without further copies.
pub(crate) fn stage_plaintext(payload: &Payload, addr: u64, buf: &mut Vec<u8>) -> Vec<u8> {
    // Clear before reserving: recycled pool buffers arrive with their old
    // contents, and reserving against the stale length would double the
    // allocation instead of reusing it.
    buf.clear();
    buf.reserve(payload.plaintext_len() + TAG_LEN);
    let kind = payload.write_plaintext(buf);
    descriptor(kind, payload.len(), addr)
}

/// Reads the payload kind back out of a sealed transfer's descriptor.
pub(crate) fn sealed_kind(sealed: &SealedMessage) -> u8 {
    sealed.aad.first().copied().unwrap_or(Payload::KIND_REAL)
}

/// Absorbs an in-flight frame fault at the receiving endpoint under the
/// sentinel discipline: a dropped frame burns its IV via [`RxContext::skip`];
/// a corrupted or truncated frame fails authentication and its buffer is
/// scrubbed to sentinel bytes. Either way the receiver's counter advances
/// exactly once — matching the sender's consumed IV — so the channel stays
/// in lockstep and the burned IV is never reused. Returns that IV.
pub(crate) fn absorb_frame_fault(rx: &mut RxContext, fault: Fault, sealed: SealedMessage) -> u64 {
    match fault.kind {
        FaultKind::DropFrame => rx.skip(),
        _ => {
            let iv = sealed.iv;
            let mut bytes = sealed.bytes;
            fault.apply_to_frame(&mut bytes);
            // A mangled frame cannot authenticate; if the fault somehow
            // left it intact the open still consumes the same IV and the
            // plaintext is discarded here — lockstep holds either way.
            let _ = rx.open_in_place_or_sentinel(&sealed.aad, &mut bytes);
            iv
        }
    }
}

impl CudaContext {
    /// Creates a context from a configuration.
    pub fn new(config: ContextConfig) -> Self {
        let cc_enabled = config.cc == CcMode::On;
        let link = Link::new(
            config.timing.link_gbps(cc_enabled),
            config.timing.pcie_latency,
        );
        let engine = config
            .engine
            .unwrap_or_else(|| Arc::new(CryptoEngine::new(config.crypto_threads.max(1))));
        let mut sessions = SessionManager::from_seed(config.seed);
        sessions.set_engine(Arc::clone(&engine));
        let active = sessions.open();
        debug_assert_eq!(active, SessionId::DEFAULT);
        CudaContext {
            cc: config.cc,
            timing: config.timing,
            crypto_threads: config.crypto_threads.max(1),
            host: HostMemory::new(),
            device_mem: DeviceMemory::new(config.device_capacity),
            sessions,
            active,
            link,
            crypto_pool: WorkerPool::new(config.crypto_threads),
            engine,
            gpu: GpuEngine::new(),
            pages: PageRegistry::new(),
            pending: Vec::new(),
            trace: Vec::new(),
            nop_log: Vec::new(),
            faults: Vec::new(),
            stats: IoStats::default(),
            nop_staging: Vec::new(),
            chaos: config.chaos,
        }
    }

    /// CC mode of this context.
    pub fn cc_mode(&self) -> CcMode {
        self.cc
    }

    /// The active session's channel pair.
    fn channel(&self) -> &SecureChannel {
        self.sessions
            .channel(self.active)
            .expect("active session is always live")
    }

    /// Mutable access to the active session's channel pair.
    fn channel_mut(&mut self) -> &mut SecureChannel {
        self.sessions
            .channel_mut(self.active)
            .expect("active session is always live")
    }

    // ---------------------------------------------------------------
    // Session surface
    // ---------------------------------------------------------------

    /// Opens a new tenant session with freshly derived channel keys; the
    /// active session is unchanged.
    pub fn open_session(&mut self) -> SessionId {
        self.sessions.open()
    }

    /// Makes `session` the target of the session-unaware API surface
    /// (every `memcpy_*`, seal, NOP, and IV accessor).
    ///
    /// # Errors
    ///
    /// [`GpuError::UnknownSession`] if no such session is live.
    pub fn set_session(&mut self, session: SessionId) -> Result<(), GpuError> {
        if !self.sessions.contains(session) {
            return Err(GpuError::UnknownSession { session });
        }
        self.active = session;
        Ok(())
    }

    /// The session the context currently operates on.
    pub fn active_session(&self) -> SessionId {
        self.active
    }

    /// Live session ids in creation order.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.sessions.ids()
    }

    /// Closes a session (the active session cannot be closed).
    ///
    /// # Errors
    ///
    /// [`GpuError::UnknownSession`] if no such session is live or it is
    /// the active one.
    pub fn close_session(&mut self, session: SessionId) -> Result<(), GpuError> {
        if session == self.active || !self.sessions.close(session) {
            return Err(GpuError::UnknownSession { session });
        }
        Ok(())
    }

    /// Snapshot of all four IV counters of `session`'s channel.
    pub fn session_counters(&self, session: SessionId) -> Option<SessionCounters> {
        let ch = self.sessions.channel(session)?;
        Some(SessionCounters {
            h2d_tx: ch.host().tx().next_iv(),
            h2d_rx: ch.device().rx().next_iv(),
            d2h_tx: ch.device().tx().next_iv(),
            d2h_rx: ch.host().rx().next_iv(),
        })
    }

    /// The session manager (rekey hooks, epochs, derivation).
    pub fn session_manager(&self) -> &SessionManager {
        &self.sessions
    }

    /// Mutable session manager — e.g. to drive an IV-exhaustion rekey.
    pub fn session_manager_mut(&mut self) -> &mut SessionManager {
        &mut self.sessions
    }

    /// The timing calibration in use.
    pub fn timing(&self) -> &IoTimingModel {
        &self.timing
    }

    /// Host memory (CVM private memory).
    pub fn host(&self) -> &HostMemory {
        &self.host
    }

    /// Mutable host memory. Prefer [`CudaContext::host_write`] /
    /// [`CudaContext::host_touch`] for content mutation so page protection
    /// fires; direct access is for allocation.
    pub fn host_mut(&mut self) -> &mut HostMemory {
        &mut self.host
    }

    /// Device memory statistics.
    pub fn device_memory(&self) -> &DeviceMemory {
        &self.device_mem
    }

    /// Mutable device memory — test and benchmark support for seeding
    /// device buffers without a transfer.
    pub fn device_memory_mut(&mut self) -> &mut DeviceMemory {
        &mut self.device_mem
    }

    /// The page-protection registry (the MPK/PKU stand-in).
    pub fn pages_mut(&mut self) -> &mut PageRegistry {
        &mut self.pages
    }

    /// The CPU crypto worker pool timeline.
    pub fn crypto_pool_mut(&mut self) -> &mut WorkerPool {
        &mut self.crypto_pool
    }

    /// The real multi-threaded crypto engine behind this context's
    /// channels (the `crypto_threads`-wide twin of the simulated pool).
    pub fn crypto_engine(&self) -> &Arc<CryptoEngine> {
        &self.engine
    }

    /// Configured crypto worker threads (the gang width of blocking
    /// seals/opens on both the real and the simulated timeline).
    pub fn crypto_threads(&self) -> usize {
        self.crypto_threads
    }

    /// The PCIe link timeline.
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// The GPU compute engine timeline.
    pub fn gpu_engine(&self) -> &GpuEngine {
        &self.gpu
    }

    /// Aggregate I/O statistics.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// The observed transfer trace (PipeLLM's predictor input).
    pub fn trace(&self) -> &[TransferRecord] {
        &self.trace
    }

    /// Completion times of NOP transfers. Together with [`CudaContext::trace`]
    /// this is the *attacker-visible* wire metadata (ciphertext lengths and
    /// timings) used by the §8.1 side-channel analysis.
    pub fn nop_log(&self) -> &[SimTime] {
        &self.nop_log
    }

    /// Drains and returns page-fault cookies raised since the last call.
    pub fn drain_faults(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.faults)
    }

    /// Installs a chaos injector; subsequent CC transfers roll for frame
    /// faults at their site before delivery.
    pub fn set_chaos(&mut self, chaos: Arc<ChaosInjector>) {
        self.chaos = Some(chaos);
    }

    /// The installed chaos injector, if any.
    pub fn chaos(&self) -> Option<&Arc<ChaosInjector>> {
        self.chaos.as_ref()
    }

    /// Rolls the injector (if any) for one in-flight frame at `site`.
    fn roll_frame(&self, site: FaultSite) -> Option<Fault> {
        self.chaos.as_ref().and_then(|c| c.roll_frame(site))
    }

    // ---------------------------------------------------------------
    // Application surface
    // ---------------------------------------------------------------

    /// Allocates device memory.
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] when the device is out of memory.
    pub fn alloc_device(&mut self, len: u64) -> Result<DevicePtr, GpuError> {
        Ok(self.device_mem.alloc(len)?)
    }

    /// Frees device memory.
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] when `ptr` is not a live allocation.
    pub fn free_device(&mut self, ptr: DevicePtr) -> Result<(), GpuError> {
        Ok(self.device_mem.dealloc(ptr)?)
    }

    /// Asynchronous host→device copy (`cudaMemcpyAsync` analogue).
    ///
    /// With CC off the payload moves in plaintext at full link bandwidth
    /// and the API returns immediately. With CC on this is the *native
    /// NVIDIA CC* path: the calling thread seals the payload (gang-parallel
    /// across the context's crypto threads), then the transfer proceeds —
    /// encryption on the critical path, and the "asynchronous" API blocks
    /// until the ciphertext is produced, as the paper's Figure 2 measures.
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] for unknown addresses or length mismatches.
    pub fn memcpy_htod_async(
        &mut self,
        now: SimTime,
        dst: DevicePtr,
        src: HostRegion,
    ) -> Result<MemcpyTiming, GpuError> {
        let len = self.host.get(src.addr)?.payload().len();
        let timing = match self.cc {
            CcMode::Off => {
                let payload = self.host.get(src.addr)?.payload().clone();
                self.device_mem.store(dst, payload)?;
                let wire = self.link.transfer(now, len);
                self.record(Direction::HostToDevice, src, dst, len, now, wire.end, None);
                MemcpyTiming {
                    api_return: now,
                    complete: wire.end,
                }
            }
            CcMode::On => {
                // Zero-copy seal: the payload's plaintext is staged once
                // into the buffer that becomes the sealed message (and,
                // after the in-place open below, the device payload).
                let mut buf = Vec::new();
                let aad = stage_plaintext(self.host.get(src.addr)?.payload(), src.addr.0, &mut buf);
                let sealed = self
                    .channel_mut()
                    .host_mut()
                    .tx_mut()
                    .seal_prepared(aad.into(), buf)?;
                let iv = sealed.iv;
                // Intra-op gang parallelism: the chunked engine shards one
                // buffer across all crypto threads (the Figure 9 "CC-4t"
                // baseline), near-linear until it saturates PCIe.
                let seal_time = self.timing.crypto.pool_seal_time(len, self.crypto_threads);
                let enc = self.crypto_pool.reserve_gang(now, seal_time);
                let wire = self.link.transfer(enc.end, len);
                if let Some(fault) = self.roll_frame(FaultSite::HostToDevice) {
                    self.stats.faulted_ops += 1;
                    self.pending.push(wire.end + self.timing.cc_control);
                    absorb_frame_fault(self.channel_mut().device_mut().rx_mut(), fault, sealed);
                    return Err(GpuError::TransferFaulted {
                        fault: fault.kind.label(),
                        iv,
                    });
                }
                self.deliver_to_device_owned(dst, sealed)?;
                let done = wire.end + self.timing.cc_control;
                self.record(Direction::HostToDevice, src, dst, len, now, done, Some(iv));
                MemcpyTiming {
                    api_return: enc.end,
                    complete: done,
                }
            }
        };
        self.stats.h2d_ops += 1;
        self.stats.h2d_bytes += len;
        self.pending.push(timing.complete);
        Ok(timing)
    }

    /// Asynchronous device→host copy (`cudaMemcpyAsync` analogue).
    ///
    /// With CC on this is the native path: transfer, then decrypt on a
    /// crypto worker before the data is usable — decryption on the critical
    /// path.
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] for unknown pointers/addresses or length
    /// mismatches.
    pub fn memcpy_dtoh_async(
        &mut self,
        now: SimTime,
        dst: HostRegion,
        src: DevicePtr,
    ) -> Result<MemcpyTiming, GpuError> {
        let len = self.device_mem.get(src)?.len();
        let timing = match self.cc {
            CcMode::Off => {
                let payload = self.device_mem.get(src)?.clone();
                self.host_store(dst, payload)?;
                let wire = self.link.transfer(now, len);
                MemcpyTiming {
                    api_return: now,
                    complete: wire.end,
                }
            }
            CcMode::On => {
                // Zero-copy: the device payload is staged once; the same
                // buffer carries ciphertext over the wire and, after the
                // in-place open, becomes the host-side payload.
                let mut buf = Vec::new();
                let aad = stage_plaintext(self.device_mem.get(src)?, dst.addr.0, &mut buf);
                let sealed = self
                    .channel_mut()
                    .device_mut()
                    .tx_mut()
                    .seal_prepared(aad.into(), buf)?;
                let wire = self.link.transfer(now, len);
                let open_time = self.timing.crypto.pool_open_time(len, self.crypto_threads);
                let dec = self.crypto_pool.reserve_gang(wire.end, open_time);
                let kind = sealed_kind(&sealed);
                if let Some(fault) = self.roll_frame(FaultSite::DeviceToHost) {
                    let iv = sealed.iv;
                    self.stats.faulted_ops += 1;
                    self.pending.push(dec.end + self.timing.cc_control);
                    absorb_frame_fault(self.channel_mut().host_mut().rx_mut(), fault, sealed);
                    return Err(GpuError::TransferFaulted {
                        fault: fault.kind.label(),
                        iv,
                    });
                }
                let opened = open_delivered(
                    self.channel_mut().host_mut().rx_mut(),
                    sealed,
                    "memcpy_dtoh",
                )?;
                self.host_store(dst, Payload::from_plaintext(kind, opened))?;
                let done = dec.end + self.timing.cc_control;
                // The call blocks until the plaintext is in place.
                MemcpyTiming {
                    api_return: done,
                    complete: done,
                }
            }
        };
        self.record(
            Direction::DeviceToHost,
            dst,
            src,
            len,
            now,
            timing.complete,
            None,
        );
        self.stats.d2h_ops += 1;
        self.stats.d2h_bytes += len;
        self.pending.push(timing.complete);
        Ok(timing)
    }

    /// Waits for all asynchronous operations submitted so far
    /// (`cudaDeviceSynchronize` analogue). Returns the time at which
    /// everything pending has completed (at least `now`).
    pub fn synchronize(&mut self, now: SimTime) -> SimTime {
        let latest = self.pending.drain(..).max().unwrap_or(SimTime::ZERO);
        latest.max(now)
    }

    /// Runs a GPU kernel whose inputs are ready at `ready` for `duration`.
    pub fn launch_compute(&mut self, ready: SimTime, duration: Duration) -> Reservation {
        self.gpu.run(ready, duration)
    }

    /// Writes host memory through the page-protection check.
    ///
    /// Any write-protected or access-revoked range overlapping the target
    /// faults; cookies are queued for [`CudaContext::drain_faults`].
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] for unknown addresses or length mismatches.
    pub fn host_write(
        &mut self,
        addr: crate::memory::HostAddr,
        payload: Payload,
    ) -> Result<(), GpuError> {
        let region = self.host.get(addr)?.region();
        let cookies = self.pages.access(region, Access::Write);
        self.faults.extend(cookies);
        Ok(self.host.write(addr, payload)?)
    }

    /// Logically mutates a host chunk through the page-protection check.
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] for unknown addresses.
    pub fn host_touch(&mut self, addr: crate::memory::HostAddr) -> Result<(), GpuError> {
        let region = self.host.get(addr)?.region();
        let cookies = self.pages.access(region, Access::Write);
        self.faults.extend(cookies);
        Ok(self.host.touch(addr)?)
    }

    /// Reads host memory through the page-protection check (access-revoked
    /// ranges fault; used by asynchronous decryption).
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] for unknown addresses.
    pub fn host_read(&mut self, region: HostRegion) -> Result<&Payload, GpuError> {
        let cookies = self.pages.access(region, Access::Read);
        self.faults.extend(cookies);
        Ok(self.host.get(region.addr)?.payload())
    }

    fn host_store(&mut self, dst: HostRegion, payload: Payload) -> Result<(), GpuError> {
        // Stores coming from the device are DMA writes; they bypass MPK
        // protection (the copy engine writes CVM shared memory, and the
        // runtime copies into private memory with protection suspended).
        Ok(self.host.write(dst.addr, payload)?)
    }

    // ---------------------------------------------------------------
    // Interposition surface (what PipeLLM hooks)
    // ---------------------------------------------------------------

    /// Seals a host region at an arbitrary (future) IV without advancing
    /// the channel counter: speculative pre-encryption.
    ///
    /// # Errors
    ///
    /// - [`GpuError::Memory`] for unknown addresses.
    /// - [`GpuError::Crypto`] ([`CryptoError::IvReused`]) if `iv` is below
    ///   the host counter.
    /// - [`GpuError::CcDisabled`] with CC off.
    pub fn seal_region(&mut self, src: HostRegion, iv: u64) -> Result<SealedMessage, GpuError> {
        self.seal_region_into(src, iv, &mut Vec::new())
    }

    /// [`CudaContext::seal_region`] sealing into a recycled staging buffer:
    /// `buf` (cleared, capacity reused) is staged with the plaintext,
    /// sealed in place, and moved out as the message's ciphertext storage.
    /// The PipeLLM runtime feeds this from its buffer pool so steady-state
    /// speculation allocates nothing.
    ///
    /// # Errors
    ///
    /// As [`CudaContext::seal_region`]. On error the caller keeps `buf`
    /// (untouched or holding staged plaintext), so pooled buffers survive
    /// freed-chunk and IV races.
    pub fn seal_region_into(
        &mut self,
        src: HostRegion,
        iv: u64,
        buf: &mut Vec<u8>,
    ) -> Result<SealedMessage, GpuError> {
        if self.cc == CcMode::Off {
            return Err(GpuError::CcDisabled);
        }
        // Pre-check the IV so the fallible steps run before the buffer is
        // committed; `seal_speculative_prepared` re-checks the same
        // counter, which cannot advance in between.
        if iv < self.channel().host().tx().next_iv() {
            return Err(GpuError::Crypto(CryptoError::IvReused { iv }));
        }
        let aad = stage_plaintext(self.host.get(src.addr)?.payload(), src.addr.0, buf);
        let staged = std::mem::take(buf);
        Ok(self
            .channel()
            .host()
            .tx()
            .seal_speculative_prepared(iv, aad.into(), staged)?)
    }

    /// The host-side sender counter (next IV to be consumed).
    pub fn current_h2d_iv(&self) -> u64 {
        self.channel().host().tx().next_iv()
    }

    /// Submits pre-encrypted ciphertext to the device.
    ///
    /// `ready_at` is when the ciphertext became available (the caller's
    /// speculative-encryption pipeline determines it); the wire transfer
    /// starts at `max(now, ready_at)`. The host counter is committed at the
    /// message's IV, and the device opens the message at its own counter —
    /// if the caller mis-aligned IVs this fails *exactly* like the real
    /// hardware would.
    ///
    /// # Errors
    ///
    /// - [`GpuError::Crypto`] with [`CryptoError::IvReused`] /
    ///   [`CryptoError::IvMismatch`] if the message's IV is behind/ahead of
    ///   the host counter.
    /// - [`GpuError::Crypto`] with [`CryptoError::AuthenticationFailed`] if
    ///   the device rejects the ciphertext.
    /// - [`GpuError::Memory`] for unknown pointers or length mismatches.
    pub fn submit_htod_sealed(
        &mut self,
        now: SimTime,
        ready_at: SimTime,
        dst: DevicePtr,
        src: HostRegion,
        sealed: &SealedMessage,
        payload_len: u64,
    ) -> Result<MemcpyTiming, GpuError> {
        if self.cc == CcMode::Off {
            return Err(GpuError::CcDisabled);
        }
        self.channel_mut().host_mut().tx_mut().commit(sealed)?;
        let depart = now.max(ready_at);
        let wire = self.link.transfer(depart, payload_len);
        if let Some(fault) = self.roll_frame(FaultSite::HostToDevice) {
            self.stats.faulted_ops += 1;
            self.pending.push(wire.end + self.timing.cc_control);
            absorb_frame_fault(
                self.channel_mut().device_mut().rx_mut(),
                fault,
                sealed.clone(),
            );
            return Err(GpuError::TransferFaulted {
                fault: fault.kind.label(),
                iv: sealed.iv,
            });
        }
        self.deliver_to_device(dst, sealed)?;
        let done = wire.end + self.timing.cc_control;
        self.record(
            Direction::HostToDevice,
            src,
            dst,
            payload_len,
            now,
            done,
            Some(sealed.iv),
        );
        self.stats.h2d_ops += 1;
        self.stats.h2d_bytes += payload_len;
        self.pending.push(done);
        // Pre-encrypted submission returns immediately: the calling thread
        // only queues the staged ciphertext for DMA.
        Ok(MemcpyTiming {
            api_return: now,
            complete: done,
        })
    }

    /// Sends a NOP — a 1-byte dummy transfer that advances the IV on both
    /// sides (paper §5.3). Costs one crypto-pool slot and a tiny wire op.
    pub fn send_nop(&mut self, now: SimTime) -> Result<SimTime, GpuError> {
        if self.cc == CcMode::Off {
            return Err(GpuError::CcDisabled);
        }
        let staging = std::mem::take(&mut self.nop_staging);
        let nop = self
            .channel_mut()
            .host_mut()
            .tx_mut()
            .seal_nop_with(staging)?;
        let enc = self.crypto_pool.reserve(now, self.timing.crypto.nop_time());
        let wire = self.link.transfer(enc.end, 1);
        // The receiver opens the message's own buffer in place, and that
        // 17-byte buffer cycles back for the next NOP — padding bursts
        // allocate nothing on either endpoint.
        self.nop_staging =
            open_delivered(self.channel_mut().device_mut().rx_mut(), nop, "send_nop")?;
        self.stats.nops += 1;
        let done = wire.end + self.timing.cc_control;
        self.nop_log.push(done);
        self.pending.push(done);
        Ok(done)
    }

    /// Device→host raw transfer: seals on the device, moves the wire, and
    /// opens functionally — but performs **no** decryption-time accounting
    /// and does not write host memory. The caller (PipeLLM's asynchronous
    /// decryption, §5.4) owns scheduling the decrypt cost, storing the
    /// plaintext, and protecting the destination pages.
    ///
    /// Returns `(wire_done, opened_payload)`.
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] / [`GpuError::Crypto`] as for the native path.
    pub fn memcpy_dtoh_raw(
        &mut self,
        now: SimTime,
        dst: HostRegion,
        src: DevicePtr,
    ) -> Result<(SimTime, Payload), GpuError> {
        if self.cc == CcMode::Off {
            return Err(GpuError::CcDisabled);
        }
        let len = self.device_mem.get(src)?.len();
        let mut buf = Vec::new();
        let aad = stage_plaintext(self.device_mem.get(src)?, dst.addr.0, &mut buf);
        let sealed = self
            .channel_mut()
            .device_mut()
            .tx_mut()
            .seal_prepared(aad.into(), buf)?;
        let iv = sealed.iv;
        let kind = sealed_kind(&sealed);
        let wire = self.link.transfer(now, len);
        if let Some(fault) = self.roll_frame(FaultSite::DeviceToHost) {
            self.stats.faulted_ops += 1;
            self.pending.push(wire.end + self.timing.cc_control);
            absorb_frame_fault(self.channel_mut().host_mut().rx_mut(), fault, sealed);
            return Err(GpuError::TransferFaulted {
                fault: fault.kind.label(),
                iv,
            });
        }
        let opened = open_delivered(
            self.channel_mut().host_mut().rx_mut(),
            sealed,
            "memcpy_dtoh_raw",
        )?;
        let opened_payload = Payload::from_plaintext(kind, opened);
        let done = wire.end + self.timing.cc_control;
        self.record(Direction::DeviceToHost, dst, src, len, now, done, Some(iv));
        self.stats.d2h_ops += 1;
        self.stats.d2h_bytes += len;
        self.pending.push(done);
        Ok((done, opened_payload))
    }

    /// Swap-out of one paged KV group with deferred decryption — the
    /// encrypted-KV-cache transfer path (§5.2/§5.4).
    ///
    /// The whole group is sealed **on the device** in one fused batch
    /// submission ([`seal_batch_prepared`]) at the active session's next
    /// D2H IVs (consecutive, in eviction order, AAD-bound to
    /// `group`/index/count via [`pipellm_crypto::kv`]): every block is
    /// staged into a buffer drawn from `pool` first, then a single gang
    /// dispatch produces per-block ciphertexts and tags — not one
    /// dispatch per block. The host accepts every block in wire order —
    /// reserving its IV so the channel endpoints stay in lockstep — but
    /// does **not** decrypt: each destination region is
    /// [`Protection::AccessRevoked`] under its cookie, one group-wide
    /// background open is scheduled on the crypto pool (priced as a
    /// single fused dispatch, [`CpuCryptoModel::batch_seal_time`]), and
    /// the returned [`DeferredKvOpen`]s carry the at-rest ciphertext plus
    /// the handles the owner uses to land the plaintext (or to decrypt
    /// synchronously when a fault forces it). The call returns to the
    /// issuing thread immediately.
    ///
    /// [`seal_batch_prepared`]: pipellm_crypto::channel::TxContext::seal_batch_prepared
    /// [`CpuCryptoModel::batch_seal_time`]: pipellm_crypto::cost::CpuCryptoModel::batch_seal_time
    ///
    /// # Panics
    ///
    /// Panics if `cookies.len() != blocks.len()`.
    ///
    /// The call is atomic: every failure mode is checked *before* the
    /// first block seals, so an error leaves no IVs consumed, no pages
    /// revoked, and no staging buffers drawn — a half-sealed group would
    /// otherwise strand earlier blocks behind revocations whose deferred
    /// opens were dropped.
    ///
    /// # Errors
    ///
    /// - [`GpuError::CcDisabled`] with CC off.
    /// - [`GpuError::Memory`] for unknown device pointers.
    /// - [`GpuError::Crypto`] ([`CryptoError::IvExhausted`]) if the group
    ///   would run the session's D2H stream into its headroom.
    pub fn swap_out_kv_group(
        &mut self,
        now: SimTime,
        group: u64,
        blocks: &[(HostRegion, DevicePtr)],
        cookies: &[u64],
        pool: &mut Vec<Vec<u8>>,
    ) -> Result<Vec<DeferredKvOpen>, GpuError> {
        if self.cc == CcMode::Off {
            return Err(GpuError::CcDisabled);
        }
        assert_eq!(cookies.len(), blocks.len(), "one cookie per KV block");
        // Validate up front so the seal loop below cannot fail midway.
        for &(_, src) in blocks {
            self.device_mem.get(src)?;
        }
        let remaining = self.channel().device().tx().remaining_ivs();
        if remaining < blocks.len() as u64 {
            return Err(GpuError::Crypto(CryptoError::IvExhausted {
                iv: self.channel().device().tx().next_iv() + remaining,
            }));
        }
        let count = blocks.len() as u32;
        // Stage every block's plaintext into a pooled buffer first; the
        // same buffer becomes the sealed message's ciphertext storage
        // and, once opened, the at-rest plaintext — no copies.
        let mut staged = Vec::with_capacity(blocks.len());
        let mut msgs = Vec::with_capacity(blocks.len());
        for (index, &(_, src)) in blocks.iter().enumerate() {
            let payload = self.device_mem.get(src)?;
            let mut buf = pool.pop().unwrap_or_default();
            buf.clear();
            buf.reserve(payload.plaintext_len() + TAG_LEN);
            let kind = payload.write_plaintext(&mut buf);
            let len = payload.len();
            staged.push((kind, len));
            msgs.push((kv::kv_block_aad(kind, group, index as u32, count, len), buf));
        }
        // One fused gang submission seals the whole group at consecutive
        // IVs with per-block tags, replacing per-block gang dispatch.
        let sealed_group = self
            .channel_mut()
            .device_mut()
            .tx_mut()
            .seal_batch_prepared(msgs)?;
        let total_bytes: u64 = staged.iter().map(|&(_, len)| len).sum();
        let mut parts = Vec::with_capacity(blocks.len());
        let mut last_arrival = now;
        for ((sealed, &(kind, len)), (&(dst, src), &cookie)) in sealed_group
            .into_iter()
            .zip(&staged)
            .zip(blocks.iter().zip(cookies))
        {
            let iv = sealed.iv;
            // DMA of the ciphertext into CVM shared memory.
            let wire = self.link.transfer(now, len);
            let done = wire.end + self.timing.cc_control;
            // The host accepts the block in wire order (IV reserved now).
            let open = self.channel_mut().host_mut().rx_mut().defer_open();
            self.pages.protect(dst, Protection::AccessRevoked, cookie);
            self.record(Direction::DeviceToHost, dst, src, len, now, done, Some(iv));
            self.stats.d2h_ops += 1;
            self.stats.d2h_bytes += len;
            self.pending.push(done);
            last_arrival = last_arrival.max(done);
            // Chaos on the swap-out path damages the *at-rest* ciphertext
            // after the host accepted the frame: the group's atomicity
            // contract holds (every IV consumed, every page revoked, every
            // open scheduled), and the damage surfaces when the deferred
            // open authenticates at finalize time.
            let mut ciphertext = sealed.bytes;
            if let Some(fault) = self.roll_frame(FaultSite::KvSwapOut) {
                if fault.apply_to_frame(&mut ciphertext) {
                    self.stats.faulted_ops += 1;
                }
            }
            parts.push((dst, kind, ciphertext, sealed.aad, open, cookie));
        }
        // The group decrypts as ONE background submission once the last
        // block is off the wire: a single fused dispatch covers every
        // block, so all deferred opens share its completion time.
        let open_time =
            self.timing
                .crypto
                .batch_seal_time(total_bytes, blocks.len(), self.crypto_threads);
        let reservation = self.crypto_pool.reserve(last_arrival, open_time);
        Ok(parts
            .into_iter()
            .map(
                |(region, kind, ciphertext, aad, open, cookie)| DeferredKvOpen {
                    region,
                    kind,
                    ciphertext,
                    aad,
                    open,
                    ready_at: reservation.end,
                    cookie,
                },
            )
            .collect())
    }

    /// Stores a payload into host memory bypassing page protection — the
    /// interposer's own store path (it manages protection itself).
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] for unknown addresses or length mismatches.
    pub fn host_store_unchecked(
        &mut self,
        dst: HostRegion,
        payload: Payload,
    ) -> Result<(), GpuError> {
        self.host_store(dst, payload)
    }

    /// Opens a sealed message at the device endpoint and stores the
    /// payload. The borrowed variant clones the ciphertext so the caller
    /// keeps it — required by the protocol's NOP-pad-and-resubmit recovery
    /// (an `IvMismatch` ciphertext is resubmitted verbatim), and what lets
    /// the runtime recycle the staged buffer into its pool afterwards
    /// (consuming it here would move it into the device payload and starve
    /// the pool instead). The owned variant decrypts the message's own
    /// buffer in place for paths that truly finish with it.
    fn deliver_to_device(
        &mut self,
        dst: DevicePtr,
        sealed: &SealedMessage,
    ) -> Result<(), GpuError> {
        self.deliver_to_device_owned(dst, sealed.clone())
    }

    fn deliver_to_device_owned(
        &mut self,
        dst: DevicePtr,
        sealed: SealedMessage,
    ) -> Result<(), GpuError> {
        let kind = sealed_kind(&sealed);
        let opened = match self.channel_mut().device_mut().rx_mut().open_owned(sealed) {
            Ok(plaintext) => plaintext,
            // A mismatched/reused IV here is the *recoverable*
            // speculative-submit signal: the interposer inserts NOPs to
            // advance the counter (or re-seals) and retries, so the error
            // keeps its Crypto classification rather than being escalated
            // to a channel desync.
            Err(e) => return Err(GpuError::Crypto(e)),
        };
        self.device_mem
            .store(dst, Payload::from_plaintext(kind, opened))?;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        direction: Direction,
        region: HostRegion,
        device: DevicePtr,
        len: u64,
        submitted: SimTime,
        completed: SimTime,
        iv: Option<u64>,
    ) {
        self.trace.push(TransferRecord {
            session: self.active,
            direction,
            region,
            device,
            len,
            submitted,
            completed,
            iv,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pages::Protection;

    fn ctx(cc: CcMode) -> CudaContext {
        CudaContext::new(ContextConfig {
            cc,
            device_capacity: 1 << 30,
            ..Default::default()
        })
    }

    #[test]
    fn cc_off_moves_plaintext() {
        let mut c = ctx(CcMode::Off);
        let src = c.host_mut().alloc_real(vec![1, 2, 3, 4]);
        let dst = c.alloc_device(4).unwrap();
        let t = c.memcpy_htod_async(SimTime::ZERO, dst, src).unwrap();
        assert!(t.complete > SimTime::ZERO);
        assert_eq!(
            t.api_return,
            SimTime::ZERO,
            "CC-off API returns immediately"
        );
        assert_eq!(
            c.device_memory().get(dst).unwrap(),
            &Payload::Real(vec![1, 2, 3, 4])
        );
        assert_eq!(c.stats().h2d_bytes, 4);
    }

    #[test]
    fn cc_on_roundtrips_real_bytes() {
        let mut c = ctx(CcMode::On);
        let data: Vec<u8> = (0..=255).collect();
        let src = c.host_mut().alloc_real(data.clone());
        let dst = c.alloc_device(256).unwrap();
        c.memcpy_htod_async(SimTime::ZERO, dst, src).unwrap();
        assert_eq!(
            c.device_memory().get(dst).unwrap(),
            &Payload::Real(data.clone())
        );
        // And back.
        let back = c.host_mut().alloc_real(vec![0u8; 256]);
        c.memcpy_dtoh_async(SimTime::ZERO, back, dst).unwrap();
        assert_eq!(
            c.host().get(back.addr).unwrap().payload(),
            &Payload::Real(data)
        );
    }

    #[test]
    fn cc_on_roundtrips_virtual_payloads() {
        let mut c = ctx(CcMode::On);
        let src = c.host_mut().alloc_virtual(64 << 20);
        let dst = c.alloc_device(64 << 20).unwrap();
        c.memcpy_htod_async(SimTime::ZERO, dst, src).unwrap();
        assert_eq!(
            c.device_memory().get(dst).unwrap(),
            &Payload::Virtual {
                len: 64 << 20,
                version: 0
            }
        );
    }

    #[test]
    fn cc_on_is_slower_than_cc_off() {
        let bytes = 32 << 20;
        let mut off = ctx(CcMode::Off);
        let mut on = ctx(CcMode::On);
        let (s_off, s_on) = (
            off.host_mut().alloc_virtual(bytes),
            on.host_mut().alloc_virtual(bytes),
        );
        let d_off = off.alloc_device(bytes).unwrap();
        let d_on = on.alloc_device(bytes).unwrap();
        let t_off = off
            .memcpy_htod_async(SimTime::ZERO, d_off, s_off)
            .unwrap()
            .complete;
        let t_on = on
            .memcpy_htod_async(SimTime::ZERO, d_on, s_on)
            .unwrap()
            .complete;
        let ratio = t_on.as_secs_f64() / t_off.as_secs_f64();
        assert!(
            ratio > 6.0,
            "CC should be ~an order of magnitude slower, got {ratio:.1}x"
        );
    }

    #[test]
    fn synchronize_reports_latest_completion() {
        let mut c = ctx(CcMode::On);
        let a = c.host_mut().alloc_virtual(1 << 20);
        let b = c.host_mut().alloc_virtual(8 << 20);
        let da = c.alloc_device(1 << 20).unwrap();
        let db = c.alloc_device(8 << 20).unwrap();
        let ta = c.memcpy_htod_async(SimTime::ZERO, da, a).unwrap().complete;
        let tb = c.memcpy_htod_async(SimTime::ZERO, db, b).unwrap().complete;
        let sync = c.synchronize(SimTime::ZERO);
        assert_eq!(sync, ta.max(tb));
        // A second synchronize with nothing pending returns `now`.
        let now = SimTime::from_millis(100);
        assert_eq!(c.synchronize(now), now);
    }

    #[test]
    fn speculative_seal_and_submit_in_order() {
        let mut c = ctx(CcMode::On);
        let src = c.host_mut().alloc_real(vec![42u8; 128]);
        let dst = c.alloc_device(128).unwrap();
        let iv = c.current_h2d_iv();
        let sealed = c.seal_region(src, iv).unwrap();
        let done = c
            .submit_htod_sealed(SimTime::ZERO, SimTime::ZERO, dst, src, &sealed, 128)
            .unwrap();
        assert!(done.complete > SimTime::ZERO);
        assert_eq!(done.api_return, SimTime::ZERO);
        assert_eq!(
            c.device_memory().get(dst).unwrap(),
            &Payload::Real(vec![42u8; 128])
        );
    }

    #[test]
    fn speculative_submit_with_future_iv_needs_nops() {
        let mut c = ctx(CcMode::On);
        let src = c.host_mut().alloc_real(vec![7u8; 32]);
        let dst = c.alloc_device(32).unwrap();
        let iv = c.current_h2d_iv() + 2; // predicted two ops ahead
        let sealed = c.seal_region(src, iv).unwrap();
        // Committing now must fail with a recoverable mismatch.
        let err = c
            .submit_htod_sealed(SimTime::ZERO, SimTime::ZERO, dst, src, &sealed, 32)
            .unwrap_err();
        assert!(matches!(
            err,
            GpuError::Crypto(CryptoError::IvMismatch { iv: _, expected: _ })
        ));
        // Two NOPs advance the IV; then the submit succeeds and the device
        // (whose counter also advanced by the NOPs) authenticates it.
        c.send_nop(SimTime::ZERO).unwrap();
        c.send_nop(SimTime::ZERO).unwrap();
        c.submit_htod_sealed(SimTime::ZERO, SimTime::ZERO, dst, src, &sealed, 32)
            .unwrap();
        assert_eq!(
            c.device_memory().get(dst).unwrap(),
            &Payload::Real(vec![7u8; 32])
        );
        assert_eq!(c.stats().nops, 2);
    }

    #[test]
    fn stale_speculative_ciphertext_is_refused() {
        let mut c = ctx(CcMode::On);
        let src = c.host_mut().alloc_real(vec![1u8; 16]);
        let other = c.host_mut().alloc_real(vec![2u8; 16]);
        let dst = c.alloc_device(16).unwrap();
        let iv = c.current_h2d_iv();
        let sealed = c.seal_region(src, iv).unwrap();
        // A competing native transfer consumes the IV first.
        c.memcpy_htod_async(SimTime::ZERO, dst, other).unwrap();
        let err = c
            .submit_htod_sealed(SimTime::ZERO, SimTime::ZERO, dst, src, &sealed, 16)
            .unwrap_err();
        assert!(matches!(
            err,
            GpuError::Crypto(CryptoError::IvReused { .. })
        ));
    }

    #[test]
    fn dtoh_raw_gives_plaintext_without_host_store() {
        let mut c = ctx(CcMode::On);
        let dst_host = c.host_mut().alloc_real(vec![0u8; 8]);
        let dev = c.alloc_device(8).unwrap();
        let src = c.host_mut().alloc_real(vec![9u8; 8]);
        c.memcpy_htod_async(SimTime::ZERO, dev, src).unwrap();
        let (done, payload) = c.memcpy_dtoh_raw(SimTime::ZERO, dst_host, dev).unwrap();
        assert!(done > SimTime::ZERO);
        assert_eq!(payload, Payload::Real(vec![9u8; 8]));
        // Host memory untouched until the caller stores it.
        assert_eq!(
            c.host().get(dst_host.addr).unwrap().payload(),
            &Payload::Real(vec![0u8; 8])
        );
        c.host_store_unchecked(dst_host, payload).unwrap();
        assert_eq!(
            c.host().get(dst_host.addr).unwrap().payload(),
            &Payload::Real(vec![9u8; 8])
        );
    }

    #[test]
    fn kv_group_swap_out_defers_opens_behind_revoked_pages() {
        let mut c = ctx(CcMode::On);
        let data_a = vec![0xaau8; 256];
        let data_b = vec![0xbbu8; 256];
        let (dev_a, dev_b) = (c.alloc_device(256).unwrap(), c.alloc_device(256).unwrap());
        c.device_memory_mut()
            .store(dev_a, Payload::Real(data_a.clone()))
            .unwrap();
        c.device_memory_mut()
            .store(dev_b, Payload::Real(data_b.clone()))
            .unwrap();
        let host_a = c.host_mut().alloc_real(vec![0u8; 256]);
        let host_b = c.host_mut().alloc_real(vec![0u8; 256]);
        let before = c.session_counters(SessionId::DEFAULT).unwrap();
        let deferred = c
            .swap_out_kv_group(
                SimTime::ZERO,
                42,
                &[(host_a, dev_a), (host_b, dev_b)],
                &[501, 502],
                &mut Vec::new(),
            )
            .unwrap();
        assert_eq!(deferred.len(), 2);
        // Both destination regions are access-revoked under their cookies.
        assert_eq!(
            c.pages_mut().protection_of(host_a),
            Some(Protection::AccessRevoked)
        );
        assert_eq!(
            c.pages_mut().protection_of(host_b),
            Some(Protection::AccessRevoked)
        );
        // The channel advanced two D2H IVs on both endpoints (lockstep).
        let after = c.session_counters(SessionId::DEFAULT).unwrap();
        assert_eq!(after.d2h_tx, before.d2h_tx + 2);
        assert!(after.in_lockstep(), "{after:?}");
        // The at-rest bytes are genuine ciphertext, and the deferred opens
        // recover the exact plaintext — out of order.
        let [a, b]: [DeferredKvOpen; 2] = deferred.try_into().unwrap();
        assert_ne!(&a.ciphertext[..256], data_a.as_slice());
        assert!(a.ready_at > SimTime::ZERO);
        for (d, want) in [(b, data_b), (a, data_a)] {
            let mut buf = d.ciphertext;
            d.open.open_in_place(&d.aad, &mut buf).unwrap();
            assert_eq!(buf, want);
        }
    }

    #[test]
    fn kv_group_swap_out_is_atomic_near_iv_exhaustion() {
        use pipellm_crypto::channel::IV_LIMIT;
        let mut c = ctx(CcMode::On);
        // One D2H IV left; a two-block group cannot seal.
        let sid = c
            .session_manager_mut()
            .open_with_initial_ivs(1, IV_LIMIT - 1);
        c.set_session(sid).unwrap();
        let mut pairs = Vec::new();
        for _ in 0..2 {
            let dev = c.alloc_device(64).unwrap();
            let host = c.host_mut().alloc_real(vec![0u8; 64]);
            pairs.push((host, dev));
        }
        let mut pool = vec![Vec::with_capacity(128)];
        let before = c.session_counters(sid).unwrap();
        let err = c
            .swap_out_kv_group(SimTime::ZERO, 5, &pairs, &[1, 2], &mut pool)
            .unwrap_err();
        assert!(matches!(
            err,
            GpuError::Crypto(CryptoError::IvExhausted { .. })
        ));
        // Nothing moved: no revocations, no IVs consumed, no staging
        // buffers drawn — a half-sealed group would strand block 0
        // behind a revocation whose deferred open was dropped.
        assert_eq!(c.pages_mut().protection_of(pairs[0].0), None);
        assert_eq!(c.pages_mut().protection_of(pairs[1].0), None);
        assert_eq!(c.session_counters(sid).unwrap(), before);
        assert_eq!(pool.len(), 1, "no buffer was consumed");
        assert_eq!(c.stats().d2h_ops, 0);
    }

    #[test]
    fn kv_group_swap_out_requires_cc() {
        let mut c = ctx(CcMode::Off);
        let dev = c.alloc_device(16).unwrap();
        let host = c.host_mut().alloc_real(vec![0u8; 16]);
        assert!(matches!(
            c.swap_out_kv_group(SimTime::ZERO, 1, &[(host, dev)], &[9], &mut Vec::new()),
            Err(GpuError::CcDisabled)
        ));
    }

    #[test]
    fn page_faults_are_reported_via_cookies() {
        let mut c = ctx(CcMode::On);
        let region = c.host_mut().alloc_virtual(4096);
        c.pages_mut()
            .protect(region, Protection::WriteProtected, 77);
        c.host_touch(region.addr).unwrap();
        assert_eq!(c.drain_faults(), vec![77]);
        assert!(c.drain_faults().is_empty(), "faults drain once");
    }

    #[test]
    fn interposition_surface_requires_cc() {
        let mut c = ctx(CcMode::Off);
        let src = c.host_mut().alloc_virtual(64);
        assert!(matches!(c.seal_region(src, 1), Err(GpuError::CcDisabled)));
        assert!(matches!(
            c.send_nop(SimTime::ZERO),
            Err(GpuError::CcDisabled)
        ));
    }

    #[test]
    fn trace_records_ivs_and_sizes() {
        let mut c = ctx(CcMode::On);
        let src = c.host_mut().alloc_virtual(256 * 1024);
        let dst = c.alloc_device(256 * 1024).unwrap();
        c.memcpy_htod_async(SimTime::ZERO, dst, src).unwrap();
        let trace = c.trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].len, 256 * 1024);
        assert_eq!(trace[0].iv, Some(1));
        assert_eq!(trace[0].direction, Direction::HostToDevice);
    }

    #[test]
    fn compute_launches_account_stalls() {
        let mut c = ctx(CcMode::On);
        c.launch_compute(SimTime::from_micros(10), Duration::from_micros(5));
        assert_eq!(c.gpu_engine().io_stall_time(), Duration::from_micros(10));
    }

    // ---------------------------------------------------------------
    // Chaos injection
    // ---------------------------------------------------------------

    use pipellm_chaos::FaultPlan;

    /// A context whose every frame faults: frame fault probability 1.0.
    fn storm_ctx() -> CudaContext {
        CudaContext::new(ContextConfig {
            cc: CcMode::On,
            device_capacity: 1 << 30,
            chaos: Some(Arc::new(ChaosInjector::new(
                FaultPlan::new(7).with_frame_rate(1.0),
            ))),
            ..Default::default()
        })
    }

    #[test]
    fn faulted_htod_burns_the_iv_and_keeps_lockstep() {
        let mut c = storm_ctx();
        let src = c.host_mut().alloc_real(vec![0x42; 64]);
        let dst = c.alloc_device(64).unwrap();
        let err = c.memcpy_htod_async(SimTime::ZERO, dst, src);
        assert!(
            matches!(err, Err(GpuError::TransferFaulted { iv: 1, .. })),
            "got {err:?}"
        );
        let counters = c.session_counters(c.active_session()).unwrap();
        assert!(
            counters.in_lockstep(),
            "fault must not desync: {counters:?}"
        );
        assert_eq!(counters.h2d_tx, 2, "both endpoints consumed the IV");
        assert_eq!(c.stats().faulted_ops, 1);
        // The payload never landed: the allocation still holds its
        // uninitialized virtual stand-in, not the real bytes.
        assert!(
            !matches!(c.device_memory().get(dst).unwrap(), Payload::Real(_)),
            "faulted transfer must not deliver plaintext"
        );
    }

    #[test]
    fn faulted_dtoh_leaves_host_memory_untouched() {
        let mut c = storm_ctx();
        let dst = c.alloc_device(32).unwrap();
        c.device_memory_mut()
            .store(dst, Payload::Real(vec![9; 32]))
            .unwrap();
        let back = c.host_mut().alloc_real(vec![0u8; 32]);
        let err = c.memcpy_dtoh_async(SimTime::ZERO, back, dst);
        assert!(matches!(err, Err(GpuError::TransferFaulted { .. })));
        assert_eq!(
            c.host().get(back.addr).unwrap().payload(),
            &Payload::Real(vec![0u8; 32]),
            "faulted D2H must not write host memory"
        );
        let counters = c.session_counters(c.active_session()).unwrap();
        assert!(counters.in_lockstep());
        assert_eq!(counters.d2h_tx, 2);
    }

    #[test]
    fn retry_after_fault_succeeds_at_a_fresh_iv() {
        // Storm at ~50%: deterministic plan, so walk until one fault and
        // one success have both been observed.
        let mut c = CudaContext::new(ContextConfig {
            cc: CcMode::On,
            device_capacity: 1 << 30,
            chaos: Some(Arc::new(ChaosInjector::new(
                FaultPlan::new(11).with_frame_rate(0.5),
            ))),
            ..Default::default()
        });
        let data: Vec<u8> = (0..64).collect();
        let src = c.host_mut().alloc_real(data.clone());
        let dst = c.alloc_device(64).unwrap();
        let (mut faults, mut successes) = (0u32, 0u32);
        for _ in 0..64 {
            match c.memcpy_htod_async(SimTime::ZERO, dst, src) {
                Ok(_) => {
                    successes += 1;
                    assert_eq!(
                        c.device_memory().get(dst).unwrap(),
                        &Payload::Real(data.clone())
                    );
                }
                Err(GpuError::TransferFaulted { .. }) => faults += 1,
                Err(other) => panic!("unexpected error {other:?}"),
            }
            let counters = c.session_counters(c.active_session()).unwrap();
            assert!(counters.in_lockstep(), "desync after op: {counters:?}");
        }
        assert!(
            faults > 0 && successes > 0,
            "{faults} faults, {successes} successes"
        );
        assert_eq!(c.stats().faulted_ops as u32, faults);
    }

    #[test]
    fn faulted_submit_consumes_the_committed_iv() {
        let mut c = storm_ctx();
        let src = c.host_mut().alloc_real(vec![5; 48]);
        let dst = c.alloc_device(48).unwrap();
        let chaos = Arc::clone(c.chaos().unwrap());
        let iv = c.current_h2d_iv();
        let sealed = c.seal_region(src, iv).unwrap();
        let err = c.submit_htod_sealed(SimTime::ZERO, SimTime::ZERO, dst, src, &sealed, 48);
        assert!(matches!(err, Err(GpuError::TransferFaulted { .. })));
        let counters = c.session_counters(c.active_session()).unwrap();
        assert!(counters.in_lockstep());
        assert_eq!(counters.h2d_tx, iv + 1, "commit + sentinel burned the IV");
        // A fresh speculative seal at the next IV goes through when the
        // injector is suppressed (the recovery path runs clean).
        let _quiet = chaos.suppress();
        let sealed2 = c.seal_region(src, iv + 1).unwrap();
        c.submit_htod_sealed(SimTime::ZERO, SimTime::ZERO, dst, src, &sealed2, 48)
            .unwrap();
        assert_eq!(
            c.device_memory().get(dst).unwrap(),
            &Payload::Real(vec![5; 48])
        );
    }

    #[test]
    fn kv_swap_out_fault_surfaces_at_the_deferred_open() {
        let mut c = storm_ctx();
        let dev = c.alloc_device(128).unwrap();
        c.device_memory_mut()
            .store(dev, Payload::Real(vec![3; 128]))
            .unwrap();
        let host = c.host_mut().alloc_real(vec![0u8; 128]);
        let mut pool = Vec::new();
        // The group call itself succeeds: atomicity holds under chaos.
        let deferred = c
            .swap_out_kv_group(SimTime::ZERO, 1, &[(host, dev)], &[101], &mut pool)
            .unwrap();
        assert_eq!(deferred.len(), 1);
        assert_eq!(c.stats().faulted_ops, 1);
        let counters = c.session_counters(c.active_session()).unwrap();
        assert!(counters.in_lockstep(), "host reserved the block's IV");
        // The at-rest ciphertext was damaged, so the deferred open fails
        // authentication — cleanly.
        let block = &deferred[0];
        let mut buf = block.ciphertext.clone();
        assert!(block.open.open_in_place(&block.aad, &mut buf).is_err());
    }

    #[test]
    fn suppressed_injector_fires_nothing() {
        let mut c = storm_ctx();
        let src = c.host_mut().alloc_real(vec![1; 16]);
        let dst = c.alloc_device(16).unwrap();
        let chaos = Arc::clone(c.chaos().unwrap());
        let _quiet = chaos.suppress();
        for _ in 0..8 {
            c.memcpy_htod_async(SimTime::ZERO, dst, src).unwrap();
        }
        assert_eq!(c.stats().faulted_ops, 0);
    }
}
