//! A simulated confidential-computing GPU for the PipeLLM reproduction.
//!
//! This crate stands in for the hardware and driver stack the paper runs on
//! (an NVIDIA H100-SXM in CC mode inside a CVM, driven through CUDA):
//!
//! - [`memory`]: host (CVM) and device memory. Allocations carry either
//!   real bytes or *virtual* payloads (length-only stand-ins that let the
//!   timing experiments "move" hundreds of gigabytes).
//! - [`pages`]: an MPK/PKU-style page-protection registry. PipeLLM uses
//!   write-protection to validate speculative ciphertext and access
//!   revocation to make decryption asynchronous (paper §5.2, §5.4).
//! - [`timing`]: the I/O cost model calibrated against the paper's
//!   Figure 2 microbenchmark (PCIe bandwidth, CC staging ceiling, CC
//!   control-plane overhead, CPU crypto throughput).
//! - [`context`]: [`context::CudaContext`] — the device + channel + timing
//!   resources behind a CUDA-flavoured asynchronous memcpy API. In CC mode
//!   every host→device transfer really is sealed with AES-GCM under the
//!   incrementing-IV discipline, and the simulated copy engine really
//!   rejects out-of-order ciphertext.
//! - [`runtime`]: the [`runtime::GpuRuntime`] trait that serving engines
//!   (FlexGen/vLLM/PEFT analogues) program against, with the two baseline
//!   implementations: CC disabled and native NVIDIA CC (on-the-fly
//!   encryption inside the API call). The PipeLLM runtime in the `pipellm`
//!   crate implements the same trait — that is the paper's
//!   user-transparency claim in type-system form.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Transfer failures (authentication, truncation, injected faults) are
// recoverable events that must surface as `GpuError`s; panicking on them
// would wedge the whole pipeline. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cluster;
pub mod context;
pub mod memory;
pub mod pages;
pub mod runtime;
pub mod timing;

pub use cluster::{ClusterConfig, ClusterContext, ClusterRuntime, EdgeId, EdgeStats, NvLinkModel};
pub use context::{CcMode, CudaContext, DeferredKvOpen, GpuError, SessionCounters};
pub use memory::{DevicePtr, HostAddr, HostMemory, HostRegion, Payload};
pub use pipellm_crypto::session::SessionId;
pub use runtime::{CcNativeRuntime, CcOffRuntime, GpuRuntime, SessionRuntime, SessionedRuntime};
pub use timing::IoTimingModel;
