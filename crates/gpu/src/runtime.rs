//! The runtime interface serving engines program against.
//!
//! The paper's transparency claim — "PipeLLM applies to non-modified LLM
//! applications" — is expressed here as a trait: FlexGen/vLLM/PEFT analogues
//! in `pipellm-serving` are generic over [`GpuRuntime`] and cannot tell
//! whether they run on plain CUDA ([`CcOffRuntime`]), native NVIDIA CC
//! ([`CcNativeRuntime`]), or the PipeLLM runtime (in the `pipellm` crate).

use crate::context::{ContextConfig, CudaContext, GpuError, IoStats, SessionCounters};
use crate::memory::{DevicePtr, HostAddr, HostRegion, Payload};
use crate::timing::IoTimingModel;
use crate::CcMode;
use pipellm_crypto::session::SessionId;
use pipellm_sim::time::SimTime;
use std::time::Duration;

/// The CUDA-level operations an LLM system performs.
///
/// `now` parameters carry the caller's simulated clock; completion times
/// flow back through [`GpuRuntime::synchronize`] and
/// [`GpuRuntime::launch_compute`], mirroring the asynchronous CUDA API.
pub trait GpuRuntime {
    /// Short label for reports ("w/o CC", "CC", "PipeLLM").
    fn label(&self) -> &str;

    /// Allocates a host chunk.
    fn alloc_host(&mut self, payload: Payload) -> HostRegion;

    /// Frees a host chunk.
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] if the address is unknown.
    fn free_host(&mut self, addr: HostAddr) -> Result<(), GpuError>;

    /// Allocates device memory.
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] when out of device memory.
    fn alloc_device(&mut self, len: u64) -> Result<DevicePtr, GpuError>;

    /// Frees device memory.
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] if the pointer is unknown.
    fn free_device(&mut self, ptr: DevicePtr) -> Result<(), GpuError>;

    /// Asynchronous host→device copy. Returns the time at which the API
    /// call hands control back to the calling CPU thread (with native CC
    /// that includes the on-thread encryption; see
    /// [`crate::context::MemcpyTiming`]). Completion is observed via
    /// [`GpuRuntime::synchronize`].
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] for unknown addresses or size mismatches.
    fn memcpy_htod(
        &mut self,
        now: SimTime,
        dst: DevicePtr,
        src: HostRegion,
    ) -> Result<SimTime, GpuError>;

    /// Asynchronous device→host copy. Returns the API-return time, as for
    /// [`GpuRuntime::memcpy_htod`].
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] for unknown addresses or size mismatches.
    fn memcpy_dtoh(
        &mut self,
        now: SimTime,
        dst: HostRegion,
        src: DevicePtr,
    ) -> Result<SimTime, GpuError>;

    /// Swaps a paged KV group out to host staging: one `(dst, src)` pair
    /// per block, in eviction order. Returns the API-return time.
    ///
    /// The default implementation issues one native device→host copy per
    /// block — with CC enabled each block is sealed at its own channel IV
    /// and decrypted on the critical path, the native-CC cost an
    /// interposing runtime removes by deferring the opens.
    ///
    /// # Errors
    ///
    /// As [`GpuRuntime::memcpy_dtoh`].
    fn kv_swap_out(
        &mut self,
        now: SimTime,
        blocks: &[(HostRegion, DevicePtr)],
    ) -> Result<SimTime, GpuError> {
        let mut cpu = now;
        for &(dst, src) in blocks {
            cpu = self.memcpy_dtoh(cpu, dst, src)?;
        }
        Ok(cpu)
    }

    /// Swaps a paged KV group back onto the device: one `(dst, src)` pair
    /// per block, in reload order. Returns the API-return time.
    ///
    /// The default implementation issues one host→device copy per block;
    /// an interposing runtime serves the blocks from pre-encrypted
    /// ciphertext instead.
    ///
    /// # Errors
    ///
    /// As [`GpuRuntime::memcpy_htod`].
    fn kv_swap_in(
        &mut self,
        now: SimTime,
        blocks: &[(DevicePtr, HostRegion)],
    ) -> Result<SimTime, GpuError> {
        let mut cpu = now;
        for &(dst, src) in blocks {
            cpu = self.memcpy_htod(cpu, dst, src)?;
        }
        Ok(cpu)
    }

    /// Waits for all outstanding copies; returns the completion time.
    fn synchronize(&mut self, now: SimTime) -> SimTime;

    /// Runs a kernel whose inputs are ready at `ready`; returns when it
    /// finishes.
    fn launch_compute(&mut self, ready: SimTime, duration: Duration) -> SimTime;

    /// Application write to a host chunk (page-protection aware). Returns
    /// the time at which the write may proceed — later than `now` when a
    /// fault must first resolve (e.g. a pending asynchronous decryption).
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] if the address is unknown.
    fn host_touch(&mut self, now: SimTime, addr: HostAddr) -> Result<SimTime, GpuError>;

    /// Application read of a host region (page-protection aware). Returns
    /// the time at which the data is readable, as for
    /// [`GpuRuntime::host_touch`].
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] if the address is unknown.
    fn host_read(&mut self, now: SimTime, region: HostRegion) -> Result<SimTime, GpuError>;

    /// Free device memory in bytes.
    fn device_free_bytes(&self) -> u64;

    /// Total device capacity in bytes.
    fn device_capacity(&self) -> u64;

    /// Aggregate I/O statistics.
    fn io_stats(&self) -> IoStats;

    /// Cumulative GPU idle time spent waiting on transfers.
    fn gpu_io_stall(&self) -> Duration;
}

impl<T: GpuRuntime + ?Sized> GpuRuntime for Box<T> {
    fn label(&self) -> &str {
        (**self).label()
    }
    fn alloc_host(&mut self, payload: Payload) -> HostRegion {
        (**self).alloc_host(payload)
    }
    fn free_host(&mut self, addr: HostAddr) -> Result<(), GpuError> {
        (**self).free_host(addr)
    }
    fn alloc_device(&mut self, len: u64) -> Result<DevicePtr, GpuError> {
        (**self).alloc_device(len)
    }
    fn free_device(&mut self, ptr: DevicePtr) -> Result<(), GpuError> {
        (**self).free_device(ptr)
    }
    fn memcpy_htod(
        &mut self,
        now: SimTime,
        dst: DevicePtr,
        src: HostRegion,
    ) -> Result<SimTime, GpuError> {
        (**self).memcpy_htod(now, dst, src)
    }
    fn memcpy_dtoh(
        &mut self,
        now: SimTime,
        dst: HostRegion,
        src: DevicePtr,
    ) -> Result<SimTime, GpuError> {
        (**self).memcpy_dtoh(now, dst, src)
    }
    fn kv_swap_out(
        &mut self,
        now: SimTime,
        blocks: &[(HostRegion, DevicePtr)],
    ) -> Result<SimTime, GpuError> {
        (**self).kv_swap_out(now, blocks)
    }
    fn kv_swap_in(
        &mut self,
        now: SimTime,
        blocks: &[(DevicePtr, HostRegion)],
    ) -> Result<SimTime, GpuError> {
        (**self).kv_swap_in(now, blocks)
    }
    fn synchronize(&mut self, now: SimTime) -> SimTime {
        (**self).synchronize(now)
    }
    fn launch_compute(&mut self, ready: SimTime, duration: Duration) -> SimTime {
        (**self).launch_compute(ready, duration)
    }
    fn host_touch(&mut self, now: SimTime, addr: HostAddr) -> Result<SimTime, GpuError> {
        (**self).host_touch(now, addr)
    }
    fn host_read(&mut self, now: SimTime, region: HostRegion) -> Result<SimTime, GpuError> {
        (**self).host_read(now, region)
    }
    fn device_free_bytes(&self) -> u64 {
        (**self).device_free_bytes()
    }
    fn device_capacity(&self) -> u64 {
        (**self).device_capacity()
    }
    fn io_stats(&self) -> IoStats {
        (**self).io_stats()
    }
    fn gpu_io_stall(&self) -> Duration {
        (**self).gpu_io_stall()
    }
}

/// A runtime that multiplexes independent tenant sessions over one set of
/// shared hardware resources (device memory, PCIe link, crypto workers).
///
/// Each session owns its channel keys and IV counters; the *active*
/// session is the one the session-unaware [`GpuRuntime`] surface operates
/// on, so unmodified serving engines become per-tenant by being handed a
/// [`SessionRuntime`] view instead of the runtime itself — transparency,
/// extended to multi-tenancy.
pub trait SessionedRuntime: GpuRuntime {
    /// Opens a new tenant session; the active session is unchanged.
    fn open_session(&mut self) -> SessionId;

    /// Routes all subsequent [`GpuRuntime`] calls to `session`.
    ///
    /// # Errors
    ///
    /// [`GpuError::UnknownSession`] if no such session is live.
    fn set_session(&mut self, session: SessionId) -> Result<(), GpuError>;

    /// The session [`GpuRuntime`] calls currently target.
    fn active_session(&self) -> SessionId;

    /// Live session ids in creation order.
    fn session_ids(&self) -> Vec<SessionId>;

    /// IV-counter snapshot of one session's channel, or `None` for an
    /// unknown session.
    fn session_counters(&self, session: SessionId) -> Option<SessionCounters>;

    /// A [`GpuRuntime`] view pinned to `session`: every call switches the
    /// active session first, so interleaved views stay isolated.
    ///
    /// # Errors
    ///
    /// [`GpuError::UnknownSession`] if no such session is live.
    fn session(&mut self, session: SessionId) -> Result<SessionRuntime<'_, Self>, GpuError>
    where
        Self: Sized,
    {
        self.set_session(session)?;
        Ok(SessionRuntime { rt: self, session })
    }
}

impl<T: SessionedRuntime + ?Sized> SessionedRuntime for Box<T> {
    fn open_session(&mut self) -> SessionId {
        (**self).open_session()
    }
    fn set_session(&mut self, session: SessionId) -> Result<(), GpuError> {
        (**self).set_session(session)
    }
    fn active_session(&self) -> SessionId {
        (**self).active_session()
    }
    fn session_ids(&self) -> Vec<SessionId> {
        (**self).session_ids()
    }
    fn session_counters(&self, session: SessionId) -> Option<SessionCounters> {
        (**self).session_counters(session)
    }
}

/// A borrowed [`GpuRuntime`] view pinned to one session of a
/// [`SessionedRuntime`] — the handle a per-tenant driver hands to an
/// unmodified, session-unaware serving engine.
#[derive(Debug)]
pub struct SessionRuntime<'a, R: SessionedRuntime> {
    rt: &'a mut R,
    session: SessionId,
}

impl<R: SessionedRuntime> SessionRuntime<'_, R> {
    /// The session this view is pinned to.
    pub fn session_id(&self) -> SessionId {
        self.session
    }

    fn pinned(&mut self) -> &mut R {
        self.rt
            .set_session(self.session)
            .expect("pinned session stays live while the view exists");
        self.rt
    }
}

impl<R: SessionedRuntime> GpuRuntime for SessionRuntime<'_, R> {
    fn label(&self) -> &str {
        self.rt.label()
    }
    fn alloc_host(&mut self, payload: Payload) -> HostRegion {
        self.pinned().alloc_host(payload)
    }
    fn free_host(&mut self, addr: HostAddr) -> Result<(), GpuError> {
        self.pinned().free_host(addr)
    }
    fn alloc_device(&mut self, len: u64) -> Result<DevicePtr, GpuError> {
        self.pinned().alloc_device(len)
    }
    fn free_device(&mut self, ptr: DevicePtr) -> Result<(), GpuError> {
        self.pinned().free_device(ptr)
    }
    fn memcpy_htod(
        &mut self,
        now: SimTime,
        dst: DevicePtr,
        src: HostRegion,
    ) -> Result<SimTime, GpuError> {
        self.pinned().memcpy_htod(now, dst, src)
    }
    fn memcpy_dtoh(
        &mut self,
        now: SimTime,
        dst: HostRegion,
        src: DevicePtr,
    ) -> Result<SimTime, GpuError> {
        self.pinned().memcpy_dtoh(now, dst, src)
    }
    fn kv_swap_out(
        &mut self,
        now: SimTime,
        blocks: &[(HostRegion, DevicePtr)],
    ) -> Result<SimTime, GpuError> {
        self.pinned().kv_swap_out(now, blocks)
    }
    fn kv_swap_in(
        &mut self,
        now: SimTime,
        blocks: &[(DevicePtr, HostRegion)],
    ) -> Result<SimTime, GpuError> {
        self.pinned().kv_swap_in(now, blocks)
    }
    fn synchronize(&mut self, now: SimTime) -> SimTime {
        self.pinned().synchronize(now)
    }
    fn launch_compute(&mut self, ready: SimTime, duration: Duration) -> SimTime {
        self.pinned().launch_compute(ready, duration)
    }
    fn host_touch(&mut self, now: SimTime, addr: HostAddr) -> Result<SimTime, GpuError> {
        self.pinned().host_touch(now, addr)
    }
    fn host_read(&mut self, now: SimTime, region: HostRegion) -> Result<SimTime, GpuError> {
        self.pinned().host_read(now, region)
    }
    fn device_free_bytes(&self) -> u64 {
        self.rt.device_free_bytes()
    }
    fn device_capacity(&self) -> u64 {
        self.rt.device_capacity()
    }
    fn io_stats(&self) -> IoStats {
        self.rt.io_stats()
    }
    fn gpu_io_stall(&self) -> Duration {
        self.rt.gpu_io_stall()
    }
}

macro_rules! passthrough_runtime {
    ($name:ident, $label:expr, $mode:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug)]
        pub struct $name {
            ctx: CudaContext,
        }

        impl $name {
            /// Creates the runtime with the given timing model, device
            /// capacity, and crypto thread count.
            pub fn new(timing: IoTimingModel, device_capacity: u64, crypto_threads: usize) -> Self {
                $name {
                    ctx: CudaContext::new(ContextConfig {
                        cc: $mode,
                        timing,
                        device_capacity,
                        crypto_threads,
                        ..ContextConfig::default()
                    }),
                }
            }

            /// Creates the runtime with default calibration and capacity.
            pub fn with_defaults() -> Self {
                Self::new(IoTimingModel::default(), 80 * 1_000_000_000, 1)
            }

            /// The underlying context (for assertions in tests).
            pub fn context(&self) -> &CudaContext {
                &self.ctx
            }

            /// Mutable access to the underlying context.
            pub fn context_mut(&mut self) -> &mut CudaContext {
                &mut self.ctx
            }
        }

        impl GpuRuntime for $name {
            fn label(&self) -> &str {
                $label
            }

            fn alloc_host(&mut self, payload: Payload) -> HostRegion {
                self.ctx.host_mut().alloc(payload)
            }

            fn free_host(&mut self, addr: HostAddr) -> Result<(), GpuError> {
                Ok(self.ctx.host_mut().free(addr)?)
            }

            fn alloc_device(&mut self, len: u64) -> Result<DevicePtr, GpuError> {
                self.ctx.alloc_device(len)
            }

            fn free_device(&mut self, ptr: DevicePtr) -> Result<(), GpuError> {
                self.ctx.free_device(ptr)
            }

            fn memcpy_htod(
                &mut self,
                now: SimTime,
                dst: DevicePtr,
                src: HostRegion,
            ) -> Result<SimTime, GpuError> {
                self.ctx
                    .memcpy_htod_async(now, dst, src)
                    .map(|t| t.api_return)
            }

            fn memcpy_dtoh(
                &mut self,
                now: SimTime,
                dst: HostRegion,
                src: DevicePtr,
            ) -> Result<SimTime, GpuError> {
                self.ctx
                    .memcpy_dtoh_async(now, dst, src)
                    .map(|t| t.api_return)
            }

            fn synchronize(&mut self, now: SimTime) -> SimTime {
                self.ctx.synchronize(now)
            }

            fn launch_compute(&mut self, ready: SimTime, duration: Duration) -> SimTime {
                self.ctx.launch_compute(ready, duration).end
            }

            fn host_touch(&mut self, now: SimTime, addr: HostAddr) -> Result<SimTime, GpuError> {
                self.ctx.host_touch(addr)?;
                Ok(now)
            }

            fn host_read(&mut self, now: SimTime, region: HostRegion) -> Result<SimTime, GpuError> {
                self.ctx.host_read(region)?;
                Ok(now)
            }

            fn device_free_bytes(&self) -> u64 {
                self.ctx.device_memory().free_bytes()
            }

            fn device_capacity(&self) -> u64 {
                self.ctx.device_memory().capacity()
            }

            fn io_stats(&self) -> IoStats {
                self.ctx.stats()
            }

            fn gpu_io_stall(&self) -> Duration {
                self.ctx.gpu_engine().io_stall_time()
            }
        }

        impl SessionedRuntime for $name {
            fn open_session(&mut self) -> SessionId {
                self.ctx.open_session()
            }

            fn set_session(&mut self, session: SessionId) -> Result<(), GpuError> {
                self.ctx.set_session(session)
            }

            fn active_session(&self) -> SessionId {
                self.ctx.active_session()
            }

            fn session_ids(&self) -> Vec<SessionId> {
                self.ctx.session_ids()
            }

            fn session_counters(&self, session: SessionId) -> Option<SessionCounters> {
                self.ctx.session_counters(session)
            }
        }
    };
}

passthrough_runtime!(
    CcOffRuntime,
    "w/o CC",
    CcMode::Off,
    "Baseline runtime with confidential computing disabled: plaintext \
     transfers at full PCIe bandwidth (the paper's \"w/o CC\")."
);

passthrough_runtime!(
    CcNativeRuntime,
    "CC",
    CcMode::On,
    "Native NVIDIA CC runtime: on-the-fly encryption and decryption inside \
     every memcpy, on the critical path (the paper's \"CC\" baseline)."
);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<R: GpuRuntime>(rt: &mut R) -> SimTime {
        let src = rt.alloc_host(Payload::Real(vec![3u8; 1024]));
        let dst = rt.alloc_device(1024).unwrap();
        rt.memcpy_htod(SimTime::ZERO, dst, src).unwrap();
        let t = rt.synchronize(SimTime::ZERO);
        let back = rt.alloc_host(Payload::Real(vec![0u8; 1024]));
        rt.memcpy_dtoh(t, back, dst).unwrap();
        rt.synchronize(t)
    }

    #[test]
    fn both_baselines_serve_the_same_program() {
        let mut off = CcOffRuntime::with_defaults();
        let mut native = CcNativeRuntime::with_defaults();
        let t_off = roundtrip(&mut off);
        let t_native = roundtrip(&mut native);
        assert_eq!(off.label(), "w/o CC");
        assert_eq!(native.label(), "CC");
        assert!(t_native > t_off, "CC must cost more: {t_native} vs {t_off}");
    }

    #[test]
    fn stats_flow_through_the_trait() {
        let mut rt = CcNativeRuntime::with_defaults();
        roundtrip(&mut rt);
        let stats = rt.io_stats();
        assert_eq!(stats.h2d_ops, 1);
        assert_eq!(stats.d2h_ops, 1);
        assert_eq!(stats.h2d_bytes, 1024);
    }

    #[test]
    fn device_capacity_accessors() {
        let mut rt = CcOffRuntime::new(IoTimingModel::default(), 10_000, 1);
        assert_eq!(rt.device_capacity(), 10_000);
        let _ = rt.alloc_device(4_000).unwrap();
        assert_eq!(rt.device_free_bytes(), 6_000);
    }

    #[test]
    fn sessions_have_independent_iv_streams() {
        let mut rt = CcNativeRuntime::with_defaults();
        let a = rt.active_session();
        let b = rt.open_session();
        assert_ne!(a, b);
        // Two transfers on session A, one on session B.
        roundtrip(&mut rt);
        rt.set_session(b).unwrap();
        let src = rt.alloc_host(Payload::Real(vec![1u8; 64]));
        let dst = rt.alloc_device(64).unwrap();
        rt.memcpy_htod(SimTime::ZERO, dst, src).unwrap();
        let ca = rt.session_counters(a).unwrap();
        let cb = rt.session_counters(b).unwrap();
        assert_eq!((ca.h2d_tx, ca.d2h_tx), (2, 2), "{ca:?}");
        assert_eq!((cb.h2d_tx, cb.d2h_tx), (2, 1), "{cb:?}");
        assert!(ca.in_lockstep() && cb.in_lockstep());
    }

    #[test]
    fn session_view_pins_every_call() {
        let mut rt = CcNativeRuntime::with_defaults();
        let a = rt.active_session();
        let b = rt.open_session();
        {
            let mut view = rt.session(b).unwrap();
            assert_eq!(view.session_id(), b);
            roundtrip(&mut view);
        }
        assert_eq!(rt.session_counters(a).unwrap().h2d_tx, 1);
        assert_eq!(rt.session_counters(b).unwrap().h2d_tx, 2);
        // I/O stats are shared infrastructure, not per session.
        assert_eq!(rt.io_stats().h2d_ops, 1);
    }

    #[test]
    fn unknown_session_is_rejected() {
        let mut rt = CcOffRuntime::with_defaults();
        let bogus = SessionId(99);
        assert!(matches!(
            rt.set_session(bogus),
            Err(GpuError::UnknownSession { session }) if session == bogus
        ));
        assert!(rt.session_counters(bogus).is_none());
        assert_eq!(rt.session_ids().len(), 1);
    }

    #[test]
    fn compute_launch_returns_end_time() {
        let mut rt = CcOffRuntime::with_defaults();
        let end = rt.launch_compute(SimTime::from_micros(5), Duration::from_micros(10));
        assert_eq!(end, SimTime::from_micros(15));
    }
}
