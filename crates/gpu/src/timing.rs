//! I/O timing model calibrated against the paper's Figure 2.
//!
//! Figure 2 measures host→device memcpy on the authors' H100 testbed:
//!
//! | I/O size | 32 B | 128 KiB | 1 MiB | 32 MiB |
//! |---|---|---|---|---|
//! | latency, CC off | 1.43 µs | 1.17 µs | 1.19 µs | 1.43 µs |
//! | latency, CC on | 14.93 µs | 22.8 µs | 162.5 µs | 5252 µs |
//! | throughput, CC off | – | 27.2 | 48.2 | 55.3 GB/s |
//! | throughput, CC on | – | 3.32 | 5.82 | 5.83 GB/s |
//!
//! The calibration reads off three facts the reproduction bakes in:
//! 1. CC-off PCIe sustains ≈ 55 GB/s with ~1.2 µs per-op latency.
//! 2. CC-on throughput plateaus at ≈ 5.8 GB/s — the single CPU thread's
//!    AES-GCM rate; latency grows ∝ size because encryption is inside the
//!    API call.
//! 3. CC-on has ≈ 13.5 µs of fixed control-plane overhead per operation
//!    (IV bookkeeping, bounce-buffer staging, doorbells).
//!
//! Additionally §7.2 reports that even with encryption fully hidden, CC-mode
//! staging through CVM shared memory caps effective copy bandwidth at
//! ≈ 40 GB/s — the residual overhead PipeLLM cannot remove.

use pipellm_crypto::cost::CpuCryptoModel;
use std::time::Duration;

/// Calibrated I/O parameters for the simulated platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoTimingModel {
    /// PCIe bandwidth with CC disabled, GB/s.
    pub pcie_off_gbps: f64,
    /// Effective copy bandwidth in CC mode (bounce-buffer staging), GB/s.
    pub pcie_cc_gbps: f64,
    /// Per-operation PCIe latency (both modes).
    pub pcie_latency: Duration,
    /// Fixed CC control-plane overhead per transfer.
    pub cc_control: Duration,
    /// CPU AES-GCM cost model (per worker thread).
    pub crypto: CpuCryptoModel,
}

impl Default for IoTimingModel {
    fn default() -> Self {
        IoTimingModel {
            pcie_off_gbps: 55.0,
            pcie_cc_gbps: 40.0,
            pcie_latency: Duration::from_nanos(1_200),
            cc_control: Duration::from_nanos(13_500),
            crypto: CpuCryptoModel::default(),
        }
    }
}

impl IoTimingModel {
    /// Link bandwidth in GB/s for the given CC mode.
    pub fn link_gbps(&self, cc_enabled: bool) -> f64 {
        if cc_enabled {
            self.pcie_cc_gbps
        } else {
            self.pcie_off_gbps
        }
    }

    /// End-to-end latency of one *synchronous* CC transfer of `bytes`
    /// (native NVIDIA CC: encrypt, then copy, inside the API call).
    pub fn cc_sync_latency(&self, bytes: u64) -> Duration {
        self.cc_control
            + self.crypto.seal_time(bytes)
            + self.pcie_latency
            + Duration::from_secs_f64(bytes as f64 / (self.pcie_cc_gbps * 1024.0 * 1024.0 * 1024.0))
    }

    /// End-to-end latency of one CC-off transfer of `bytes`.
    pub fn cc_off_latency(&self, bytes: u64) -> Duration {
        self.pcie_latency
            + Duration::from_secs_f64(
                bytes as f64 / (self.pcie_off_gbps * 1024.0 * 1024.0 * 1024.0),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * 1024;

    #[test]
    fn figure2_cc_off_latency_is_flat() {
        let m = IoTimingModel::default();
        // CC-off API latency is ~1.2-1.6 µs regardless of size up to 32 MiB
        // (the API returns after enqueue; Figure 2 rows are nearly constant).
        let small = m.cc_off_latency(32);
        assert!(small < Duration::from_micros(2), "{small:?}");
    }

    #[test]
    fn figure2_cc_on_latency_scales_with_size() {
        let m = IoTimingModel::default();
        let at_32b = m.cc_sync_latency(32);
        let at_128k = m.cc_sync_latency(128 * KIB);
        let at_1m = m.cc_sync_latency(MIB);
        let at_32m = m.cc_sync_latency(32 * MIB);
        // Shape: ~15 µs, tens of µs, ~200 µs, ~5-6 ms (paper: 14.9 / 22.8 /
        // 162.5 / 5252 µs).
        assert!((Duration::from_micros(10)..Duration::from_micros(25)).contains(&at_32b));
        assert!((Duration::from_micros(18)..Duration::from_micros(60)).contains(&at_128k));
        assert!((Duration::from_micros(120)..Duration::from_micros(260)).contains(&at_1m));
        assert!((Duration::from_millis(4)..Duration::from_millis(8)).contains(&at_32m));
    }

    #[test]
    fn figure2_order_of_magnitude_gap() {
        // "the throughput of a CC-enabled GPU is approximately an order of
        // magnitude lower than that of CC-disabled".
        let m = IoTimingModel::default();
        let bytes = 32 * MIB;
        let off = bytes as f64 / m.cc_off_latency(bytes).as_secs_f64();
        let on = bytes as f64 / m.cc_sync_latency(bytes).as_secs_f64();
        let ratio = off / on;
        assert!((6.0..14.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn cc_staging_cap_below_pcie() {
        let m = IoTimingModel::default();
        assert!(m.link_gbps(true) < m.link_gbps(false));
        assert_eq!(m.link_gbps(true), 40.0);
    }
}
