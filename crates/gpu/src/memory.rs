//! Host (CVM) and device memory with real or virtual payloads.
//!
//! Swapped chunks in the real system are tensors of up to hundreds of
//! megabytes. The functional layer of this reproduction moves real bytes so
//! AES-GCM semantics are genuine, but the timing experiments must be able to
//! "transfer" OPT-175B without allocating 350 GB. [`Payload`] makes the
//! distinction explicit: a `Real` payload carries bytes, a `Virtual` payload
//! carries a length and a content *version* so staleness (the thing the
//! PipeLLM validator detects) still exists.

use std::collections::BTreeMap;
use std::fmt;

/// Address of a host (CVM private memory) allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostAddr(pub u64);

impl fmt::Display for HostAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A contiguous host region `[addr, addr + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostRegion {
    /// Start address.
    pub addr: HostAddr,
    /// Length in bytes.
    pub len: u64,
}

impl HostRegion {
    /// Whether this region overlaps `other`. Regions whose end would pass
    /// `u64::MAX` are treated as ending there (saturating), so ranges near
    /// the top of the address space — e.g. sentinel cookies — never
    /// overflow the comparison.
    pub fn overlaps(&self, other: &HostRegion) -> bool {
        self.addr.0 < other.addr.0.saturating_add(other.len)
            && other.addr.0 < self.addr.0.saturating_add(self.len)
    }
}

/// Handle to a device (GPU enclave) memory allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DevicePtr(pub u64);

impl fmt::Display for DevicePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu:0x{:x}", self.0)
    }
}

/// The contents of an allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Real bytes (functional tests).
    Real(Vec<u8>),
    /// A length-only stand-in with a content version (timing experiments).
    Virtual {
        /// Logical length in bytes.
        len: u64,
        /// Content version; bumped on every logical write.
        version: u64,
    },
}

impl Payload {
    /// Wire-format kind byte of a [`Payload::Real`] payload.
    pub const KIND_REAL: u8 = 0;
    /// Wire-format kind byte of a [`Payload::Virtual`] payload.
    pub const KIND_VIRTUAL: u8 = 1;

    /// Creates a virtual payload of `len` bytes at version 0.
    pub fn virtual_of(len: u64) -> Self {
        Payload::Virtual { len, version: 0 }
    }

    /// Serializes the payload's sealable plaintext into `out` (cleared
    /// first, capacity reused) and returns the kind byte for the transfer
    /// descriptor: real bytes verbatim, virtual payloads as a 16-byte
    /// `(len, version)` stand-in so the ciphertext stays small while IV
    /// semantics remain genuine. The zero-copy counterpart of
    /// [`Payload::from_plaintext`].
    pub fn write_plaintext(&self, out: &mut Vec<u8>) -> u8 {
        out.clear();
        match self {
            Payload::Real(bytes) => {
                out.extend_from_slice(bytes);
                Payload::KIND_REAL
            }
            Payload::Virtual { len, version } => {
                out.extend_from_slice(&len.to_be_bytes());
                out.extend_from_slice(&version.to_be_bytes());
                Payload::KIND_VIRTUAL
            }
        }
    }

    /// Rebuilds a payload from decrypted plaintext, taking ownership of
    /// the buffer (real payloads keep it as their storage — no copy).
    /// Inverse of [`Payload::write_plaintext`].
    pub fn from_plaintext(kind: u8, bytes: Vec<u8>) -> Payload {
        if kind == Payload::KIND_VIRTUAL && bytes.len() == 16 {
            let len = u64::from_be_bytes(bytes[..8].try_into().expect("checked length"));
            let version = u64::from_be_bytes(bytes[8..].try_into().expect("checked length"));
            Payload::Virtual { len, version }
        } else {
            Payload::Real(bytes)
        }
    }

    /// Logical length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Real(bytes) => bytes.len() as u64,
            Payload::Virtual { len, .. } => *len,
        }
    }

    /// Whether the payload is zero-length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact byte length [`Payload::write_plaintext`] will produce — what a
    /// staging buffer should reserve (plus the tag) to seal without
    /// reallocating.
    pub fn plaintext_len(&self) -> usize {
        match self {
            Payload::Real(bytes) => bytes.len(),
            Payload::Virtual { .. } => 16,
        }
    }

    /// A compact fingerprint of the contents, used as the plaintext
    /// stand-in when sealing virtual payloads (see `context`).
    pub fn fingerprint(&self) -> u64 {
        match self {
            Payload::Real(bytes) => {
                // FNV-1a: cheap, deterministic, good enough for labels.
                let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
                for &b in bytes {
                    hash ^= u64::from(b);
                    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
                }
                hash
            }
            Payload::Virtual { len, version } => {
                len.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ version.rotate_left(32)
            }
        }
    }
}

/// One host allocation.
#[derive(Debug, Clone)]
pub struct HostAlloc {
    region: HostRegion,
    payload: Payload,
    writes: u64,
}

impl HostAlloc {
    /// The allocation's region.
    pub fn region(&self) -> HostRegion {
        self.region
    }

    /// Current payload.
    pub fn payload(&self) -> &Payload {
        &self.payload
    }

    /// Number of writes this allocation has seen.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

/// Errors from memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemoryError {
    /// No allocation at this address.
    UnknownHostAddr(HostAddr),
    /// No allocation behind this device pointer.
    UnknownDevicePtr(DevicePtr),
    /// Device memory exhausted.
    DeviceOutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free.
        free: u64,
    },
    /// A write/copy did not match the allocation's length.
    LengthMismatch {
        /// Allocation length.
        expected: u64,
        /// Supplied length.
        got: u64,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::UnknownHostAddr(addr) => write!(f, "unknown host address {addr}"),
            MemoryError::UnknownDevicePtr(ptr) => write!(f, "unknown device pointer {ptr}"),
            MemoryError::DeviceOutOfMemory { requested, free } => {
                write!(
                    f,
                    "device out of memory: requested {requested} bytes, {free} free"
                )
            }
            MemoryError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "length mismatch: allocation is {expected} bytes, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for MemoryError {}

/// The CVM's private host memory: an allocation-granular address space.
///
/// Serving systems swap whole tensors/blocks, so the model allocates and
/// addresses whole chunks; sub-range addressing is not needed.
#[derive(Debug, Default)]
pub struct HostMemory {
    allocs: BTreeMap<u64, HostAlloc>,
    next_addr: u64,
}

impl HostMemory {
    /// Creates an empty host memory.
    pub fn new() -> Self {
        HostMemory {
            allocs: BTreeMap::new(),
            next_addr: 0x1000,
        }
    }

    /// Allocates a chunk holding real bytes; returns its region.
    pub fn alloc_real(&mut self, bytes: Vec<u8>) -> HostRegion {
        self.alloc(Payload::Real(bytes))
    }

    /// Allocates a virtual chunk of `len` bytes; returns its region.
    pub fn alloc_virtual(&mut self, len: u64) -> HostRegion {
        self.alloc(Payload::virtual_of(len))
    }

    /// Allocates an arbitrary payload; returns its region.
    pub fn alloc(&mut self, payload: Payload) -> HostRegion {
        let len = payload.len();
        let addr = HostAddr(self.next_addr);
        // Page-align the next allocation so protected ranges never share
        // pages, mirroring how a real runtime would lay out swap buffers.
        self.next_addr += len.max(1).next_multiple_of(4096);
        let region = HostRegion { addr, len };
        self.allocs.insert(
            addr.0,
            HostAlloc {
                region,
                payload,
                writes: 0,
            },
        );
        region
    }

    /// Frees the allocation at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::UnknownHostAddr`] if nothing is allocated there.
    pub fn free(&mut self, addr: HostAddr) -> Result<(), MemoryError> {
        self.allocs
            .remove(&addr.0)
            .map(|_| ())
            .ok_or(MemoryError::UnknownHostAddr(addr))
    }

    /// Looks up the allocation at `addr`.
    pub fn get(&self, addr: HostAddr) -> Result<&HostAlloc, MemoryError> {
        self.allocs
            .get(&addr.0)
            .ok_or(MemoryError::UnknownHostAddr(addr))
    }

    /// Overwrites the allocation's payload (same length), bumping versions.
    ///
    /// # Errors
    ///
    /// - [`MemoryError::UnknownHostAddr`] if nothing is allocated at `addr`.
    /// - [`MemoryError::LengthMismatch`] if the new payload's length differs.
    pub fn write(&mut self, addr: HostAddr, payload: Payload) -> Result<(), MemoryError> {
        let alloc = self
            .allocs
            .get_mut(&addr.0)
            .ok_or(MemoryError::UnknownHostAddr(addr))?;
        if payload.len() != alloc.region.len {
            return Err(MemoryError::LengthMismatch {
                expected: alloc.region.len,
                got: payload.len(),
            });
        }
        alloc.payload = payload;
        alloc.writes += 1;
        Ok(())
    }

    /// Logically mutates a chunk in place (bumps the version of a virtual
    /// payload; XOR-scrambles a real one) — the "application updates the
    /// data" event the PipeLLM validator must catch.
    ///
    /// # Errors
    ///
    /// [`MemoryError::UnknownHostAddr`] if nothing is allocated at `addr`.
    pub fn touch(&mut self, addr: HostAddr) -> Result<(), MemoryError> {
        let alloc = self
            .allocs
            .get_mut(&addr.0)
            .ok_or(MemoryError::UnknownHostAddr(addr))?;
        match &mut alloc.payload {
            Payload::Real(bytes) => {
                if let Some(first) = bytes.first_mut() {
                    *first ^= 0xff;
                }
            }
            Payload::Virtual { version, .. } => *version += 1,
        }
        alloc.writes += 1;
        Ok(())
    }

    /// Number of live allocations.
    pub fn len(&self) -> usize {
        self.allocs.len()
    }

    /// Whether no allocations exist.
    pub fn is_empty(&self) -> bool {
        self.allocs.is_empty()
    }

    /// Iterates over live allocations in address order.
    pub fn iter(&self) -> impl Iterator<Item = &HostAlloc> {
        self.allocs.values()
    }
}

/// Device (GPU enclave) memory: a capacity-limited handle store.
#[derive(Debug)]
pub struct DeviceMemory {
    buffers: BTreeMap<u64, Payload>,
    capacity: u64,
    used: u64,
    next_ptr: u64,
}

impl DeviceMemory {
    /// Creates a device memory of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        DeviceMemory {
            buffers: BTreeMap::new(),
            capacity,
            used: 0,
            next_ptr: 0x10,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// Allocates `len` bytes of uninitialized device memory.
    ///
    /// # Errors
    ///
    /// [`MemoryError::DeviceOutOfMemory`] when `len` exceeds free capacity.
    pub fn alloc(&mut self, len: u64) -> Result<DevicePtr, MemoryError> {
        if len > self.free_bytes() {
            return Err(MemoryError::DeviceOutOfMemory {
                requested: len,
                free: self.free_bytes(),
            });
        }
        let ptr = DevicePtr(self.next_ptr);
        self.next_ptr += 1;
        self.used += len;
        self.buffers.insert(ptr.0, Payload::virtual_of(len));
        Ok(ptr)
    }

    /// Frees the allocation behind `ptr`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::UnknownDevicePtr`] if `ptr` is not live.
    pub fn dealloc(&mut self, ptr: DevicePtr) -> Result<(), MemoryError> {
        let payload = self
            .buffers
            .remove(&ptr.0)
            .ok_or(MemoryError::UnknownDevicePtr(ptr))?;
        self.used -= payload.len();
        Ok(())
    }

    /// Reads the payload behind `ptr`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::UnknownDevicePtr`] if `ptr` is not live.
    pub fn get(&self, ptr: DevicePtr) -> Result<&Payload, MemoryError> {
        self.buffers
            .get(&ptr.0)
            .ok_or(MemoryError::UnknownDevicePtr(ptr))
    }

    /// Mutable access to the payload behind `ptr` — in-place device-side
    /// compute without cloning the buffer. Callers must not change the
    /// payload's length.
    ///
    /// # Errors
    ///
    /// [`MemoryError::UnknownDevicePtr`] if `ptr` is not live.
    pub fn get_mut(&mut self, ptr: DevicePtr) -> Result<&mut Payload, MemoryError> {
        self.buffers
            .get_mut(&ptr.0)
            .ok_or(MemoryError::UnknownDevicePtr(ptr))
    }

    /// Stores `payload` into the allocation behind `ptr`.
    ///
    /// # Errors
    ///
    /// - [`MemoryError::UnknownDevicePtr`] if `ptr` is not live.
    /// - [`MemoryError::LengthMismatch`] if the payload length differs from
    ///   the allocation length.
    pub fn store(&mut self, ptr: DevicePtr, payload: Payload) -> Result<(), MemoryError> {
        let slot = self
            .buffers
            .get_mut(&ptr.0)
            .ok_or(MemoryError::UnknownDevicePtr(ptr))?;
        if payload.len() != slot.len() {
            return Err(MemoryError::LengthMismatch {
                expected: slot.len(),
                got: payload.len(),
            });
        }
        *slot = payload;
        Ok(())
    }

    /// Number of live allocations.
    pub fn allocations(&self) -> usize {
        self.buffers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_alloc_read_write_roundtrip() {
        let mut mem = HostMemory::new();
        let region = mem.alloc_real(vec![1, 2, 3, 4]);
        assert_eq!(region.len, 4);
        assert_eq!(
            mem.get(region.addr).unwrap().payload(),
            &Payload::Real(vec![1, 2, 3, 4])
        );
        mem.write(region.addr, Payload::Real(vec![9, 9, 9, 9]))
            .unwrap();
        assert_eq!(mem.get(region.addr).unwrap().writes(), 1);
        mem.free(region.addr).unwrap();
        assert!(mem.get(region.addr).is_err());
    }

    #[test]
    fn host_allocations_never_overlap() {
        let mut mem = HostMemory::new();
        let regions: Vec<HostRegion> = (1..50u64).map(|i| mem.alloc_virtual(i * 1000)).collect();
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                assert!(!a.overlaps(b), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn write_length_must_match() {
        let mut mem = HostMemory::new();
        let region = mem.alloc_virtual(100);
        let err = mem.write(region.addr, Payload::virtual_of(99)).unwrap_err();
        assert_eq!(
            err,
            MemoryError::LengthMismatch {
                expected: 100,
                got: 99
            }
        );
    }

    #[test]
    fn touch_changes_fingerprint() {
        let mut mem = HostMemory::new();
        let real = mem.alloc_real(vec![5u8; 64]);
        let virt = mem.alloc_virtual(1 << 20);
        let fp_real = mem.get(real.addr).unwrap().payload().fingerprint();
        let fp_virt = mem.get(virt.addr).unwrap().payload().fingerprint();
        mem.touch(real.addr).unwrap();
        mem.touch(virt.addr).unwrap();
        assert_ne!(mem.get(real.addr).unwrap().payload().fingerprint(), fp_real);
        assert_ne!(mem.get(virt.addr).unwrap().payload().fingerprint(), fp_virt);
    }

    #[test]
    fn device_capacity_is_enforced() {
        let mut dev = DeviceMemory::new(1000);
        let a = dev.alloc(600).unwrap();
        assert_eq!(dev.free_bytes(), 400);
        let err = dev.alloc(500).unwrap_err();
        assert!(matches!(
            err,
            MemoryError::DeviceOutOfMemory {
                requested: 500,
                free: 400
            }
        ));
        dev.dealloc(a).unwrap();
        assert_eq!(dev.free_bytes(), 1000);
        assert!(dev.alloc(1000).is_ok());
    }

    #[test]
    fn device_store_and_get() {
        let mut dev = DeviceMemory::new(1 << 20);
        let ptr = dev.alloc(4).unwrap();
        dev.store(ptr, Payload::Real(vec![7, 7, 7, 7])).unwrap();
        assert_eq!(dev.get(ptr).unwrap(), &Payload::Real(vec![7, 7, 7, 7]));
        let err = dev.store(ptr, Payload::Real(vec![1])).unwrap_err();
        assert!(matches!(
            err,
            MemoryError::LengthMismatch {
                expected: 4,
                got: 1
            }
        ));
    }

    #[test]
    fn dangling_device_ptr_is_an_error() {
        let mut dev = DeviceMemory::new(100);
        let ptr = dev.alloc(10).unwrap();
        dev.dealloc(ptr).unwrap();
        assert!(dev.dealloc(ptr).is_err());
        assert!(dev.get(ptr).is_err());
    }

    #[test]
    fn plaintext_roundtrips_and_reuses_buffers() {
        let real = Payload::Real(vec![9u8; 32]);
        let virt = Payload::Virtual {
            len: 1 << 30,
            version: 3,
        };
        let mut buf = Vec::with_capacity(64);
        let ptr = buf.as_ptr();
        let kind = real.write_plaintext(&mut buf);
        assert_eq!(kind, Payload::KIND_REAL);
        assert_eq!(buf.as_ptr(), ptr, "staging capacity must be reused");
        assert_eq!(Payload::from_plaintext(kind, buf.clone()), real);
        let kind = virt.write_plaintext(&mut buf);
        assert_eq!(kind, Payload::KIND_VIRTUAL);
        assert_eq!(buf.len(), virt.plaintext_len());
        assert_eq!(buf.as_ptr(), ptr, "virtual stand-in fits the same buffer");
        assert_eq!(Payload::from_plaintext(kind, buf.clone()), virt);
        // A real payload adopts the decrypted buffer without copying.
        let plain = vec![1u8; 16];
        let plain_ptr = plain.as_ptr();
        let Payload::Real(bytes) = Payload::from_plaintext(Payload::KIND_REAL, plain) else {
            panic!("real payload expected");
        };
        assert_eq!(bytes.as_ptr(), plain_ptr);
    }

    #[test]
    fn payload_lengths_and_fingerprints() {
        assert_eq!(Payload::Real(vec![0; 10]).len(), 10);
        assert_eq!(Payload::virtual_of(99).len(), 99);
        assert!(Payload::virtual_of(0).is_empty());
        // Distinct virtual versions produce distinct fingerprints.
        let v0 = Payload::Virtual { len: 8, version: 0 };
        let v1 = Payload::Virtual { len: 8, version: 1 };
        assert_ne!(v0.fingerprint(), v1.fingerprint());
    }
}
