//! The multi-GPU cluster: N per-device contexts joined by NVLink-style
//! links, every edge carrying its own per-session secure channels.
//!
//! Pipeline-parallel serving shards a model's layers across stages, one
//! GPU per stage, and every inter-stage activation hop crosses a
//! device-to-device link. In confidential-computing mode each of those
//! hops is an *independent* encrypted channel: the two GPU enclaves at the
//! ends of a link run their own key exchange, so every edge owns its own
//! key space, its own pair of incrementing-IV counters per direction, and
//! its own rekey/exhaustion lifecycle — exactly the discipline the
//! host↔device channel already follows, replicated per edge.
//!
//! [`ClusterContext`] builds that topology:
//!
//! - one [`CudaContext`] per device (own PCIe link, device memory, crypto
//!   pool, GPU engine, and host-channel sessions);
//! - one [`pipellm_crypto::session::SessionManager`] per edge, its root
//!   secret derived from the cluster seed and the edge identity, so two
//!   edges never share keys even for the same tenant session;
//! - an [`EdgeTimeline`] per edge modelling NVLink bandwidth plus the
//!   per-link crypto serialization the cluster report surfaces.
//!
//! The transfer surface mirrors the single-GPU context: a *native* path
//! ([`ClusterContext::memcpy_dtod_async`]) where sealing blocks the
//! issuing stage thread (native NVIDIA CC semantics), and an
//! *interposition* path ([`ClusterContext::seal_edge_region`],
//! [`ClusterContext::submit_dtod_sealed`], [`ClusterContext::send_edge_nop`])
//! that lets PipeLLM's speculative pipeline pre-encrypt activations at
//! future IVs and hide the crypto on GPU-to-GPU hops.

use crate::context::{
    absorb_frame_fault, open_delivered, sealed_kind, stage_plaintext, CcMode, ContextConfig,
    CudaContext, GpuError, IoStats, MemcpyTiming, SessionCounters,
};
use crate::memory::{DevicePtr, HostAddr, HostRegion, Payload};
use crate::runtime::{GpuRuntime, SessionedRuntime};
use crate::timing::IoTimingModel;
use pipellm_chaos::{ChaosInjector, FaultSite};
use pipellm_crypto::channel::{Endpoint, SealedMessage};
use pipellm_crypto::engine::CryptoEngine;
use pipellm_crypto::session::{derive_subseed, SessionId, SessionManager};
use pipellm_crypto::CryptoError;
use pipellm_sim::cluster::{EdgeTimeline, TimelineRow, TimelineSummary};
use pipellm_sim::time::SimTime;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// One undirected device-to-device link, normalized so `a < b`.
///
/// The edge's [`pipellm_crypto::channel::SecureChannel`] maps device `a`
/// onto the channel's "host" endpoint and device `b` onto its "device"
/// endpoint: transfers `a → b` ride the channel's H2D direction and
/// `b → a` its D2H direction, each with its own key and IV counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId {
    /// Lower device index.
    pub a: usize,
    /// Higher device index.
    pub b: usize,
}

impl EdgeId {
    /// The edge joining devices `i` and `j` (order-insensitive).
    ///
    /// # Panics
    ///
    /// Panics if `i == j`: a device has no link to itself.
    pub fn between(i: usize, j: usize) -> Self {
        assert_ne!(i, j, "no self-edges in the cluster topology");
        EdgeId {
            a: i.min(j),
            b: i.max(j),
        }
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "edge{}-{}", self.a, self.b)
    }
}

/// The key-derivation root of device `i`'s host↔device channel, derived
/// from the cluster-wide seed. Exposed so a networked deployment can stand
/// up the *same* per-device channels on real sockets that
/// [`ClusterContext::new`] builds in process: both ends derive the root
/// independently from the shared cluster seed, and nothing key-like ever
/// crosses the wire.
pub fn device_key_seed(cluster_seed: u64, device: usize) -> u64 {
    derive_subseed(cluster_seed, 0x01_0000 | device as u64)
}

/// The key-derivation root of the edge joining devices `a < b`, derived
/// from the cluster-wide seed and the edge identity. The networked
/// deployment derives the identical root for the worker pair at the two
/// ends of the edge, so remote stage processes speak exactly the channels
/// the in-process cluster would.
pub fn edge_key_seed(cluster_seed: u64, edge: EdgeId) -> u64 {
    derive_subseed(
        cluster_seed,
        0x02_0000 | ((edge.a as u64) << 24) | edge.b as u64,
    )
}

/// NVLink timing calibration for the inter-GPU links.
///
/// Defaults model an NVLink-4 class fabric: ~400 GB/s per direction in
/// plaintext, capped well below that when CC-mode bounce-buffer staging is
/// on the path, with a short per-operation latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvLinkModel {
    /// Link bandwidth with CC disabled, GB/s.
    pub gbps_off: f64,
    /// Effective link bandwidth in CC mode, GB/s.
    pub gbps_cc: f64,
    /// Per-operation link latency.
    pub latency: Duration,
}

impl Default for NvLinkModel {
    fn default() -> Self {
        NvLinkModel {
            gbps_off: 400.0,
            gbps_cc: 150.0,
            latency: Duration::from_nanos(700),
        }
    }
}

impl NvLinkModel {
    /// Bandwidth in GB/s for the given CC mode.
    pub fn gbps(&self, cc_enabled: bool) -> f64 {
        if cc_enabled {
            self.gbps_cc
        } else {
            self.gbps_off
        }
    }
}

/// Configuration for a [`ClusterContext`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of devices (pipeline stages), at least 1.
    pub devices: usize,
    /// CC mode, applied to every device and every edge.
    pub cc: CcMode,
    /// Host↔device timing calibration (PCIe + crypto cost model).
    pub timing: IoTimingModel,
    /// Inter-GPU link calibration.
    pub nvlink: NvLinkModel,
    /// Device memory capacity per device, bytes.
    pub device_capacity: u64,
    /// Crypto worker threads per device (seals run on the source device's
    /// pool, opens on the destination's).
    pub crypto_threads: usize,
    /// Cluster-wide key-derivation seed. Per-device host channels and
    /// per-edge channels all derive distinct roots from it.
    pub seed: u64,
    /// Fault injector shared by every device's host link and every edge;
    /// `None` (the default) injects nothing.
    pub chaos: Option<Arc<ChaosInjector>>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            devices: 2,
            cc: CcMode::On,
            timing: IoTimingModel::default(),
            nvlink: NvLinkModel::default(),
            device_capacity: 80 * 1_000_000_000,
            crypto_threads: 1,
            seed: 0x9e37,
            chaos: None,
        }
    }
}

/// Aggregate statistics of one edge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Payload transfers `a → b`.
    pub ab_ops: u64,
    /// Payload transfers `b → a`.
    pub ba_ops: u64,
    /// Payload bytes moved (both directions).
    pub bytes: u64,
    /// NOP (IV-padding) operations (both directions).
    pub nops: u64,
    /// Transfers lost to injected faults (both directions); each burned an
    /// edge IV on both endpoints and delivered nothing.
    pub faulted: u64,
}

/// One edge's live state: its session manager (keys + IV counters per
/// session), its wire timeline, and its traffic counters.
struct EdgeState {
    sessions: SessionManager,
    timeline: EdgeTimeline,
    stats: EdgeStats,
    /// Recycled NOP ciphertext buffer, as on the host channel.
    nop_staging: Vec<u8>,
}

/// The simulated multi-GPU cluster.
pub struct ClusterContext {
    cc: CcMode,
    timing: IoTimingModel,
    nvlink: NvLinkModel,
    crypto_threads: usize,
    /// The one real seal/open worker pool shared by every device's host
    /// channel and every edge channel in the cluster.
    engine: Arc<CryptoEngine>,
    devices: Vec<CudaContext>,
    edges: BTreeMap<EdgeId, EdgeState>,
    active: SessionId,
    pending: Vec<SimTime>,
    /// Fault injector rolled on every edge transfer (devices carry their
    /// own clone for host-link sites).
    chaos: Option<Arc<ChaosInjector>>,
}

impl fmt::Debug for ClusterContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterContext")
            .field("devices", &self.devices.len())
            .field("edges", &self.edges.len())
            .field("cc", &self.cc)
            .field("active", &self.active)
            .finish()
    }
}

impl ClusterContext {
    /// Builds the cluster: `devices` contexts plus a full mesh of edges,
    /// each edge with its own key root. Every device and every edge opens
    /// the default session, so the cluster starts in the same single-tenant
    /// state a fresh [`CudaContext`] does.
    pub fn new(config: ClusterConfig) -> Self {
        let n = config.devices.max(1);
        // One shared seal/open worker pool for the whole cluster: every
        // device's host channel and every edge channel chunk their large
        // transfers across the same `crypto_threads` workers, the same k
        // the per-device sim pools model.
        let engine = Arc::new(CryptoEngine::new(config.crypto_threads.max(1)));
        let devices = (0..n)
            .map(|i| {
                CudaContext::new(ContextConfig {
                    cc: config.cc,
                    timing: config.timing,
                    device_capacity: config.device_capacity,
                    crypto_threads: config.crypto_threads,
                    seed: device_key_seed(config.seed, i),
                    engine: Some(Arc::clone(&engine)),
                    chaos: config.chaos.clone(),
                })
            })
            .collect();
        let cc_enabled = config.cc == CcMode::On;
        let mut edges = BTreeMap::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let id = EdgeId { a, b };
                let mut sessions = SessionManager::from_seed(edge_key_seed(config.seed, id));
                sessions.set_engine(Arc::clone(&engine));
                let default = sessions.open();
                debug_assert_eq!(default, SessionId::DEFAULT);
                edges.insert(
                    id,
                    EdgeState {
                        sessions,
                        timeline: EdgeTimeline::new(
                            config.nvlink.gbps(cc_enabled),
                            config.nvlink.latency,
                        ),
                        stats: EdgeStats::default(),
                        nop_staging: Vec::new(),
                    },
                );
            }
        }
        ClusterContext {
            cc: config.cc,
            timing: config.timing,
            nvlink: config.nvlink,
            crypto_threads: config.crypto_threads.max(1),
            engine,
            devices,
            edges,
            active: SessionId::DEFAULT,
            pending: Vec::new(),
            chaos: config.chaos,
        }
    }

    /// Installs a chaos injector after construction, on every device's
    /// host link and every edge.
    pub fn set_chaos(&mut self, chaos: Arc<ChaosInjector>) {
        for device in &mut self.devices {
            device.set_chaos(Arc::clone(&chaos));
        }
        self.chaos = Some(chaos);
    }

    /// The installed chaos injector, if any.
    pub fn chaos(&self) -> Option<&Arc<ChaosInjector>> {
        self.chaos.as_ref()
    }

    /// The cluster-wide shared crypto engine (real worker pool).
    pub fn crypto_engine(&self) -> &Arc<CryptoEngine> {
        &self.engine
    }

    /// Configured crypto worker threads per device pool (and the width of
    /// the shared real engine).
    pub fn crypto_threads(&self) -> usize {
        self.crypto_threads
    }

    /// CC mode of the cluster.
    pub fn cc_mode(&self) -> CcMode {
        self.cc
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The NVLink calibration in use.
    pub fn nvlink(&self) -> &NvLinkModel {
        &self.nvlink
    }

    /// The host↔device timing calibration (shared crypto cost model).
    pub fn timing(&self) -> &IoTimingModel {
        &self.timing
    }

    /// Device `i`'s context.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn device(&self, i: usize) -> &CudaContext {
        &self.devices[i]
    }

    /// Mutable access to device `i`'s context.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn device_mut(&mut self, i: usize) -> &mut CudaContext {
        &mut self.devices[i]
    }

    /// All edge ids, in sorted order.
    pub fn edge_ids(&self) -> Vec<EdgeId> {
        self.edges.keys().copied().collect()
    }

    /// Traffic statistics of one edge.
    pub fn edge_stats(&self, edge: EdgeId) -> Option<EdgeStats> {
        self.edges.get(&edge).map(|e| e.stats)
    }

    /// One edge's session manager (epochs, rekey, derivation).
    pub fn edge_sessions(&self, edge: EdgeId) -> Option<&SessionManager> {
        self.edges.get(&edge).map(|e| &e.sessions)
    }

    /// Mutable access to one edge's session manager.
    pub fn edge_sessions_mut(&mut self, edge: EdgeId) -> Option<&mut SessionManager> {
        self.edges.get_mut(&edge).map(|e| &mut e.sessions)
    }

    // ---------------------------------------------------------------
    // Session surface
    // ---------------------------------------------------------------

    /// Opens a tenant session cluster-wide: on every device's host channel
    /// and on every edge. All managers allocate ids in lockstep, so the
    /// one id names the session everywhere.
    pub fn open_session(&mut self) -> SessionId {
        let mut id = None;
        for device in &mut self.devices {
            let sid = device.open_session();
            debug_assert!(id.is_none() || id == Some(sid), "session ids in lockstep");
            id = Some(sid);
        }
        for edge in self.edges.values_mut() {
            let sid = edge.sessions.open();
            debug_assert_eq!(Some(sid), id, "edge session ids in lockstep");
        }
        id.expect("cluster has at least one device")
    }

    /// Routes the session-unaware surface (all devices' `memcpy_*` and all
    /// edge transfers) to `session`.
    ///
    /// # Errors
    ///
    /// [`GpuError::UnknownSession`] if any device or edge does not know the
    /// session (they are opened in lockstep, so one check suffices).
    pub fn set_session(&mut self, session: SessionId) -> Result<(), GpuError> {
        if !self.edges.values().all(|e| e.sessions.contains(session)) {
            return Err(GpuError::UnknownSession { session });
        }
        for device in &mut self.devices {
            device.set_session(session)?;
        }
        self.active = session;
        Ok(())
    }

    /// The session cluster traffic currently targets.
    pub fn active_session(&self) -> SessionId {
        self.active
    }

    /// Live session ids, in creation order.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.devices[0].session_ids()
    }

    /// Closes a session cluster-wide. The active session cannot be closed
    /// — switch to another session first; asking anyway reports
    /// [`GpuError::UnknownSession`], the same contract as
    /// [`CudaContext::close_session`].
    ///
    /// # Errors
    ///
    /// [`GpuError::UnknownSession`] if no such session is live or it is
    /// the active one.
    pub fn close_session(&mut self, session: SessionId) -> Result<(), GpuError> {
        if session == self.active {
            return Err(GpuError::UnknownSession { session });
        }
        for device in &mut self.devices {
            device.close_session(session)?;
        }
        for edge in self.edges.values_mut() {
            if !edge.sessions.close(session) {
                return Err(GpuError::UnknownSession { session });
            }
        }
        Ok(())
    }

    /// IV-counter snapshot of one edge's channel for `session`, mapped so
    /// `h2d` is the `a → b` direction and `d2h` the `b → a` direction.
    pub fn edge_counters(&self, edge: EdgeId, session: SessionId) -> Option<SessionCounters> {
        let ch = self.edges.get(&edge)?.sessions.channel(session)?;
        Some(SessionCounters {
            h2d_tx: ch.host().tx().next_iv(),
            h2d_rx: ch.device().rx().next_iv(),
            d2h_tx: ch.device().tx().next_iv(),
            d2h_rx: ch.host().rx().next_iv(),
        })
    }

    /// Key epoch of `session` on `edge`.
    pub fn edge_epoch(&self, edge: EdgeId, session: SessionId) -> Option<u32> {
        self.edges.get(&edge)?.sessions.epoch(session)
    }

    /// Whether the active session on `edge` sits inside the rekey headroom
    /// in either direction.
    pub fn edge_needs_rekey(&self, edge: EdgeId) -> bool {
        self.edges
            .get(&edge)
            .and_then(|e| e.sessions.needs_rekey(self.active))
            .unwrap_or(false)
    }

    /// Rekeys the active session on `edge` iff it is inside the headroom:
    /// epoch bump, fresh keys, both IV counters restarted. Returns whether
    /// a rekey happened. Any ciphertext speculatively sealed under the old
    /// epoch can never commit afterwards — callers drop their pipelines
    /// first, exactly as on the host channel.
    pub fn maybe_rekey_edge(&mut self, edge: EdgeId) -> bool {
        let active = self.active;
        self.edges
            .get_mut(&edge)
            .and_then(|e| e.sessions.maybe_rekey(active))
            .unwrap_or(false)
    }

    // ---------------------------------------------------------------
    // Transfer surface
    // ---------------------------------------------------------------

    /// Splits the borrow: source device, destination device, and the edge
    /// joining them.
    fn split(
        &mut self,
        src: usize,
        dst: usize,
    ) -> (&mut CudaContext, &mut CudaContext, &mut EdgeState) {
        let edge = self
            .edges
            .get_mut(&EdgeId::between(src, dst))
            .expect("full-mesh topology has every edge");
        let (lo, hi) = (src.min(dst), src.max(dst));
        let (head, tail) = self.devices.split_at_mut(hi);
        let (lo_ctx, hi_ctx) = (&mut head[lo], &mut tail[0]);
        if src < dst {
            (lo_ctx, hi_ctx, edge)
        } else {
            (hi_ctx, lo_ctx, edge)
        }
    }

    /// The sender endpoint of the `src → dst` direction for `session`.
    fn sender_endpoint(edge: &mut EdgeState, session: SessionId, src_is_a: bool) -> &mut Endpoint {
        let ch = edge
            .sessions
            .channel_mut(session)
            .expect("active session is live on every edge");
        if src_is_a {
            ch.host_mut()
        } else {
            ch.device_mut()
        }
    }

    /// The receiver endpoint of the `src → dst` direction for `session`.
    fn receiver_endpoint(
        edge: &mut EdgeState,
        session: SessionId,
        src_is_a: bool,
    ) -> &mut Endpoint {
        let ch = edge
            .sessions
            .channel_mut(session)
            .expect("active session is live on every edge");
        if src_is_a {
            ch.device_mut()
        } else {
            ch.host_mut()
        }
    }

    /// The sender counter (next IV) of the `src → dst` direction of the
    /// active session's channel on that edge.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either index is out of range.
    pub fn current_edge_iv(&self, src: usize, dst: usize) -> u64 {
        let edge = self
            .edges
            .get(&EdgeId::between(src, dst))
            .expect("full-mesh topology has every edge");
        let ch = edge
            .sessions
            .channel(self.active)
            .expect("active session is live on every edge");
        if src < dst {
            ch.host().tx().next_iv()
        } else {
            ch.device().tx().next_iv()
        }
    }

    /// Asynchronous device→device copy over the edge joining `src` and
    /// `dst` (the NCCL/NVLink `cudaMemcpyPeerAsync` analogue).
    ///
    /// With CC off the payload moves in plaintext at full NVLink bandwidth
    /// and the API returns immediately. With CC on this is the *native*
    /// path: the issuing stage's thread seals on the source device's crypto
    /// pool (blocking until the ciphertext exists), the wire moves it, and
    /// the destination decrypts before the data is usable — crypto on the
    /// critical path at both ends.
    ///
    /// # Errors
    ///
    /// [`GpuError::Memory`] for unknown pointers or capacity errors.
    ///
    /// # Panics
    ///
    /// Panics if `src_dev == dst_dev` or either index is out of range —
    /// programming errors, as on the CUDA peer-copy API.
    pub fn memcpy_dtod_async(
        &mut self,
        now: SimTime,
        src_dev: usize,
        src_ptr: DevicePtr,
        dst_dev: usize,
        dst_ptr: DevicePtr,
    ) -> Result<MemcpyTiming, GpuError> {
        let cc = self.cc;
        let active = self.active;
        let threads = self.crypto_threads;
        let crypto = self.timing.crypto;
        let cc_control = self.timing.cc_control;
        let chaos = self.chaos.clone();
        let src_is_a = src_dev < dst_dev;
        let (src_ctx, dst_ctx, edge) = self.split(src_dev, dst_dev);
        let len = src_ctx.device_memory().get(src_ptr)?.len();
        let timing = match cc {
            CcMode::Off => {
                let payload = src_ctx.device_memory().get(src_ptr)?.clone();
                dst_ctx.device_memory_mut().store(dst_ptr, payload)?;
                let wire = edge.timeline.transfer(now, len);
                MemcpyTiming {
                    api_return: now,
                    complete: wire.end,
                }
            }
            CcMode::On => {
                let mut buf = Vec::new();
                let aad =
                    stage_plaintext(src_ctx.device_memory().get(src_ptr)?, dst_ptr.0, &mut buf);
                let sealed = Self::sender_endpoint(edge, active, src_is_a)
                    .tx_mut()
                    .seal_prepared(aad.into(), buf)?;
                // Gang-parallel seal on the source device's crypto pool:
                // the issuing thread blocks until it completes.
                let seal_time = crypto.pool_seal_time(len, threads);
                let enc = src_ctx.crypto_pool_mut().reserve_gang(now, seal_time);
                let wire = edge.timeline.transfer(enc.end, len);
                let open_time = crypto.pool_open_time(len, threads);
                let dec = dst_ctx.crypto_pool_mut().reserve_gang(wire.end, open_time);
                edge.timeline.record_crypto(seal_time + open_time);
                let kind = sealed_kind(&sealed);
                if let Some(fault) = chaos
                    .as_ref()
                    .and_then(|c| c.roll_frame(FaultSite::DeviceToDevice))
                {
                    let iv = sealed.iv;
                    edge.stats.faulted += 1;
                    absorb_frame_fault(
                        Self::receiver_endpoint(edge, active, src_is_a).rx_mut(),
                        fault,
                        sealed,
                    );
                    self.pending.push(dec.end + cc_control);
                    return Err(GpuError::TransferFaulted {
                        fault: fault.kind.label(),
                        iv,
                    });
                }
                let opened = open_delivered(
                    Self::receiver_endpoint(edge, active, src_is_a).rx_mut(),
                    sealed,
                    "memcpy_dtod",
                )?;
                dst_ctx
                    .device_memory_mut()
                    .store(dst_ptr, Payload::from_plaintext(kind, opened))?;
                MemcpyTiming {
                    api_return: enc.end,
                    complete: dec.end + cc_control,
                }
            }
        };
        if src_is_a {
            edge.stats.ab_ops += 1;
        } else {
            edge.stats.ba_ops += 1;
        }
        edge.stats.bytes += len;
        self.pending.push(timing.complete);
        Ok(timing)
    }

    /// Seals a source-device buffer for the `src → dst` direction at an
    /// arbitrary (future) IV without advancing the edge counter —
    /// speculative pre-encryption on a GPU-to-GPU hop. The seal is
    /// reserved on the source device's crypto pool starting at `now`;
    /// the returned time is when the ciphertext is ready.
    ///
    /// The chunked engine gang-shards the buffer across all
    /// `crypto_threads` workers (near-linear until PCIe saturation), so a
    /// speculative seal's latency shrinks with worker count just as the
    /// blocking native path's does — what the pipeline hides is the *wire
    /// scheduling*, not the crypto cost.
    ///
    /// # Errors
    ///
    /// - [`GpuError::Memory`] for unknown pointers.
    /// - [`GpuError::Crypto`] ([`CryptoError::IvReused`]) if `iv` is below
    ///   the direction's counter.
    /// - [`GpuError::CcDisabled`] with CC off.
    ///
    /// # Panics
    ///
    /// Panics if `src_dev == dst_dev` or either index is out of range —
    /// programming errors, as on the CUDA peer-copy API.
    pub fn seal_edge_region(
        &mut self,
        now: SimTime,
        src_dev: usize,
        src_ptr: DevicePtr,
        dst_dev: usize,
        dst_ptr: DevicePtr,
        iv: u64,
    ) -> Result<(SealedMessage, SimTime), GpuError> {
        if self.cc == CcMode::Off {
            return Err(GpuError::CcDisabled);
        }
        let active = self.active;
        let crypto = self.timing.crypto;
        let threads = self.crypto_threads;
        let src_is_a = src_dev < dst_dev;
        let (src_ctx, _dst_ctx, edge) = self.split(src_dev, dst_dev);
        let sender = Self::sender_endpoint(edge, active, src_is_a);
        if iv < sender.tx().next_iv() {
            return Err(GpuError::Crypto(CryptoError::IvReused { iv }));
        }
        let mut buf = Vec::new();
        let payload = src_ctx.device_memory().get(src_ptr)?;
        let len = payload.len();
        let aad = stage_plaintext(payload, dst_ptr.0, &mut buf);
        let sealed = Self::sender_endpoint(edge, active, src_is_a)
            .tx()
            .seal_speculative_prepared(iv, aad.into(), buf)?;
        let seal_time = crypto.pool_seal_time(len, threads);
        let reservation = src_ctx.crypto_pool_mut().reserve_gang(now, seal_time);
        edge.timeline.record_crypto(seal_time);
        Ok((sealed, reservation.end))
    }

    /// Batched form of [`ClusterContext::seal_edge_region`]: seals every
    /// `(src_ptr, dst_ptr)` region for the `src → dst` direction at the
    /// consecutive IVs `start_iv..start_iv + regions.len()` in **one
    /// fused gang submission** ([`seal_speculative_batch`]) — one crypto
    /// dispatch and one pool reservation for the whole group, priced as
    /// [`CpuCryptoModel::batch_seal_time`]. The sender counter does not
    /// advance; every returned message is committed later by
    /// [`ClusterContext::submit_dtod_sealed`]. All sealed ciphertexts
    /// share the returned ready time.
    ///
    /// # Errors
    ///
    /// - [`GpuError::Memory`] for unknown pointers.
    /// - [`GpuError::Crypto`] ([`CryptoError::IvReused`]) if `start_iv`
    ///   is below the direction's counter.
    /// - [`GpuError::CcDisabled`] with CC off.
    ///
    /// # Panics
    ///
    /// Panics if `src_dev == dst_dev` or either index is out of range —
    /// programming errors, as on the CUDA peer-copy API.
    ///
    /// [`seal_speculative_batch`]: pipellm_crypto::channel::TxContext::seal_speculative_batch
    /// [`CpuCryptoModel::batch_seal_time`]: pipellm_crypto::cost::CpuCryptoModel::batch_seal_time
    pub fn seal_edge_regions(
        &mut self,
        now: SimTime,
        src_dev: usize,
        dst_dev: usize,
        regions: &[(DevicePtr, DevicePtr)],
        start_iv: u64,
    ) -> Result<(Vec<SealedMessage>, SimTime), GpuError> {
        if self.cc == CcMode::Off {
            return Err(GpuError::CcDisabled);
        }
        if regions.is_empty() {
            return Ok((Vec::new(), now));
        }
        let active = self.active;
        let crypto = self.timing.crypto;
        let threads = self.crypto_threads;
        let src_is_a = src_dev < dst_dev;
        let (src_ctx, _dst_ctx, edge) = self.split(src_dev, dst_dev);
        let sender = Self::sender_endpoint(edge, active, src_is_a);
        if start_iv < sender.tx().next_iv() {
            return Err(GpuError::Crypto(CryptoError::IvReused { iv: start_iv }));
        }
        // Stage every region first so the fused seal below sees the
        // whole group at once.
        let mut total_bytes = 0u64;
        let mut msgs = Vec::with_capacity(regions.len());
        for &(src_ptr, dst_ptr) in regions {
            let mut buf = Vec::new();
            let payload = src_ctx.device_memory().get(src_ptr)?;
            total_bytes += payload.len();
            let aad = stage_plaintext(payload, dst_ptr.0, &mut buf);
            msgs.push((aad.into(), buf));
        }
        let sealed = Self::sender_endpoint(edge, active, src_is_a)
            .tx()
            .seal_speculative_batch(start_iv, msgs)?;
        let seal_time = crypto.batch_seal_time(total_bytes, regions.len(), threads);
        let reservation = src_ctx.crypto_pool_mut().reserve_gang(now, seal_time);
        edge.timeline.record_crypto(seal_time);
        Ok((sealed, reservation.end))
    }

    /// Submits pre-encrypted ciphertext over an edge: commits the sender
    /// counter at the message's IV, moves the wire from
    /// `max(now, ready_at)`, and opens at the destination. The issuing
    /// thread only queues the staged ciphertext, so the API returns at
    /// `now` — encryption is off the stage's critical path.
    ///
    /// # Errors
    ///
    /// - [`GpuError::Crypto`] with [`CryptoError::IvReused`] /
    ///   [`CryptoError::IvMismatch`] if the message's IV is behind/ahead of
    ///   the sender counter (NOP padding recovers the latter).
    /// - [`GpuError::Memory`] for unknown pointers or length mismatches.
    /// - [`GpuError::CcDisabled`] with CC off.
    ///
    /// # Panics
    ///
    /// Panics if `src_dev == dst_dev` or either index is out of range —
    /// programming errors, as on the CUDA peer-copy API.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_dtod_sealed(
        &mut self,
        now: SimTime,
        ready_at: SimTime,
        src_dev: usize,
        dst_dev: usize,
        dst_ptr: DevicePtr,
        sealed: &SealedMessage,
        payload_len: u64,
    ) -> Result<MemcpyTiming, GpuError> {
        if self.cc == CcMode::Off {
            return Err(GpuError::CcDisabled);
        }
        let active = self.active;
        let threads = self.crypto_threads;
        let crypto = self.timing.crypto;
        let cc_control = self.timing.cc_control;
        let chaos = self.chaos.clone();
        let src_is_a = src_dev < dst_dev;
        let (_src_ctx, dst_ctx, edge) = self.split(src_dev, dst_dev);
        // Validate the IV against the sender counter *without* committing,
        // then open, then commit: an authentication failure (e.g. a stale
        // entry sealed under another session's keys) must leave both
        // counters untouched, or this session's edge would be out of
        // lockstep forever.
        {
            let next = Self::sender_endpoint(edge, active, src_is_a).tx().next_iv();
            if sealed.iv < next {
                return Err(GpuError::Crypto(CryptoError::IvReused { iv: sealed.iv }));
            }
            if sealed.iv > next {
                return Err(GpuError::Crypto(CryptoError::IvMismatch {
                    iv: sealed.iv,
                    expected: next,
                }));
            }
        }
        // A fault here strikes *after* IV validation — the frame really
        // departs: the sender commits its counter, the receiver absorbs
        // the mangled frame under the sentinel discipline, and the edge
        // stays in lockstep with one IV burned on both ends.
        if let Some(fault) = chaos
            .as_ref()
            .and_then(|c| c.roll_frame(FaultSite::DeviceToDevice))
        {
            Self::sender_endpoint(edge, active, src_is_a)
                .tx_mut()
                .commit(sealed)
                .expect("counter validated above and cannot have advanced");
            let iv = absorb_frame_fault(
                Self::receiver_endpoint(edge, active, src_is_a).rx_mut(),
                fault,
                sealed.clone(),
            );
            let depart = now.max(ready_at);
            let wire = edge.timeline.transfer(depart, payload_len);
            edge.stats.faulted += 1;
            self.pending.push(wire.end + cc_control);
            return Err(GpuError::TransferFaulted {
                fault: fault.kind.label(),
                iv,
            });
        }
        let kind = sealed_kind(sealed);
        let opened = Self::receiver_endpoint(edge, active, src_is_a)
            .rx_mut()
            .open(sealed)?;
        Self::sender_endpoint(edge, active, src_is_a)
            .tx_mut()
            .commit(sealed)
            .expect("counter validated above and cannot have advanced");
        let depart = now.max(ready_at);
        let wire = edge.timeline.transfer(depart, payload_len);
        let open_time = crypto.pool_open_time(payload_len, threads);
        let dec = dst_ctx.crypto_pool_mut().reserve_gang(wire.end, open_time);
        edge.timeline.record_crypto(open_time);
        dst_ctx
            .device_memory_mut()
            .store(dst_ptr, Payload::from_plaintext(kind, opened))?;
        if src_is_a {
            edge.stats.ab_ops += 1;
        } else {
            edge.stats.ba_ops += 1;
        }
        edge.stats.bytes += payload_len;
        let done = dec.end + cc_control;
        self.pending.push(done);
        Ok(MemcpyTiming {
            api_return: now,
            complete: done,
        })
    }

    /// Sends a NOP over the `src → dst` direction of an edge: a 1-byte
    /// dummy transfer advancing the IV on both sides, the edge-level
    /// analogue of the host channel's §5.3 padding.
    ///
    /// # Errors
    ///
    /// [`GpuError::CcDisabled`] with CC off, [`GpuError::Crypto`] on IV
    /// exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `src_dev == dst_dev` or either index is out of range —
    /// programming errors, as on the CUDA peer-copy API.
    pub fn send_edge_nop(
        &mut self,
        now: SimTime,
        src_dev: usize,
        dst_dev: usize,
    ) -> Result<SimTime, GpuError> {
        if self.cc == CcMode::Off {
            return Err(GpuError::CcDisabled);
        }
        let active = self.active;
        let nop_time = self.timing.crypto.nop_time();
        let cc_control = self.timing.cc_control;
        let src_is_a = src_dev < dst_dev;
        let (src_ctx, _dst_ctx, edge) = self.split(src_dev, dst_dev);
        let staging = std::mem::take(&mut edge.nop_staging);
        let nop = Self::sender_endpoint(edge, active, src_is_a)
            .tx_mut()
            .seal_nop_with(staging)?;
        let enc = src_ctx.crypto_pool_mut().reserve(now, nop_time);
        let wire = edge.timeline.nop(enc.end);
        edge.nop_staging = open_delivered(
            Self::receiver_endpoint(edge, active, src_is_a).rx_mut(),
            nop,
            "send_edge_nop",
        )?;
        edge.stats.nops += 1;
        let done = wire.end + cc_control;
        self.pending.push(done);
        Ok(done)
    }

    /// Sends a burst of `count` NOPs over the `src → dst` direction in
    /// **one fused batch submission** ([`seal_nop_batch`]): the whole pad
    /// run seals with a single crypto dispatch (priced as
    /// [`CpuCryptoModel::batch_seal_time`]) instead of one pool
    /// round-trip per NOP — the common case when a speculative entry's
    /// IV sits many slots ahead of the edge counter. Returns when the
    /// last NOP lands; `count == 0` is a no-op returning `now`.
    ///
    /// # Errors
    ///
    /// [`GpuError::CcDisabled`] with CC off, [`GpuError::Crypto`] on IV
    /// exhaustion (all-or-nothing: no counter movement on error).
    ///
    /// # Panics
    ///
    /// Panics if `src_dev == dst_dev` or either index is out of range —
    /// programming errors, as on the CUDA peer-copy API.
    ///
    /// [`seal_nop_batch`]: pipellm_crypto::channel::TxContext::seal_nop_batch
    /// [`CpuCryptoModel::batch_seal_time`]: pipellm_crypto::cost::CpuCryptoModel::batch_seal_time
    pub fn send_edge_nops(
        &mut self,
        now: SimTime,
        src_dev: usize,
        dst_dev: usize,
        count: usize,
    ) -> Result<SimTime, GpuError> {
        if self.cc == CcMode::Off {
            return Err(GpuError::CcDisabled);
        }
        if count == 0 {
            return Ok(now);
        }
        let active = self.active;
        let batch_time =
            self.timing
                .crypto
                .batch_seal_time(count as u64, count, self.crypto_threads);
        let cc_control = self.timing.cc_control;
        let src_is_a = src_dev < dst_dev;
        let (src_ctx, _dst_ctx, edge) = self.split(src_dev, dst_dev);
        let mut staging = vec![std::mem::take(&mut edge.nop_staging)];
        let nops = Self::sender_endpoint(edge, active, src_is_a)
            .tx_mut()
            .seal_nop_batch(count, &mut staging)?;
        let enc = src_ctx.crypto_pool_mut().reserve(now, batch_time);
        let mut at = enc.end;
        for nop in nops {
            let wire = edge.timeline.nop(at);
            at = wire.end;
            edge.nop_staging = open_delivered(
                Self::receiver_endpoint(edge, active, src_is_a).rx_mut(),
                nop,
                "send_edge_nops",
            )?;
            edge.stats.nops += 1;
        }
        let done = at + cc_control;
        self.pending.push(done);
        Ok(done)
    }

    /// Waits for every asynchronous operation submitted so far, across all
    /// devices and edges. Returns the completion time (at least `now`).
    pub fn synchronize(&mut self, now: SimTime) -> SimTime {
        let mut latest = self.pending.drain(..).max().unwrap_or(SimTime::ZERO);
        for device in &mut self.devices {
            latest = latest.max(device.synchronize(now));
        }
        latest.max(now)
    }

    /// Aggregate I/O statistics of every device's host link.
    pub fn host_io_stats(&self) -> IoStats {
        let mut total = IoStats::default();
        for device in &self.devices {
            let s = device.stats();
            total.h2d_ops += s.h2d_ops;
            total.h2d_bytes += s.h2d_bytes;
            total.d2h_ops += s.d2h_ops;
            total.d2h_bytes += s.d2h_bytes;
            total.nops += s.nops;
            total.faulted_ops += s.faulted_ops;
        }
        total
    }

    /// Total GPU idle time spent waiting on transfers, across devices.
    pub fn total_io_stall(&self) -> Duration {
        self.devices
            .iter()
            .map(|d| d.gpu_engine().io_stall_time())
            .sum()
    }

    /// Per-device and per-edge utilization rows measured against `now`.
    pub fn timeline_summary(&self, now: SimTime) -> TimelineSummary {
        let devices = self
            .devices
            .iter()
            .enumerate()
            .map(|(i, d)| {
                // A device's ops are its host-link transfers plus every
                // edge transfer it sent or received.
                let edge_ops: u64 = self
                    .edges
                    .iter()
                    .filter(|(id, _)| id.a == i || id.b == i)
                    .map(|(_, e)| e.stats.ab_ops + e.stats.ba_ops)
                    .sum();
                TimelineRow {
                    label: format!("gpu{i}"),
                    busy: d.gpu_engine().busy_time(),
                    serialized: d.gpu_engine().io_stall_time(),
                    ops: d.stats().h2d_ops + d.stats().d2h_ops + edge_ops,
                }
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|(id, e)| TimelineRow {
                label: id.to_string(),
                busy: e.timeline.link().occupancy(e.timeline.bytes_moved()),
                serialized: e.timeline.crypto_serialization(),
                ops: e.stats.ab_ops + e.stats.ba_ops,
            })
            .collect();
        TimelineSummary {
            devices,
            edges,
            makespan: Duration::from_secs_f64(now.as_secs_f64()),
        }
    }
}

/// The cluster behind the single-GPU runtime traits: host traffic enters
/// and leaves through device 0 (the entry GPU the CVM's PCIe link reaches),
/// while sessions span the whole cluster — every device's host channel and
/// every edge. This is what makes the cluster composable with
/// [`MultiTenantDriver`]-style drivers written against
/// [`SessionedRuntime`].
///
/// [`MultiTenantDriver`]: ../../pipellm_serving/multitenant/struct.MultiTenantDriver.html
#[derive(Debug)]
pub struct ClusterRuntime {
    cluster: ClusterContext,
}

impl ClusterRuntime {
    /// Wraps a cluster.
    pub fn new(cluster: ClusterContext) -> Self {
        ClusterRuntime { cluster }
    }

    /// The wrapped cluster.
    pub fn cluster(&self) -> &ClusterContext {
        &self.cluster
    }

    /// Mutable access to the wrapped cluster (edge transfers, rekeys).
    pub fn cluster_mut(&mut self) -> &mut ClusterContext {
        &mut self.cluster
    }

    /// Consumes the runtime, returning the cluster.
    pub fn into_cluster(self) -> ClusterContext {
        self.cluster
    }

    fn entry(&mut self) -> &mut CudaContext {
        &mut self.cluster.devices[0]
    }
}

impl GpuRuntime for ClusterRuntime {
    fn label(&self) -> &str {
        match self.cluster.cc {
            CcMode::Off => "w/o CC",
            CcMode::On => "CC",
        }
    }

    fn alloc_host(&mut self, payload: Payload) -> HostRegion {
        self.entry().host_mut().alloc(payload)
    }

    fn free_host(&mut self, addr: HostAddr) -> Result<(), GpuError> {
        Ok(self.entry().host_mut().free(addr)?)
    }

    fn alloc_device(&mut self, len: u64) -> Result<DevicePtr, GpuError> {
        self.entry().alloc_device(len)
    }

    fn free_device(&mut self, ptr: DevicePtr) -> Result<(), GpuError> {
        self.entry().free_device(ptr)
    }

    fn memcpy_htod(
        &mut self,
        now: SimTime,
        dst: DevicePtr,
        src: HostRegion,
    ) -> Result<SimTime, GpuError> {
        self.entry()
            .memcpy_htod_async(now, dst, src)
            .map(|t| t.api_return)
    }

    fn memcpy_dtoh(
        &mut self,
        now: SimTime,
        dst: HostRegion,
        src: DevicePtr,
    ) -> Result<SimTime, GpuError> {
        self.entry()
            .memcpy_dtoh_async(now, dst, src)
            .map(|t| t.api_return)
    }

    fn synchronize(&mut self, now: SimTime) -> SimTime {
        self.cluster.synchronize(now)
    }

    fn launch_compute(&mut self, ready: SimTime, duration: Duration) -> SimTime {
        self.entry().launch_compute(ready, duration).end
    }

    fn host_touch(&mut self, now: SimTime, addr: HostAddr) -> Result<SimTime, GpuError> {
        self.entry().host_touch(addr)?;
        Ok(now)
    }

    fn host_read(&mut self, now: SimTime, region: HostRegion) -> Result<SimTime, GpuError> {
        self.entry().host_read(region)?;
        Ok(now)
    }

    fn device_free_bytes(&self) -> u64 {
        self.cluster.devices[0].device_memory().free_bytes()
    }

    fn device_capacity(&self) -> u64 {
        self.cluster.devices[0].device_memory().capacity()
    }

    fn io_stats(&self) -> IoStats {
        self.cluster.devices[0].stats()
    }

    fn gpu_io_stall(&self) -> Duration {
        self.cluster.devices[0].gpu_engine().io_stall_time()
    }
}

impl SessionedRuntime for ClusterRuntime {
    fn open_session(&mut self) -> SessionId {
        self.cluster.open_session()
    }

    fn set_session(&mut self, session: SessionId) -> Result<(), GpuError> {
        self.cluster.set_session(session)
    }

    fn active_session(&self) -> SessionId {
        self.cluster.active_session()
    }

    fn session_ids(&self) -> Vec<SessionId> {
        self.cluster.session_ids()
    }

    fn session_counters(&self, session: SessionId) -> Option<SessionCounters> {
        self.cluster.devices[0].session_counters(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHUNK: u64 = 256 * 1024;

    fn cluster(n: usize, cc: CcMode) -> ClusterContext {
        ClusterContext::new(ClusterConfig {
            devices: n,
            cc,
            device_capacity: 1 << 30,
            ..ClusterConfig::default()
        })
    }

    /// Seeds a device buffer on device `dev` with `byte`-filled data.
    fn seed_buffer(c: &mut ClusterContext, dev: usize, byte: u8) -> DevicePtr {
        let ptr = c.device_mut(dev).alloc_device(CHUNK).unwrap();
        c.device_mut(dev)
            .device_memory_mut()
            .store(ptr, Payload::Real(vec![byte; CHUNK as usize]))
            .unwrap();
        ptr
    }

    #[test]
    fn topology_is_a_full_mesh() {
        let c = cluster(4, CcMode::On);
        assert_eq!(c.num_devices(), 4);
        assert_eq!(c.edge_ids().len(), 6);
        assert_eq!(EdgeId::between(3, 1), EdgeId { a: 1, b: 3 });
        assert_eq!(EdgeId::between(1, 3).to_string(), "edge1-3");
    }

    #[test]
    #[should_panic(expected = "no self-edges")]
    fn self_edges_are_rejected() {
        let _ = EdgeId::between(2, 2);
    }

    #[test]
    fn dtod_roundtrips_real_bytes_cc_on_and_off() {
        for cc in [CcMode::Off, CcMode::On] {
            let mut c = cluster(2, cc);
            let src = seed_buffer(&mut c, 0, 0x5a);
            let dst = c.device_mut(1).alloc_device(CHUNK).unwrap();
            let t = c.memcpy_dtod_async(SimTime::ZERO, 0, src, 1, dst).unwrap();
            assert!(t.complete > SimTime::ZERO);
            assert_eq!(
                c.device(1).device_memory().get(dst).unwrap(),
                &Payload::Real(vec![0x5a; CHUNK as usize]),
                "{cc:?}"
            );
        }
    }

    #[test]
    fn native_cc_blocks_the_api_on_the_seal() {
        let mut off = cluster(2, CcMode::Off);
        let mut on = cluster(2, CcMode::On);
        let s_off = seed_buffer(&mut off, 0, 1);
        let s_on = seed_buffer(&mut on, 0, 1);
        let d_off = off.device_mut(1).alloc_device(CHUNK).unwrap();
        let d_on = on.device_mut(1).alloc_device(CHUNK).unwrap();
        let t_off = off
            .memcpy_dtod_async(SimTime::ZERO, 0, s_off, 1, d_off)
            .unwrap();
        let t_on = on
            .memcpy_dtod_async(SimTime::ZERO, 0, s_on, 1, d_on)
            .unwrap();
        assert_eq!(t_off.api_return, SimTime::ZERO);
        assert!(
            t_on.api_return > SimTime::ZERO,
            "native CC couples the seal to the API call"
        );
        assert!(t_on.complete > t_off.complete);
    }

    #[test]
    fn reverse_direction_uses_its_own_counter() {
        let mut c = cluster(2, CcMode::On);
        let fwd = seed_buffer(&mut c, 0, 2);
        let bwd = seed_buffer(&mut c, 1, 3);
        let dst1 = c.device_mut(1).alloc_device(CHUNK).unwrap();
        let dst0 = c.device_mut(0).alloc_device(CHUNK).unwrap();
        c.memcpy_dtod_async(SimTime::ZERO, 0, fwd, 1, dst1).unwrap();
        c.memcpy_dtod_async(SimTime::ZERO, 0, fwd, 1, dst1).unwrap();
        c.memcpy_dtod_async(SimTime::ZERO, 1, bwd, 0, dst0).unwrap();
        let counters = c
            .edge_counters(EdgeId::between(0, 1), SessionId::DEFAULT)
            .unwrap();
        assert_eq!((counters.h2d_tx, counters.d2h_tx), (3, 2));
        assert!(counters.in_lockstep());
        let stats = c.edge_stats(EdgeId::between(0, 1)).unwrap();
        assert_eq!((stats.ab_ops, stats.ba_ops), (2, 1));
    }

    #[test]
    fn edges_have_distinct_keys_per_session() {
        let mut c = cluster(3, CcMode::On);
        // Seal the same plaintext for the same session on two different
        // edges; the ciphertexts must differ (distinct per-edge roots) and
        // must not cross-authenticate.
        let e01 = c.edge_sessions(EdgeId::between(0, 1)).unwrap();
        let e12 = c.edge_sessions(EdgeId::between(1, 2)).unwrap();
        let k01 = e01.derive_keys(SessionId::DEFAULT, 0);
        let k12 = e12.derive_keys(SessionId::DEFAULT, 0);
        let mut ch01 = pipellm_crypto::channel::SecureChannel::new(k01);
        let mut ch12 = pipellm_crypto::channel::SecureChannel::new(k12);
        let sealed = ch01.host_mut().seal(b"activation").unwrap();
        assert!(
            ch12.device_mut().open(&sealed).is_err(),
            "edge 1-2 must reject edge 0-1 ciphertext"
        );
        // And per-session separation holds on one edge.
        let sid = c.open_session();
        let mgr = c.edge_sessions(EdgeId::between(0, 1)).unwrap();
        let mut ch_new = pipellm_crypto::channel::SecureChannel::new(mgr.derive_keys(sid, 0));
        assert!(ch_new.device_mut().open(&sealed).is_err());
    }

    #[test]
    fn speculative_edge_seal_commits_in_order() {
        let mut c = cluster(2, CcMode::On);
        let src = seed_buffer(&mut c, 0, 7);
        let dst = c.device_mut(1).alloc_device(CHUNK).unwrap();
        let iv = c.current_edge_iv(0, 1);
        let (sealed, ready) = c
            .seal_edge_region(SimTime::ZERO, 0, src, 1, dst, iv)
            .unwrap();
        assert!(ready > SimTime::ZERO, "seal occupies the crypto pool");
        let t = c
            .submit_dtod_sealed(SimTime::ZERO, ready, 0, 1, dst, &sealed, CHUNK)
            .unwrap();
        assert_eq!(t.api_return, SimTime::ZERO, "submit does not block");
        assert!(t.complete > ready);
        assert_eq!(
            c.device(1).device_memory().get(dst).unwrap(),
            &Payload::Real(vec![7; CHUNK as usize])
        );
    }

    #[test]
    fn future_iv_needs_edge_nops() {
        let mut c = cluster(2, CcMode::On);
        let src = seed_buffer(&mut c, 0, 9);
        let dst = c.device_mut(1).alloc_device(CHUNK).unwrap();
        let iv = c.current_edge_iv(0, 1) + 2;
        let (sealed, ready) = c
            .seal_edge_region(SimTime::ZERO, 0, src, 1, dst, iv)
            .unwrap();
        let err = c
            .submit_dtod_sealed(SimTime::ZERO, ready, 0, 1, dst, &sealed, CHUNK)
            .unwrap_err();
        assert!(matches!(
            err,
            GpuError::Crypto(CryptoError::IvMismatch { .. })
        ));
        c.send_edge_nop(SimTime::ZERO, 0, 1).unwrap();
        c.send_edge_nop(SimTime::ZERO, 0, 1).unwrap();
        c.submit_dtod_sealed(SimTime::ZERO, ready, 0, 1, dst, &sealed, CHUNK)
            .unwrap();
        assert_eq!(c.edge_stats(EdgeId::between(0, 1)).unwrap().nops, 2);
        assert_eq!(
            c.device(1).device_memory().get(dst).unwrap(),
            &Payload::Real(vec![9; CHUNK as usize])
        );
    }

    #[test]
    fn stale_edge_iv_is_refused() {
        let mut c = cluster(2, CcMode::On);
        let src = seed_buffer(&mut c, 0, 4);
        let other = seed_buffer(&mut c, 0, 5);
        let dst = c.device_mut(1).alloc_device(CHUNK).unwrap();
        let iv = c.current_edge_iv(0, 1);
        let (sealed, _) = c
            .seal_edge_region(SimTime::ZERO, 0, src, 1, dst, iv)
            .unwrap();
        // A competing native transfer consumes the IV first.
        c.memcpy_dtod_async(SimTime::ZERO, 0, other, 1, dst)
            .unwrap();
        let err = c
            .submit_dtod_sealed(SimTime::ZERO, SimTime::ZERO, 0, 1, dst, &sealed, CHUNK)
            .unwrap_err();
        assert!(matches!(
            err,
            GpuError::Crypto(CryptoError::IvReused { .. })
        ));
        // Sealing below the counter is refused up front.
        assert!(matches!(
            c.seal_edge_region(SimTime::ZERO, 0, src, 1, dst, iv),
            Err(GpuError::Crypto(CryptoError::IvReused { .. }))
        ));
    }

    #[test]
    fn sessions_are_isolated_per_edge() {
        let mut c = cluster(2, CcMode::On);
        let a = c.active_session();
        let b = c.open_session();
        let src = seed_buffer(&mut c, 0, 1);
        let dst = c.device_mut(1).alloc_device(CHUNK).unwrap();
        c.memcpy_dtod_async(SimTime::ZERO, 0, src, 1, dst).unwrap();
        c.set_session(b).unwrap();
        c.memcpy_dtod_async(SimTime::ZERO, 0, src, 1, dst).unwrap();
        c.memcpy_dtod_async(SimTime::ZERO, 0, src, 1, dst).unwrap();
        let edge = EdgeId::between(0, 1);
        let ca = c.edge_counters(edge, a).unwrap();
        let cb = c.edge_counters(edge, b).unwrap();
        assert_eq!(ca.h2d_tx, 2);
        assert_eq!(cb.h2d_tx, 3);
        assert!(ca.in_lockstep() && cb.in_lockstep());
    }

    #[test]
    fn edge_rekey_bumps_epoch_and_restarts_counters() {
        use pipellm_crypto::channel::IV_LIMIT;
        let mut c = cluster(2, CcMode::On);
        let edge = EdgeId::between(0, 1);
        // Drive the active session's a→b counter into the headroom.
        let sid = {
            let mgr = c.edge_sessions_mut(edge).unwrap();
            mgr.open_with_initial_ivs(IV_LIMIT - 2, 1)
        };
        // Mirror the session on devices and keep managers in lockstep for
        // the other edges (none here: 2 devices, 1 edge).
        for d in 0..2 {
            c.device_mut(d).open_session();
        }
        c.set_session(sid).unwrap();
        assert!(c.edge_needs_rekey(edge));
        assert!(c.maybe_rekey_edge(edge));
        assert_eq!(c.edge_epoch(edge, sid), Some(1));
        let counters = c.edge_counters(edge, sid).unwrap();
        assert_eq!(counters.h2d_tx, 1, "counters restart after rekey");
        // Traffic flows on the fresh epoch.
        let src = seed_buffer(&mut c, 0, 6);
        let dst = c.device_mut(1).alloc_device(CHUNK).unwrap();
        c.memcpy_dtod_async(SimTime::ZERO, 0, src, 1, dst).unwrap();
        assert!(c.edge_counters(edge, sid).unwrap().in_lockstep());
        assert!(
            !c.maybe_rekey_edge(edge),
            "fresh epoch is far from the limit"
        );
    }

    #[test]
    fn unknown_session_is_rejected_cluster_wide() {
        let mut c = cluster(2, CcMode::On);
        let bogus = SessionId(42);
        assert!(matches!(
            c.set_session(bogus),
            Err(GpuError::UnknownSession { session }) if session == bogus
        ));
        assert!(c.close_session(SessionId::DEFAULT).is_err());
    }

    #[test]
    fn interposition_surface_requires_cc() {
        let mut c = cluster(2, CcMode::Off);
        let src = seed_buffer(&mut c, 0, 1);
        let dst = c.device_mut(1).alloc_device(CHUNK).unwrap();
        assert!(matches!(
            c.seal_edge_region(SimTime::ZERO, 0, src, 1, dst, 1),
            Err(GpuError::CcDisabled)
        ));
        assert!(matches!(
            c.send_edge_nop(SimTime::ZERO, 0, 1),
            Err(GpuError::CcDisabled)
        ));
    }

    #[test]
    fn timeline_summary_reports_devices_and_edges() {
        let mut c = cluster(3, CcMode::On);
        let src = seed_buffer(&mut c, 0, 8);
        let dst = c.device_mut(1).alloc_device(CHUNK).unwrap();
        c.memcpy_dtod_async(SimTime::ZERO, 0, src, 1, dst).unwrap();
        let now = c.synchronize(SimTime::ZERO);
        let summary = c.timeline_summary(now);
        assert_eq!(summary.devices.len(), 3);
        assert_eq!(summary.edges.len(), 3);
        assert!(summary.total_edge_serialization() > Duration::ZERO);
        let used = summary.edges.iter().find(|r| r.label == "edge0-1").unwrap();
        assert_eq!(used.ops, 1);
    }

    #[test]
    fn cluster_runtime_serves_the_sessioned_surface() {
        let mut rt = ClusterRuntime::new(cluster(2, CcMode::On));
        assert_eq!(rt.label(), "CC");
        let a = rt.active_session();
        let b = rt.open_session();
        rt.set_session(b).unwrap();
        let src = rt.alloc_host(Payload::Real(vec![3u8; 1024]));
        let dst = rt.alloc_device(1024).unwrap();
        rt.memcpy_htod(SimTime::ZERO, dst, src).unwrap();
        rt.synchronize(SimTime::ZERO);
        let ca = rt.session_counters(a).unwrap();
        let cb = rt.session_counters(b).unwrap();
        assert_eq!((ca.h2d_tx, cb.h2d_tx), (1, 2));
        // The session exists on the edge too, in lockstep with device ids.
        assert!(rt
            .cluster()
            .edge_counters(EdgeId::between(0, 1), b)
            .is_some());
    }

    // ---------------------------------------------------------------
    // Chaos injection
    // ---------------------------------------------------------------

    use pipellm_chaos::FaultPlan;

    fn storm_cluster(n: usize) -> ClusterContext {
        ClusterContext::new(ClusterConfig {
            devices: n,
            cc: CcMode::On,
            device_capacity: 1 << 30,
            chaos: Some(Arc::new(ChaosInjector::new(
                FaultPlan::new(3).with_frame_rate(1.0),
            ))),
            ..ClusterConfig::default()
        })
    }

    #[test]
    fn faulted_dtod_keeps_the_edge_in_lockstep() {
        let mut c = storm_cluster(2);
        let src = seed_buffer(&mut c, 0, 0x11);
        let dst = c.device_mut(1).alloc_device(CHUNK).unwrap();
        let err = c.memcpy_dtod_async(SimTime::ZERO, 0, src, 1, dst);
        assert!(
            matches!(err, Err(GpuError::TransferFaulted { iv: 1, .. })),
            "got {err:?}"
        );
        let edge = EdgeId::between(0, 1);
        let counters = c.edge_counters(edge, SessionId::DEFAULT).unwrap();
        assert!(counters.in_lockstep(), "edge desynced: {counters:?}");
        assert_eq!(counters.h2d_tx, 2, "both ends burned the edge IV");
        assert_eq!(c.edge_stats(edge).unwrap().faulted, 1);
        assert!(
            !matches!(
                c.device(1).device_memory().get(dst).unwrap(),
                Payload::Real(_)
            ),
            "faulted hop must not deliver plaintext"
        );
    }

    #[test]
    fn faulted_submit_dtod_burns_the_validated_iv() {
        let mut c = storm_cluster(2);
        let src = seed_buffer(&mut c, 0, 0x22);
        let dst = c.device_mut(1).alloc_device(CHUNK).unwrap();
        let iv = c.current_edge_iv(0, 1);
        let (sealed, ready) = c
            .seal_edge_region(SimTime::ZERO, 0, src, 1, dst, iv)
            .unwrap();
        let err = c.submit_dtod_sealed(SimTime::ZERO, ready, 0, 1, dst, &sealed, CHUNK);
        assert!(matches!(err, Err(GpuError::TransferFaulted { .. })));
        let edge = EdgeId::between(0, 1);
        let counters = c.edge_counters(edge, SessionId::DEFAULT).unwrap();
        assert!(counters.in_lockstep(), "edge desynced: {counters:?}");
        assert_eq!(counters.h2d_tx, iv + 1);
        // Retry at the fresh IV with the injector suppressed lands the
        // payload — the channel survived the fault.
        let chaos = Arc::clone(c.chaos().unwrap());
        let _quiet = chaos.suppress();
        let iv2 = c.current_edge_iv(0, 1);
        let (sealed2, ready2) = c
            .seal_edge_region(SimTime::ZERO, 0, src, 1, dst, iv2)
            .unwrap();
        c.submit_dtod_sealed(SimTime::ZERO, ready2, 0, 1, dst, &sealed2, CHUNK)
            .unwrap();
        assert_eq!(
            c.device(1).device_memory().get(dst).unwrap(),
            &Payload::Real(vec![0x22; CHUNK as usize])
        );
    }

    #[test]
    fn set_chaos_reaches_devices_and_edges() {
        let mut c = cluster(2, CcMode::On);
        assert!(c.chaos().is_none());
        c.set_chaos(Arc::new(ChaosInjector::new(
            FaultPlan::new(9).with_frame_rate(1.0),
        )));
        // Host link of device 0 faults...
        let src = c.device_mut(0).host_mut().alloc_real(vec![7; 64]);
        let dst = c.device_mut(0).alloc_device(64).unwrap();
        let err = c.device_mut(0).memcpy_htod_async(SimTime::ZERO, dst, src);
        assert!(matches!(err, Err(GpuError::TransferFaulted { .. })));
        // ...and so does the edge.
        let esrc = seed_buffer(&mut c, 0, 0x33);
        let edst = c.device_mut(1).alloc_device(CHUNK).unwrap();
        let err = c.memcpy_dtod_async(SimTime::ZERO, 0, esrc, 1, edst);
        assert!(matches!(err, Err(GpuError::TransferFaulted { .. })));
    }
}
