//! An MPK/PKU-style page-protection registry.
//!
//! PipeLLM uses memory protection twice (paper §5.2, §5.4, §6):
//!
//! 1. **Write protection for validation**: after pre-encrypting a chunk, the
//!    plaintext pages are write-protected. If the application writes them,
//!    the fault handler invalidates the pre-encrypted ciphertext so stale
//!    data is never sent.
//! 2. **Access revocation for asynchronous decryption**: a swapped-out
//!    chunk's destination pages are read+write revoked until background
//!    decryption completes; a fault forces synchronous decryption.
//!
//! The registry tracks protected ranges tagged with an opaque `u64` cookie
//! (the owner's entry id) and reports faults by returning the cookies of
//! every range a memory access hit.

use crate::memory::HostRegion;
use std::collections::BTreeMap;

/// What kind of protection a range carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protection {
    /// Writes fault; reads proceed (validation of pre-encrypted data).
    WriteProtected,
    /// Reads and writes fault (asynchronous-decryption placeholder).
    AccessRevoked,
}

/// Kind of access an application performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// A load.
    Read,
    /// A store.
    Write,
}

#[derive(Debug, Clone)]
struct Range {
    region: HostRegion,
    protection: Protection,
    cookie: u64,
}

/// Registry of protected ranges with fault accounting.
#[derive(Debug, Default)]
pub struct PageRegistry {
    // Keyed by range start address; ranges never overlap because host
    // allocations are page-aligned and chunk-granular.
    ranges: BTreeMap<u64, Range>,
    write_faults: u64,
    access_faults: u64,
}

impl PageRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        PageRegistry::default()
    }

    /// Protects `region` with the given mode, tagging faults with `cookie`.
    ///
    /// Re-protecting a region replaces its previous protection.
    pub fn protect(&mut self, region: HostRegion, protection: Protection, cookie: u64) {
        self.ranges.insert(
            region.addr.0,
            Range {
                region,
                protection,
                cookie,
            },
        );
    }

    /// Removes protection from the range starting exactly at `region.addr`.
    /// Returns whether a protection existed.
    pub fn unprotect(&mut self, region: HostRegion) -> bool {
        self.ranges.remove(&region.addr.0).is_some()
    }

    /// Whether the exact range starting at `region.addr` is protected.
    pub fn protection_of(&self, region: HostRegion) -> Option<Protection> {
        self.ranges.get(&region.addr.0).map(|r| r.protection)
    }

    /// Simulates the MMU check for an application access to `region`.
    ///
    /// Returns the cookies of all protected ranges the access faulted on,
    /// removing them from the registry (the fault handler downgrades the
    /// pages to plain access after resolving, as PipeLLM does). Reads only
    /// fault on [`Protection::AccessRevoked`] ranges; writes fault on both.
    pub fn access(&mut self, region: HostRegion, access: Access) -> Vec<u64> {
        if region.len == 0 {
            return Vec::new();
        }
        let mut hit = Vec::new();
        // Candidate ranges start at or before the region's last byte; scan
        // those that could overlap. The bound is inclusive and computed
        // saturating so accesses near `u64::MAX` cannot overflow (a checked
        // `addr + len` panics in debug builds for such ranges).
        let last_byte = region.addr.0.saturating_add(region.len - 1);
        let overlapping: Vec<u64> = self
            .ranges
            .range(..=last_byte)
            .filter(|(_, r)| r.region.overlaps(&region))
            .filter(|(_, r)| match (r.protection, access) {
                (Protection::WriteProtected, Access::Read) => false,
                (Protection::WriteProtected, Access::Write) => true,
                (Protection::AccessRevoked, _) => true,
            })
            .map(|(start, _)| *start)
            .collect();
        for start in overlapping {
            let range = self.ranges.remove(&start).expect("key came from the map");
            match access {
                Access::Write => self.write_faults += 1,
                Access::Read => self.access_faults += 1,
            }
            hit.push(range.cookie);
        }
        hit
    }

    /// Total write faults observed.
    pub fn write_faults(&self) -> u64 {
        self.write_faults
    }

    /// Total read faults on access-revoked ranges.
    pub fn access_faults(&self) -> u64 {
        self.access_faults
    }

    /// Number of currently protected ranges.
    pub fn protected_ranges(&self) -> usize {
        self.ranges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::HostAddr;

    fn region(addr: u64, len: u64) -> HostRegion {
        HostRegion {
            addr: HostAddr(addr),
            len,
        }
    }

    #[test]
    fn write_fault_on_write_protected_range() {
        let mut reg = PageRegistry::new();
        reg.protect(region(0x1000, 0x100), Protection::WriteProtected, 7);
        assert!(reg.access(region(0x1000, 0x100), Access::Read).is_empty());
        let cookies = reg.access(region(0x1000, 0x100), Access::Write);
        assert_eq!(cookies, vec![7]);
        assert_eq!(reg.write_faults(), 1);
        // The fault handler removed the protection.
        assert!(reg.access(region(0x1000, 0x100), Access::Write).is_empty());
    }

    #[test]
    fn reads_fault_only_on_revoked_ranges() {
        let mut reg = PageRegistry::new();
        reg.protect(region(0x2000, 0x80), Protection::AccessRevoked, 9);
        let cookies = reg.access(region(0x2000, 0x10), Access::Read);
        assert_eq!(cookies, vec![9]);
        assert_eq!(reg.access_faults(), 1);
    }

    #[test]
    fn partial_overlap_still_faults() {
        let mut reg = PageRegistry::new();
        reg.protect(region(0x1000, 0x1000), Protection::WriteProtected, 1);
        // A write that straddles the protected range's tail.
        let cookies = reg.access(region(0x1f00, 0x200), Access::Write);
        assert_eq!(cookies, vec![1]);
    }

    #[test]
    fn disjoint_access_does_not_fault() {
        let mut reg = PageRegistry::new();
        reg.protect(region(0x1000, 0x100), Protection::WriteProtected, 1);
        assert!(reg.access(region(0x5000, 0x100), Access::Write).is_empty());
        assert_eq!(reg.write_faults(), 0);
        assert_eq!(reg.protected_ranges(), 1);
    }

    #[test]
    fn one_access_can_hit_multiple_ranges() {
        let mut reg = PageRegistry::new();
        reg.protect(region(0x1000, 0x100), Protection::WriteProtected, 1);
        reg.protect(region(0x2000, 0x100), Protection::WriteProtected, 2);
        let mut cookies = reg.access(region(0x0, 0x10000), Access::Write);
        cookies.sort_unstable();
        assert_eq!(cookies, vec![1, 2]);
        assert_eq!(reg.write_faults(), 2);
    }

    #[test]
    fn unprotect_removes_range() {
        let mut reg = PageRegistry::new();
        let r = region(0x3000, 0x40);
        reg.protect(r, Protection::AccessRevoked, 5);
        assert_eq!(reg.protection_of(r), Some(Protection::AccessRevoked));
        assert!(reg.unprotect(r));
        assert!(!reg.unprotect(r));
        assert!(reg.access(r, Access::Write).is_empty());
    }

    #[test]
    fn ranges_near_address_space_top_do_not_overflow() {
        // Regression test: the scan bound was `addr + len`, which panics
        // on overflow in debug builds for ranges near `u64::MAX` (the
        // sentinel regions the speculation decoys use live up there).
        let mut reg = PageRegistry::new();
        let top = region(u64::MAX - 0x10, 0x11); // ends exactly at u64::MAX
        reg.protect(top, Protection::AccessRevoked, 3);
        // An access whose end saturates must still fault on the range...
        let cookies = reg.access(region(u64::MAX - 0x20, 0x100), Access::Read);
        assert_eq!(cookies, vec![3]);
        // ...and one that misses it must not.
        reg.protect(top, Protection::AccessRevoked, 3);
        assert!(reg
            .access(region(u64::MAX - 0x100, 0x10), Access::Read)
            .is_empty());
        // A zero-length access faults on nothing.
        assert!(reg.access(region(u64::MAX, 0), Access::Write).is_empty());
        assert_eq!(reg.protected_ranges(), 1);
    }

    #[test]
    fn reprotect_replaces_mode() {
        let mut reg = PageRegistry::new();
        let r = region(0x4000, 0x40);
        reg.protect(r, Protection::WriteProtected, 1);
        reg.protect(r, Protection::AccessRevoked, 2);
        let cookies = reg.access(r, Access::Read);
        assert_eq!(cookies, vec![2]);
    }
}
