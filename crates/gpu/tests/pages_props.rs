//! Property tests for the page-protection registry — the soundness basis of
//! PipeLLM's validator (§5.2): a protected range always faults on a
//! conflicting access, and faulting always clears the protection.

use pipellm_gpu::memory::{HostAddr, HostRegion};
use pipellm_gpu::pages::{Access, PageRegistry, Protection};
use proptest::prelude::*;

fn region(slot: u8, len: u16) -> HostRegion {
    // Page-aligned, non-adjacent slots so distinct slots never overlap.
    HostRegion {
        addr: HostAddr(u64::from(slot) * 0x10_000),
        len: u64::from(len).max(1),
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    ProtectWrite(u8),
    Revoke(u8),
    Unprotect(u8),
    Read(u8),
    Write(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8).prop_map(Op::ProtectWrite),
        (0u8..8).prop_map(Op::Revoke),
        (0u8..8).prop_map(Op::Unprotect),
        (0u8..8).prop_map(Op::Read),
        (0u8..8).prop_map(Op::Write),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A shadow model of the registry: faults fire exactly when the shadow
    /// says the slot is protected against that access, and protections are
    /// consumed by the fault.
    #[test]
    fn registry_matches_shadow_model(
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        let mut registry = PageRegistry::new();
        let mut shadow: [Option<(Protection, u64)>; 8] = [None; 8];
        let mut next_cookie = 1u64;
        for op in ops {
            match op {
                Op::ProtectWrite(s) => {
                    registry.protect(region(s, 0x100), Protection::WriteProtected, next_cookie);
                    shadow[s as usize] = Some((Protection::WriteProtected, next_cookie));
                    next_cookie += 1;
                }
                Op::Revoke(s) => {
                    registry.protect(region(s, 0x100), Protection::AccessRevoked, next_cookie);
                    shadow[s as usize] = Some((Protection::AccessRevoked, next_cookie));
                    next_cookie += 1;
                }
                Op::Unprotect(s) => {
                    let existed = registry.unprotect(region(s, 0x100));
                    prop_assert_eq!(existed, shadow[s as usize].is_some());
                    shadow[s as usize] = None;
                }
                Op::Read(s) => {
                    let cookies = registry.access(region(s, 0x80), Access::Read);
                    match shadow[s as usize] {
                        Some((Protection::AccessRevoked, cookie)) => {
                            prop_assert_eq!(cookies, vec![cookie]);
                            shadow[s as usize] = None; // fault clears it
                        }
                        _ => prop_assert!(cookies.is_empty()),
                    }
                }
                Op::Write(s) => {
                    let cookies = registry.access(region(s, 0x80), Access::Write);
                    match shadow[s as usize] {
                        Some((_, cookie)) => {
                            prop_assert_eq!(cookies, vec![cookie]);
                            shadow[s as usize] = None;
                        }
                        None => prop_assert!(cookies.is_empty()),
                    }
                }
            }
        }
        let live = shadow.iter().filter(|p| p.is_some()).count();
        prop_assert_eq!(registry.protected_ranges(), live);
    }

    /// Overlap detection: a write anywhere inside a protected range faults,
    /// a write outside never does.
    #[test]
    fn faults_fire_iff_ranges_overlap(
        start in 0u64..1000,
        len in 1u64..500,
        probe_start in 0u64..1500,
        probe_len in 1u64..500,
    ) {
        let mut registry = PageRegistry::new();
        let protected = HostRegion { addr: HostAddr(start), len };
        let probe = HostRegion { addr: HostAddr(probe_start), len: probe_len };
        registry.protect(protected, Protection::WriteProtected, 7);
        let cookies = registry.access(probe, Access::Write);
        let overlaps = protected.overlaps(&probe);
        prop_assert_eq!(!cookies.is_empty(), overlaps, "{:?} vs {:?}", protected, probe);
    }
}
