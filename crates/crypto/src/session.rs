//! The multi-tenant session layer: per-session secure channels derived
//! from one root secret.
//!
//! A production confidential-serving deployment multiplexes many tenants
//! over one GPU. Each tenant's CVM performs its own SPDM key exchange at
//! attestation time, so every tenant owns an independent pair of channel
//! keys and an independent pair of IV counters — while all tenants contend
//! for the same CPU crypto workers, PCIe link, and device memory. This
//! module provides the key-management half of that picture:
//!
//! - [`SessionId`]: an opaque per-tenant identity threaded through the GPU
//!   runtime's transfer API;
//! - [`SessionManager`]: derives per-session [`ChannelKeys`] from a root
//!   secret (the stand-in for the per-tenant SPDM exchange), owns one
//!   channel pair ([`SecureChannel`]) per session, and rekeys sessions
//!   whose IV counters approach the exhaustion headroom
//!   ([`crate::channel::IV_LIMIT`]).
//!
//! Key separation is structural: two sessions (or two epochs of one
//! session) never share a key, so ciphertext sealed under one session can
//! never authenticate under another — the cross-tenant isolation property
//! the property tests in `tests/session_props.rs` pin down.

use crate::channel::{ChannelKeys, SecureChannel, IV_HEADROOM};
use crate::engine::CryptoEngine;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A channel pair: both directions (H2D and D2H) of one session's secure
/// link, i.e. the host and device endpoints with mirrored key material.
pub type ChannelPair = SecureChannel;

/// Opaque identity of one tenant session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl SessionId {
    /// The default session every context opens at construction, preserving
    /// the single-tenant API: session-unaware callers implicitly talk to
    /// this session.
    pub const DEFAULT: SessionId = SessionId(0);
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// One session's live state inside the manager.
#[derive(Debug, Clone)]
struct Session {
    /// Key epoch: bumped by every rekey, mixed into the derivation so the
    /// new keys share nothing with the old ones.
    epoch: u32,
    channel: ChannelPair,
}

/// Derives per-session channel keys from a root secret and owns the
/// resulting channel pairs.
///
/// Derivation is `root secret × session id × epoch × direction →
/// 32-byte key` through a SplitMix64 sponge — simulation-grade like
/// [`ChannelKeys::from_seed`], but with the same structural guarantees a
/// real KDF would give: distinct inputs yield decorrelated keys, and no
/// session ever learns anything about another session's keys.
#[derive(Clone)]
pub struct SessionManager {
    root: [u8; 32],
    next_id: u64,
    rekey_headroom: u64,
    sessions: BTreeMap<SessionId, Session>,
    /// Shared multi-threaded crypto engine, installed on every session's
    /// channel pair (existing, newly opened, and rekeyed alike).
    engine: Option<Arc<CryptoEngine>>,
}

impl fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionManager")
            .field("sessions", &self.sessions.len())
            .field("next_id", &self.next_id)
            .field("rekey_headroom", &self.rekey_headroom)
            .finish()
    }
}

/// Derives a decorrelated 64-bit sub-seed from `seed` and a role `tag` —
/// one step of the same SplitMix64 sponge the session KDF absorbs with.
/// Higher layers use it to fan one root seed out into per-device and
/// per-edge key roots without re-implementing the mixing step.
pub fn derive_subseed(seed: u64, tag: u64) -> u64 {
    let mut state = seed ^ tag.wrapping_mul(0x2545_f491_4f6c_dd1d);
    mix(&mut state)
}

/// SplitMix64 step shared by the derivation sponge.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives one direction key: absorb the root, session, epoch, and a
/// direction salt; squeeze 32 bytes.
fn derive_direction_key(root: &[u8; 32], session: SessionId, epoch: u32, salt: u8) -> [u8; 32] {
    let mut state = u64::from(salt).wrapping_mul(0x2545_f491_4f6c_dd1d);
    for chunk in root.chunks(8) {
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk);
        state ^= u64::from_le_bytes(word);
        mix(&mut state);
    }
    state ^= session.0;
    mix(&mut state);
    state ^= u64::from(epoch) << 32 | u64::from(epoch);
    mix(&mut state);
    let mut key = [0u8; 32];
    for chunk in key.chunks_mut(8) {
        chunk.copy_from_slice(&mix(&mut state).to_le_bytes());
    }
    key
}

impl SessionManager {
    /// Creates a manager over an explicit 32-byte root secret. No session
    /// exists yet; open the default one with [`SessionManager::open`].
    pub fn new(root: [u8; 32]) -> Self {
        SessionManager {
            root,
            next_id: 0,
            rekey_headroom: IV_HEADROOM,
            sessions: BTreeMap::new(),
            engine: None,
        }
    }

    /// Creates a manager whose root secret is expanded from a u64 seed
    /// (simulation convenience, mirroring [`ChannelKeys::from_seed`]).
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut root = [0u8; 32];
        for chunk in root.chunks_mut(8) {
            chunk.copy_from_slice(&mix(&mut state).to_le_bytes());
        }
        Self::new(root)
    }

    /// Sets how many IVs may remain before [`SessionManager::needs_rekey`]
    /// reports a session as due (defaults to the channel's own
    /// [`IV_HEADROOM`]).
    pub fn with_rekey_headroom(mut self, headroom: u64) -> Self {
        self.rekey_headroom = headroom;
        self
    }

    /// Installs the shared multi-threaded crypto engine on every live
    /// session's channel pair, and on every channel opened or rekeyed from
    /// now on — the k of this pool is the same k the simulated
    /// `WorkerPool` timeline models.
    pub fn set_engine(&mut self, engine: Arc<CryptoEngine>) {
        for session in self.sessions.values_mut() {
            session.channel.set_engine(&engine);
        }
        self.engine = Some(engine);
    }

    /// The shared crypto engine, if one is installed.
    pub fn engine(&self) -> Option<&Arc<CryptoEngine>> {
        self.engine.as_ref()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no session is open.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Live session ids, in creation order.
    pub fn ids(&self) -> Vec<SessionId> {
        self.sessions.keys().copied().collect()
    }

    /// Whether `id` names a live session.
    pub fn contains(&self, id: SessionId) -> bool {
        self.sessions.contains_key(&id)
    }

    /// Derives the channel keys for (`id`, `epoch`) without opening a
    /// session — the deterministic KDF both endpoints would run after the
    /// per-tenant attestation exchange.
    pub fn derive_keys(&self, id: SessionId, epoch: u32) -> ChannelKeys {
        ChannelKeys::new(
            derive_direction_key(&self.root, id, epoch, 0x1d),
            derive_direction_key(&self.root, id, epoch, 0x2e),
        )
    }

    /// Opens a new session with freshly derived keys and both IV counters
    /// at 1 (the paper's Figure 1 start state).
    pub fn open(&mut self) -> SessionId {
        self.open_with_initial_ivs(1, 1)
    }

    /// Opens a new session with explicit starting IVs per direction (test
    /// support for exercising counters near the exhaustion limit).
    pub fn open_with_initial_ivs(&mut self, h2d_iv: u64, d2h_iv: u64) -> SessionId {
        let id = SessionId(self.next_id);
        self.next_id += 1;
        let mut channel = SecureChannel::with_initial_ivs(self.derive_keys(id, 0), h2d_iv, d2h_iv);
        if let Some(engine) = &self.engine {
            channel.set_engine(engine);
        }
        self.sessions.insert(id, Session { epoch: 0, channel });
        id
    }

    /// Closes a session, discarding its keys. Returns whether it existed.
    pub fn close(&mut self, id: SessionId) -> bool {
        self.sessions.remove(&id).is_some()
    }

    /// The session's channel pair.
    pub fn channel(&self, id: SessionId) -> Option<&ChannelPair> {
        self.sessions.get(&id).map(|s| &s.channel)
    }

    /// Mutable access to the session's channel pair.
    pub fn channel_mut(&mut self, id: SessionId) -> Option<&mut ChannelPair> {
        self.sessions.get_mut(&id).map(|s| &mut s.channel)
    }

    /// The session's current key epoch.
    pub fn epoch(&self, id: SessionId) -> Option<u32> {
        self.sessions.get(&id).map(|s| s.epoch)
    }

    /// Whether either direction of the session's channel has fewer than
    /// the configured headroom of IVs left before exhaustion.
    pub fn needs_rekey(&self, id: SessionId) -> Option<bool> {
        self.sessions.get(&id).map(|s| {
            s.channel.host().tx().remaining_ivs() < self.rekey_headroom
                || s.channel.device().tx().remaining_ivs() < self.rekey_headroom
        })
    }

    /// Rekeys the session: bumps the epoch, derives fresh keys, and resets
    /// both IV counters to 1 — the SPDM re-exchange a real deployment runs
    /// before a channel's nonce space runs dry. Any ciphertext sealed under
    /// the old epoch is invalidated (it will fail authentication), so the
    /// caller must drain speculative state first.
    ///
    /// Returns the new epoch.
    pub fn rekey(&mut self, id: SessionId) -> Option<u32> {
        let epoch = self.sessions.get(&id)?.epoch + 1;
        let keys = self.derive_keys(id, epoch);
        let mut channel = SecureChannel::new(keys);
        if let Some(engine) = &self.engine {
            channel.set_engine(engine);
        }
        let session = self.sessions.get_mut(&id).expect("checked above");
        session.epoch = epoch;
        session.channel = channel;
        Some(epoch)
    }

    /// The IV-exhaustion-aware rekey hook: rekeys the session iff it is
    /// inside the configured headroom. Returns whether a rekey happened.
    pub fn maybe_rekey(&mut self, id: SessionId) -> Option<bool> {
        if self.needs_rekey(id)? {
            self.rekey(id);
            Some(true)
        } else {
            Some(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::IV_LIMIT;
    use crate::CryptoError;

    #[test]
    fn sessions_get_distinct_monotonic_ids() {
        let mut mgr = SessionManager::from_seed(7);
        let a = mgr.open();
        let b = mgr.open();
        assert_eq!(a, SessionId::DEFAULT);
        assert_eq!(b, SessionId(1));
        assert_eq!(mgr.ids(), vec![a, b]);
        assert!(mgr.contains(a) && mgr.contains(b));
    }

    #[test]
    fn cross_session_ciphertext_fails_authentication() {
        let mut mgr = SessionManager::from_seed(7);
        let a = mgr.open();
        let b = mgr.open();
        let sealed = mgr.channel_mut(a).unwrap().host_mut().seal(b"a").unwrap();
        let err = mgr
            .channel_mut(b)
            .unwrap()
            .device_mut()
            .open(&sealed)
            .unwrap_err();
        assert!(matches!(err, CryptoError::AuthenticationFailed { .. }));
        // The right session still opens it.
        assert_eq!(
            mgr.channel_mut(a)
                .unwrap()
                .device_mut()
                .open(&sealed)
                .unwrap(),
            b"a"
        );
    }

    #[test]
    fn derivation_is_deterministic_and_epoch_separated() {
        let mgr = SessionManager::from_seed(9);
        let k0 = mgr.derive_keys(SessionId(3), 0);
        let k0_again = mgr.derive_keys(SessionId(3), 0);
        let k1 = mgr.derive_keys(SessionId(3), 1);
        // Same inputs → same channel behaviour; different epoch → different.
        let mut ch_a = SecureChannel::new(k0);
        let mut ch_b = SecureChannel::new(k0_again);
        let mut ch_e = SecureChannel::new(k1);
        let sealed = ch_a.host_mut().seal(b"x").unwrap();
        assert_eq!(ch_b.device_mut().open(&sealed).unwrap(), b"x");
        assert!(ch_e.device_mut().open(&sealed).is_err());
    }

    #[test]
    fn rekey_resets_counters_and_invalidates_old_ciphertext() {
        let mut mgr = SessionManager::from_seed(1);
        let id = mgr.open();
        let stale = mgr
            .channel_mut(id)
            .unwrap()
            .host_mut()
            .seal(b"old")
            .unwrap();
        assert_eq!(mgr.channel(id).unwrap().host().tx().next_iv(), 2);
        assert_eq!(mgr.rekey(id), Some(1));
        assert_eq!(mgr.epoch(id), Some(1));
        let ch = mgr.channel_mut(id).unwrap();
        assert_eq!(ch.host().tx().next_iv(), 1, "counters restart after rekey");
        assert!(
            ch.device_mut().open(&stale).is_err(),
            "old-epoch ciphertext must not authenticate"
        );
        let fresh = ch.host_mut().seal(b"new").unwrap();
        assert_eq!(ch.device_mut().open(&fresh).unwrap(), b"new");
    }

    #[test]
    fn exhausted_counter_triggers_rekey_hook() {
        let mut mgr = SessionManager::from_seed(4);
        // Fresh session: far from exhaustion.
        let fresh = mgr.open();
        assert_eq!(mgr.needs_rekey(fresh), Some(false));
        assert_eq!(mgr.maybe_rekey(fresh), Some(false));
        // Session whose H2D counter sits one IV short of the limit.
        let near = mgr.open_with_initial_ivs(IV_LIMIT - 1, 1);
        assert_eq!(mgr.needs_rekey(near), Some(true));
        // Sealing once works; the next seal would be refused...
        let ch = mgr.channel_mut(near).unwrap();
        ch.host_mut().seal(b"last").unwrap();
        assert!(matches!(
            ch.host_mut().seal(b"one too many"),
            Err(CryptoError::IvExhausted { .. })
        ));
        // ...unless the hook rekeys first.
        assert_eq!(mgr.maybe_rekey(near), Some(true));
        assert_eq!(mgr.epoch(near), Some(1));
        mgr.channel_mut(near)
            .unwrap()
            .host_mut()
            .seal(b"ok")
            .unwrap();
    }

    #[test]
    fn close_forgets_the_session() {
        let mut mgr = SessionManager::from_seed(2);
        let id = mgr.open();
        assert!(mgr.close(id));
        assert!(!mgr.close(id));
        assert!(mgr.channel(id).is_none());
        assert!(mgr.needs_rekey(id).is_none());
        assert!(mgr.is_empty());
    }
}
