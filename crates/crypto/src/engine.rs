//! The multi-threaded crypto engine: a persistent pool of CPU workers
//! servicing seal, open, and deferred-open jobs.
//!
//! The paper's CPU encryption engine sustains its Figure 2 throughput by
//! running AES-GCM across multiple threads (§7.2: encryption "scales
//! near-linearly" with thread count until it saturates PCIe). This module
//! is the real-bytes counterpart of the simulator's k-server
//! [`WorkerPool`] timeline: one [`CryptoEngine`] owns `k` OS threads
//! (spawned once, parked on a condvar) and serves two kinds of work:
//!
//! - **Scoped chunk gangs** ([`CryptoEngine::run_scoped`]): the chunked
//!   AES-GCM path in [`crate::gcm`] splits one payload into block-aligned
//!   segments and seals them concurrently — CTR is seekable, so each
//!   worker generates its keystream from the segment's counter offset and
//!   folds a partial GHASH over its own block range; the caller combines
//!   the partials into the standard tag. The submitting thread runs one
//!   segment itself and *helps* drain the gang queue while it waits, so a
//!   gang never deadlocks behind slower background work.
//! - **Background jobs** ([`CryptoEngine::submit`]): deferred opens (the
//!   paper's §5.4 decoupled decryption workers) and other whole-buffer
//!   seals/opens run asynchronously; the caller holds a [`JobHandle`] and
//!   joins it when the plaintext is actually needed.
//!
//! Gang tasks are higher priority than background jobs: a blocking
//! on-demand seal on the critical path never queues behind a backlog of
//! speculative decrypts.
//!
//! Worker threads never start a nested gang (a thread-local marks them),
//! so a background job that seals or opens through an engine-attached
//! [`crate::gcm::AesGcm`] simply runs the sequential path — background
//! work pipelines *across* workers instead of ganging *within* one, which
//! is also how the GPU context accounts it on the simulated timeline.

// Lifetime erasure for the scoped gang dispatch is the one unsafe
// construct outside `hw`: see the SAFETY discussion on `run_scoped`.
#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

#[cfg(doc)]
use crate::gcm::AesGcm;

/// Sim-layer twin of this pool (doc link only).
///
/// [`WorkerPool`]: ../../pipellm_sim/resource/struct.WorkerPool.html
const _DOC: () = ();

/// An erased, queueable unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The two-priority job queue shared by all workers.
struct State {
    /// Scoped gang segments (chunked seal/open): drained first.
    gang: VecDeque<Job>,
    /// Background seal/open/deferred-open jobs.
    background: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when work arrives or shutdown begins.
    work: Condvar,
}

impl Shared {
    fn push_gang(&self, jobs: impl IntoIterator<Item = Job>) {
        let mut st = self.state.lock().expect("engine mutex");
        let mut n = 0usize;
        for job in jobs {
            st.gang.push_back(job);
            n += 1;
        }
        drop(st);
        for _ in 0..n {
            self.work.notify_one();
        }
    }

    fn push_background(&self, job: Job) {
        let mut st = self.state.lock().expect("engine mutex");
        st.background.push_back(job);
        drop(st);
        self.work.notify_one();
    }

    /// Pops a gang task if one is queued (the submitter's help path).
    fn try_pop_gang(&self) -> Option<Job> {
        self.state.lock().expect("engine mutex").gang.pop_front()
    }

    /// Blocks until a job is available or shutdown; `None` means exit.
    fn next_job(&self) -> Option<Job> {
        let mut st = self.state.lock().expect("engine mutex");
        loop {
            if let Some(job) = st.gang.pop_front() {
                return Some(job);
            }
            if let Some(job) = st.background.pop_front() {
                return Some(job);
            }
            if st.shutdown {
                return None;
            }
            st = self.work.wait(st).expect("engine mutex");
        }
    }
}

thread_local! {
    /// Set on engine worker threads: a worker never starts a nested gang,
    /// which is what makes gang dispatch deadlock-free (the threads a gang
    /// waits on never themselves wait on the pool).
    static ON_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Completion latch of one scoped gang.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(tasks: usize) -> Self {
        Latch {
            remaining: Mutex::new(tasks),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn complete_one(&self) {
        let mut left = self.remaining.lock().expect("latch mutex");
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().expect("latch mutex") == 0
    }

    fn wait_done(&self) {
        let mut left = self.remaining.lock().expect("latch mutex");
        while *left > 0 {
            left = self.done.wait(left).expect("latch mutex");
        }
    }
}

/// Result slot of one background job.
struct JobSlot<T> {
    result: Mutex<Option<std::thread::Result<T>>>,
    done: Condvar,
}

/// Handle to a background job submitted with [`CryptoEngine::submit`].
///
/// Dropping the handle detaches the job: it still runs, its result is
/// discarded — the semantics a cancelled deferred open wants.
pub struct JobHandle<T> {
    slot: Arc<JobSlot<T>>,
}

impl<T> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("done", &self.is_done())
            .finish()
    }
}

impl<T> JobHandle<T> {
    /// Whether the job has finished (its result is ready to take).
    pub fn is_done(&self) -> bool {
        self.slot.result.lock().expect("job mutex").is_some()
    }

    /// Blocks until the job finishes and returns its result. If the job
    /// panicked on the worker, the panic resumes here.
    pub fn wait(self) -> T {
        let mut result = self.slot.result.lock().expect("job mutex");
        while result.is_none() {
            result = self.slot.done.wait(result).expect("job mutex");
        }
        match result.take().expect("checked above") {
            Ok(value) => value,
            Err(panic) => resume_unwind(panic),
        }
    }
}

/// A persistent pool of crypto worker threads (see the module docs).
pub struct CryptoEngine {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    gang_width: usize,
}

impl std::fmt::Debug for CryptoEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CryptoEngine")
            .field("workers", &self.workers)
            .field("gang_width", &self.gang_width)
            .finish()
    }
}

impl CryptoEngine {
    /// Spawns a pool of `workers` threads (clamped to `1..=64`). The
    /// threads live until the engine is dropped. The gang width adapts to
    /// the host: one gang never spans more tasks than
    /// [`CryptoEngine::host_parallelism`] cores, regardless of the
    /// configured pool size (oversubscribed gangs context-switch instead
    /// of progressing — see [`CryptoEngine::gang_width`]).
    pub fn new(workers: usize) -> Self {
        let workers = workers.clamp(1, 64);
        Self::with_gang_width(workers, workers.min(Self::host_parallelism()))
    }

    /// Spawns a pool with an explicit gang width (clamped to
    /// `1..=workers`), overriding the adaptive
    /// `workers.min(host_parallelism)` default. Test and bench support:
    /// forces the chunked paths to gang even on hosts with fewer cores
    /// than workers (or to stay sequential on many-core hosts).
    pub fn with_gang_width(workers: usize, gang_width: usize) -> Self {
        let workers = workers.clamp(1, 64);
        let gang_width = gang_width.clamp(1, workers);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                gang: VecDeque::new(),
                background: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("crypto-worker-{i}"))
                    .spawn(move || {
                        ON_WORKER.with(|w| w.set(true));
                        while let Some(job) = shared.next_job() {
                            // Panics are contained per job; scoped tasks
                            // record them in their latch, background jobs
                            // in their slot.
                            let _ = catch_unwind(AssertUnwindSafe(job));
                        }
                    })
                    .expect("spawn crypto worker")
            })
            .collect();
        CryptoEngine {
            shared,
            handles,
            workers,
            gang_width,
        }
    }

    /// An engine sized to this machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        Self::new(Self::host_parallelism())
    }

    /// The host's available parallelism, sampled once per process.
    pub fn host_parallelism() -> usize {
        static HOST: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        *HOST.get_or_init(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of tasks one gang submission fans out to: the configured
    /// pool size capped at the host's available parallelism. Extra pool
    /// threads still serve background jobs, but a gang wider than the
    /// core count only adds scheduling churn, so the chunked GCM paths
    /// size (and gate) themselves on this instead of [`workers`].
    ///
    /// [`workers`]: CryptoEngine::workers
    pub fn gang_width(&self) -> usize {
        self.gang_width
    }

    /// Whether the calling thread is one of this (or any) engine's
    /// workers. The chunked GCM paths consult this to avoid nested gangs.
    pub fn on_worker_thread() -> bool {
        ON_WORKER.with(std::cell::Cell::get)
    }

    /// Runs a set of tasks that may borrow from the caller's stack,
    /// returning when every task has completed. Tasks are dispatched to
    /// the worker pool at gang priority; the calling thread executes the
    /// first task itself and helps drain the gang queue while waiting, so
    /// the gang makes progress even when every worker is busy.
    ///
    /// # Panics
    ///
    /// If any task panics, the panic is re-raised here — after all tasks
    /// have finished, so borrows are never outlived.
    pub fn run_scoped<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        let mut tasks = tasks;
        match tasks.len() {
            0 => return,
            1 => {
                let task = tasks.pop().expect("len checked");
                (task)();
                return;
            }
            _ => {}
        }
        let latch = Arc::new(Latch::new(tasks.len()));
        let mut wrapped: Vec<Job> = Vec::with_capacity(tasks.len());
        for task in tasks {
            let latch = Arc::clone(&latch);
            let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                if catch_unwind(AssertUnwindSafe(task)).is_err() {
                    latch.panicked.store(true, Ordering::Release);
                }
                latch.complete_one();
            });
            // SAFETY: the erased task is queued on the pool, executed at
            // most once, and `run_scoped` does not return (or unwind —
            // every path below is panic-free) until the latch counts all
            // tasks complete. Every borrow inside the closure therefore
            // strictly outlives its execution. The latch itself is owned
            // via `Arc`, not borrowed.
            let job: Job = unsafe {
                std::mem::transmute::<
                    Box<dyn FnOnce() + Send + 'scope>,
                    Box<dyn FnOnce() + Send + 'static>,
                >(job)
            };
            wrapped.push(job);
        }
        let first = wrapped.remove(0);
        self.shared.push_gang(wrapped);
        (first)();
        // Help: drain gang tasks (ours or another caller's leaf segments)
        // instead of sleeping while workers are busy.
        while !latch.is_done() {
            match self.shared.try_pop_gang() {
                Some(job) => (job)(),
                None => latch.wait_done(),
            }
        }
        if latch.panicked.load(Ordering::Acquire) {
            panic!("crypto engine gang task panicked");
        }
    }

    /// Submits a background job and returns a handle to its result. Jobs
    /// run at lower priority than scoped gangs, in submission order.
    pub fn submit<T, F>(&self, job: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let slot = Arc::new(JobSlot {
            result: Mutex::new(None),
            done: Condvar::new(),
        });
        let out = Arc::clone(&slot);
        self.shared.push_background(Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(job));
            *out.result.lock().expect("job mutex") = Some(result);
            out.done.notify_all();
        }));
        JobHandle { slot }
    }
}

impl Drop for CryptoEngine {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("engine mutex");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        // A background job can own the last reference to the engine (e.g.
        // a deferred open capturing an engine-attached `AesGcm`), in which
        // case this drop runs *on a worker thread*. Joining that thread
        // from itself would deadlock; skip it — it exits on its own right
        // after the current job, having already observed `shutdown`.
        let me = std::thread::current().id();
        for handle in self.handles.drain(..) {
            if handle.thread().id() != me {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scoped_tasks_all_run_and_borrow_the_stack() {
        let engine = CryptoEngine::new(4);
        let mut slots = [0u64; 16];
        {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    let task: Box<dyn FnOnce() + Send + '_> =
                        Box::new(move || *slot = (i as u64 + 1) * 3);
                    task
                })
                .collect();
            engine.run_scoped(tasks);
        }
        for (i, v) in slots.iter().enumerate() {
            assert_eq!(*v, (i as u64 + 1) * 3);
        }
    }

    #[test]
    fn empty_and_singleton_gangs_run_inline() {
        let engine = CryptoEngine::new(2);
        engine.run_scoped(Vec::new());
        let mut hit = false;
        engine.run_scoped(vec![Box::new(|| hit = true)]);
        assert!(hit);
    }

    #[test]
    fn background_jobs_complete_and_return_values() {
        let engine = CryptoEngine::new(2);
        let handles: Vec<JobHandle<usize>> = (0..8).map(|i| engine.submit(move || i * i)).collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.wait(), i * i);
        }
    }

    #[test]
    fn dropped_handles_detach_but_jobs_still_run() {
        let engine = CryptoEngine::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let counter = Arc::clone(&counter);
            drop(engine.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        // Synchronize on a final job: the queue is FIFO per priority.
        engine.submit(|| ()).wait();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn gangs_preempt_background_backlog() {
        // A gang submitted behind a pile of background jobs still
        // completes promptly (priority + submitter help); this is a
        // liveness test, not a timing assertion.
        let engine = CryptoEngine::new(1);
        for _ in 0..16 {
            drop(engine.submit(std::thread::yield_now));
        }
        let mut done = [false; 4];
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = done
            .iter_mut()
            .map(|d| {
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || *d = true);
                task
            })
            .collect();
        engine.run_scoped(tasks);
        assert!(done.iter().all(|&d| d));
    }

    #[test]
    fn worker_threads_are_marked() {
        let engine = CryptoEngine::new(1);
        assert!(!CryptoEngine::on_worker_thread());
        assert!(engine.submit(CryptoEngine::on_worker_thread).wait());
    }

    #[test]
    fn gang_task_panic_is_propagated_after_the_gang_finishes() {
        let engine = CryptoEngine::new(2);
        let mut survivor = 0u32;
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
                vec![Box::new(|| panic!("boom")), Box::new(|| survivor = 7)];
            engine.run_scoped(tasks);
        }));
        assert!(result.is_err(), "gang panic must propagate");
        assert_eq!(survivor, 7, "sibling task still ran to completion");
        // The engine survives the panic and serves further work.
        assert_eq!(engine.submit(|| 41 + 1).wait(), 42);
    }

    #[test]
    fn background_panic_resumes_on_wait() {
        let engine = CryptoEngine::new(1);
        let handle: JobHandle<()> = engine.submit(|| panic!("job went bad"));
        assert!(catch_unwind(AssertUnwindSafe(|| handle.wait())).is_err());
        assert_eq!(engine.submit(|| 5).wait(), 5);
    }

    #[test]
    fn last_engine_reference_can_drop_inside_a_worker_job() {
        // A background job owning the final Arc<CryptoEngine> runs the
        // engine's Drop on the worker thread itself; the self-join skip
        // keeps that from deadlocking.
        let engine = Arc::new(CryptoEngine::new(2));
        let held = Arc::clone(&engine);
        let handle = engine.submit(move || {
            // Park long enough for main to drop its reference first, so
            // this closure's drop releases the last one.
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(held);
            11
        });
        drop(engine);
        assert_eq!(handle.wait(), 11);
    }

    #[test]
    fn workers_clamp_to_at_least_one() {
        let engine = CryptoEngine::new(0);
        assert_eq!(engine.workers(), 1);
        assert_eq!(engine.submit(|| 1).wait(), 1);
    }
}
