//! The AES block cipher (FIPS-197), supporting 128- and 256-bit keys.
//!
//! Two implementations share the key schedule: a straightforward
//! byte-oriented reference (S-box constant, xtime MixColumns) that mirrors
//! FIPS-197 operation by operation, and a four-T-table fast path. The four
//! 1 KiB tables `TE0`–`TE3` are the classic rotated variants of the
//! SubBytes+MixColumns column table, so one round of one column is four
//! loads and four XORs with no rotates on the load path. The hot entry
//! point is [`Aes::encrypt_blocks`], which processes four blocks per inner
//! iteration with the round loop unrolled across columns — CTR keystream
//! generation feeds it independent counter blocks, so the four block states
//! execute with full instruction-level parallelism. [`Aes::encrypt_block`]
//! uses the same round helpers for single blocks, and both are tested
//! byte-identical to the reference. Neither is constant-time nor intended
//! to protect real secrets — they exist so the PipeLLM reproduction
//! exercises genuine AES-GCM semantics (real tags that really fail on IV
//! mismatch) at a usable throughput.

use crate::{CryptoError, Result};

/// The AES block size in bytes. AES always operates on 128-bit blocks.
pub const BLOCK_SIZE: usize = 16;

/// The AES S-box (forward substitution table).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for the key schedule.
const RCON: [u8; 15] = [
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a,
];

/// Multiply by x (i.e. {02}) in GF(2^8) with the AES polynomial.
#[inline]
const fn xtime(b: u8) -> u8 {
    let shifted = b << 1;
    if b & 0x80 != 0 {
        shifted ^ 0x1b
    } else {
        shifted
    }
}

/// The round T-table: `TE0[x]` packs `[2·S(x), S(x), S(x), 3·S(x)]` — one
/// SubBytes + MixColumns column contribution. The other three tables of the
/// classic formulation are byte rotations of this one, applied at use.
const fn build_te0() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        let s2 = xtime(s);
        let s3 = s2 ^ s;
        table[i] = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        i += 1;
    }
    table
}

/// Rotates every entry of a T-table, producing the next table of the
/// classic four-table formulation.
const fn rotate_table(src: &[u32; 256], bits: u32) -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = src[i].rotate_right(bits);
        i += 1;
    }
    table
}

static TE0: [u32; 256] = build_te0();
static TE1: [u32; 256] = rotate_table(&TE0, 8);
static TE2: [u32; 256] = rotate_table(&TE0, 16);
static TE3: [u32; 256] = rotate_table(&TE0, 24);

/// One full AES round of one block: ShiftRows indices feed SubBytes +
/// MixColumns through the four T-tables, explicitly unrolled per column.
#[inline(always)]
fn round_cols(s: &[u32; 4], k: &[u32]) -> [u32; 4] {
    [
        TE0[(s[0] >> 24) as usize]
            ^ TE1[((s[1] >> 16) & 0xff) as usize]
            ^ TE2[((s[2] >> 8) & 0xff) as usize]
            ^ TE3[(s[3] & 0xff) as usize]
            ^ k[0],
        TE0[(s[1] >> 24) as usize]
            ^ TE1[((s[2] >> 16) & 0xff) as usize]
            ^ TE2[((s[3] >> 8) & 0xff) as usize]
            ^ TE3[(s[0] & 0xff) as usize]
            ^ k[1],
        TE0[(s[2] >> 24) as usize]
            ^ TE1[((s[3] >> 16) & 0xff) as usize]
            ^ TE2[((s[0] >> 8) & 0xff) as usize]
            ^ TE3[(s[1] & 0xff) as usize]
            ^ k[2],
        TE0[(s[3] >> 24) as usize]
            ^ TE1[((s[0] >> 16) & 0xff) as usize]
            ^ TE2[((s[1] >> 8) & 0xff) as usize]
            ^ TE3[(s[2] & 0xff) as usize]
            ^ k[3],
    ]
}

/// The final AES round (SubBytes + ShiftRows + AddRoundKey, no MixColumns).
#[inline(always)]
fn final_cols(s: &[u32; 4], k: &[u32]) -> [u32; 4] {
    let mut out = [0u32; 4];
    let mut c = 0;
    while c < 4 {
        out[c] = (u32::from(SBOX[(s[c] >> 24) as usize]) << 24)
            | (u32::from(SBOX[((s[(c + 1) & 3] >> 16) & 0xff) as usize]) << 16)
            | (u32::from(SBOX[((s[(c + 2) & 3] >> 8) & 0xff) as usize]) << 8)
            | u32::from(SBOX[(s[(c + 3) & 3] & 0xff) as usize]);
        out[c] ^= k[c];
        c += 1;
    }
    out
}

/// AES key sizes supported by NVIDIA CC sessions (we default to 256).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySize {
    /// AES-128: 10 rounds.
    Aes128,
    /// AES-256: 14 rounds.
    Aes256,
}

impl KeySize {
    fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes256 => 14,
        }
    }

    fn key_words(self) -> usize {
        match self {
            KeySize::Aes128 => 4,
            KeySize::Aes256 => 8,
        }
    }
}

/// An expanded AES key, ready to encrypt blocks.
///
/// The GCM layer only ever needs the forward (encryption) direction, since
/// CTR mode decrypts with the same keystream; the inverse cipher is provided
/// for completeness and for the FIPS-197 test vectors.
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; BLOCK_SIZE]>,
    /// The same round keys as big-endian words, for the T-table path.
    round_words: Vec<u32>,
    size: KeySize,
    /// Whether [`Aes::encrypt_blocks`] may take the AES-NI path
    /// (runtime-detected at key expansion; see [`crate::hw`]).
    use_hw: bool,
}

impl std::fmt::Debug for Aes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes")
            .field("size", &self.size)
            .field("rounds", &self.round_keys.len().saturating_sub(1))
            .finish()
    }
}

impl Aes {
    /// Expands `key` into round keys.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] unless `key` is exactly 16
    /// or 32 bytes.
    pub fn new(key: &[u8]) -> Result<Self> {
        let size = match key.len() {
            16 => KeySize::Aes128,
            32 => KeySize::Aes256,
            got => return Err(CryptoError::InvalidKeyLength { got }),
        };
        Ok(Self::expand(key, size))
    }

    /// Returns the key size this cipher was constructed with.
    pub fn key_size(&self) -> KeySize {
        self.size
    }

    fn expand(key: &[u8], size: KeySize) -> Self {
        let nk = size.key_words();
        let rounds = size.rounds();
        let total_words = 4 * (rounds + 1);
        let mut words: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for chunk in key.chunks_exact(4) {
            words.push([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in nk..total_words {
            let mut temp = words[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for byte in &mut temp {
                    *byte = SBOX[*byte as usize];
                }
                temp[0] ^= RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                for byte in &mut temp {
                    *byte = SBOX[*byte as usize];
                }
            }
            let prev = words[i - nk];
            words.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }
        let round_keys: Vec<[u8; BLOCK_SIZE]> = words
            .chunks_exact(4)
            .map(|w| {
                let mut rk = [0u8; BLOCK_SIZE];
                for (i, word) in w.iter().enumerate() {
                    rk[4 * i..4 * i + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        let round_words = words.iter().map(|w| u32::from_be_bytes(*w)).collect();
        Aes {
            round_keys,
            round_words,
            size,
            use_hw: crate::hw::aes_available(),
        }
    }

    /// Disables the hardware (AES-NI) path, forcing the portable T-table
    /// implementation. Bench and test support: the software fast path must
    /// stay correct and measurable on machines where AES-NI would
    /// otherwise shadow it.
    pub fn software_only(mut self) -> Self {
        self.use_hw = false;
        self
    }

    /// Whether the hardware (AES-NI/VAES) block path is live for this key.
    pub(crate) fn hw_active(&self) -> bool {
        self.use_hw
    }

    /// The expanded per-round keys, consumed directly by the fused
    /// CTR+GHASH kernel in [`crate::hw`].
    pub(crate) fn round_keys(&self) -> &[[u8; BLOCK_SIZE]] {
        &self.round_keys
    }

    /// Encrypts a single 16-byte block in place (T-table fast path).
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_SIZE]) {
        let rk = &self.round_words;
        let rounds = self.size.rounds();
        let mut s = [0u32; 4];
        for (c, word) in s.iter_mut().enumerate() {
            *word = u32::from_be_bytes([
                block[4 * c],
                block[4 * c + 1],
                block[4 * c + 2],
                block[4 * c + 3],
            ]) ^ rk[c];
        }
        for round in 1..rounds {
            s = round_cols(&s, &rk[4 * round..4 * round + 4]);
        }
        let out = final_cols(&s, &rk[4 * rounds..4 * rounds + 4]);
        for (c, word) in out.iter().enumerate() {
            block[4 * c..4 * c + 4].copy_from_slice(&word.to_be_bytes());
        }
    }

    /// Number of blocks the software T-table path interleaves per
    /// iteration (the AES-NI path interleaves eight).
    pub const PARALLEL_BLOCKS: usize = 4;

    /// Encrypts a run of whole 16-byte blocks in place — the hot path
    /// behind GCM's CTR keystream.
    ///
    /// On x86_64 with AES-NI this dispatches to the hardware path
    /// ([`crate::hw`]), eight blocks per `aesenc` pipeline fill. Everywhere
    /// else (or after [`Aes::software_only`]) it runs the four-way T-table
    /// path of [`Aes::encrypt_blocks_soft`]. Both are property-tested
    /// byte-identical to [`Aes::encrypt_block_reference`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of [`BLOCK_SIZE`].
    pub fn encrypt_blocks(&self, data: &mut [u8]) {
        assert_eq!(
            data.len() % BLOCK_SIZE,
            0,
            "encrypt_blocks operates on whole 16-byte blocks"
        );
        if self.use_hw {
            crate::hw::encrypt_blocks(&self.round_keys, data);
        } else {
            self.encrypt_blocks_soft(data);
        }
    }

    /// The portable multi-block path: four block states live in registers
    /// and advance through an unrolled T-table round in lockstep, so
    /// independent blocks (CTR counter blocks) overlap their table loads.
    /// Trailing blocks beyond the last group of four fall back to
    /// [`Aes::encrypt_block`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of [`BLOCK_SIZE`].
    pub fn encrypt_blocks_soft(&self, data: &mut [u8]) {
        assert_eq!(
            data.len() % BLOCK_SIZE,
            0,
            "encrypt_blocks operates on whole 16-byte blocks"
        );
        let rk = &self.round_words;
        let rounds = self.size.rounds();
        const GROUP: usize = Aes::PARALLEL_BLOCKS * BLOCK_SIZE;
        let mut groups = data.chunks_exact_mut(GROUP);
        for group in groups.by_ref() {
            let mut s = [[0u32; 4]; 4];
            for (b, state) in s.iter_mut().enumerate() {
                for (c, word) in state.iter_mut().enumerate() {
                    let o = BLOCK_SIZE * b + 4 * c;
                    *word =
                        u32::from_be_bytes([group[o], group[o + 1], group[o + 2], group[o + 3]])
                            ^ rk[c];
                }
            }
            for round in 1..rounds {
                let k = &rk[4 * round..4 * round + 4];
                s[0] = round_cols(&s[0], k);
                s[1] = round_cols(&s[1], k);
                s[2] = round_cols(&s[2], k);
                s[3] = round_cols(&s[3], k);
            }
            let k = &rk[4 * rounds..4 * rounds + 4];
            for (b, state) in s.iter().enumerate() {
                let out = final_cols(state, k);
                for (c, word) in out.iter().enumerate() {
                    let o = BLOCK_SIZE * b + 4 * c;
                    group[o..o + 4].copy_from_slice(&word.to_be_bytes());
                }
            }
        }
        for block in groups.into_remainder().chunks_exact_mut(BLOCK_SIZE) {
            let block: &mut [u8; BLOCK_SIZE] = block.try_into().expect("exact chunk");
            self.encrypt_block(block);
        }
    }

    /// The byte-oriented FIPS-197 reference implementation, kept to check
    /// the fast path against (see the `fast_path_matches_reference` test).
    pub fn encrypt_block_reference(&self, block: &mut [u8; BLOCK_SIZE]) {
        let rounds = self.size.rounds();
        add_round_key(block, &self.round_keys[0]);
        for round in 1..rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[rounds]);
    }

    /// Encrypts a block, returning the ciphertext instead of mutating.
    pub fn encrypt_block_copy(&self, block: &[u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }
}

#[inline]
fn add_round_key(state: &mut [u8; BLOCK_SIZE], rk: &[u8; BLOCK_SIZE]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; BLOCK_SIZE]) {
    for byte in state.iter_mut() {
        *byte = SBOX[*byte as usize];
    }
}

/// The state is column-major: byte `state[4*c + r]` is row `r`, column `c`.
#[inline]
fn shift_rows(state: &mut [u8; BLOCK_SIZE]) {
    // Row 1: rotate left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: rotate left by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: rotate left by 3 (== right by 1).
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

#[inline]
fn mix_columns(state: &mut [u8; BLOCK_SIZE]) {
    for col in 0..4 {
        let base = 4 * col;
        let a0 = state[base];
        let a1 = state[base + 1];
        let a2 = state[base + 2];
        let a3 = state[base + 3];
        let all = a0 ^ a1 ^ a2 ^ a3;
        state[base] ^= all ^ xtime(a0 ^ a1);
        state[base + 1] ^= all ^ xtime(a1 ^ a2);
        state[base + 2] ^= all ^ xtime(a2 ^ a3);
        state[base + 3] ^= all ^ xtime(a3 ^ a0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_aes128_vector() {
        // FIPS-197 Appendix C.1
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let plain = hex("00112233445566778899aabbccddeeff");
        let cipher = Aes::new(&key).unwrap();
        let mut block = [0u8; 16];
        block.copy_from_slice(&plain);
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn fips197_aes256_vector() {
        // FIPS-197 Appendix C.3
        let key = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let plain = hex("00112233445566778899aabbccddeeff");
        let cipher = Aes::new(&key).unwrap();
        let mut block = [0u8; 16];
        block.copy_from_slice(&plain);
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("8ea2b7ca516745bfeafc49904b496089"));
    }

    #[test]
    fn sp800_38a_aes128_ecb_vector() {
        // NIST SP 800-38A F.1.1 ECB-AES128.Encrypt, first block.
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let plain = hex("6bc1bee22e409f96e93d7e117393172a");
        let cipher = Aes::new(&key).unwrap();
        let mut block = [0u8; 16];
        block.copy_from_slice(&plain);
        cipher.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("3ad77bb40d7a3660a89ecaf32466ef97"));
    }

    #[test]
    fn rejects_bad_key_lengths() {
        for len in [0usize, 8, 15, 17, 24, 31, 33] {
            let key = vec![0u8; len];
            assert!(matches!(
                Aes::new(&key),
                Err(CryptoError::InvalidKeyLength { got }) if got == len
            ));
        }
    }

    #[test]
    fn encrypt_block_copy_matches_in_place() {
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let cipher = Aes::new(&key).unwrap();
        let block = [0x42u8; 16];
        let copied = cipher.encrypt_block_copy(&block);
        let mut in_place = block;
        cipher.encrypt_block(&mut in_place);
        assert_eq!(copied, in_place);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let cipher = Aes::new(&[0u8; 32]).unwrap();
        let rendered = format!("{cipher:?}");
        assert!(!rendered.contains("round_keys"));
        assert!(rendered.contains("Aes256"));
    }

    #[test]
    fn fast_path_matches_reference() {
        // Pseudo-random keys and blocks, both key sizes.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 24) as u8
        };
        for key_len in [16usize, 32] {
            for _ in 0..64 {
                let key: Vec<u8> = (0..key_len).map(|_| next()).collect();
                let cipher = Aes::new(&key).unwrap();
                let mut fast = [0u8; 16];
                for byte in fast.iter_mut() {
                    *byte = next();
                }
                let mut reference = fast;
                cipher.encrypt_block(&mut fast);
                cipher.encrypt_block_reference(&mut reference);
                assert_eq!(fast, reference, "divergence for key {key:02x?}");
            }
        }
    }

    #[test]
    fn multi_block_path_matches_reference() {
        let mut state = 0xfeed_beef_dead_c0deu64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 24) as u8
        };
        for key_len in [16usize, 32] {
            let key: Vec<u8> = (0..key_len).map(|_| next()).collect();
            let cipher = Aes::new(&key).unwrap();
            // Lengths straddling the 4-block group boundary, incl. empty.
            let soft = cipher.clone().software_only();
            for blocks in [0usize, 1, 3, 4, 5, 7, 8, 9, 16, 17] {
                let mut fast: Vec<u8> = (0..blocks * 16).map(|_| next()).collect();
                let mut tables = fast.clone();
                let mut reference = fast.clone();
                cipher.encrypt_blocks(&mut fast);
                soft.encrypt_blocks(&mut tables);
                for block in reference.chunks_exact_mut(16) {
                    let block: &mut [u8; 16] = block.try_into().unwrap();
                    cipher.encrypt_block_reference(block);
                }
                assert_eq!(fast, reference, "dispatch divergence at {blocks} blocks");
                assert_eq!(tables, reference, "T-table divergence at {blocks} blocks");
            }
        }
    }

    #[test]
    #[should_panic(expected = "whole 16-byte blocks")]
    fn multi_block_path_rejects_partial_blocks() {
        let cipher = Aes::new(&[0u8; 16]).unwrap();
        cipher.encrypt_blocks(&mut [0u8; 17]);
    }

    #[test]
    fn different_keys_differ() {
        let a = Aes::new(&[1u8; 16]).unwrap();
        let b = Aes::new(&[2u8; 16]).unwrap();
        let block = [0u8; 16];
        assert_ne!(a.encrypt_block_copy(&block), b.encrypt_block_copy(&block));
    }
}
