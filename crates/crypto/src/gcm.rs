//! AES-GCM (Galois/Counter Mode) authenticated encryption.
//!
//! NVIDIA CC seals every CPU↔GPU transfer with AES-GCM (paper §2.2). The
//! property PipeLLM's entire design revolves around is that the 96-bit nonce
//! is derived from a *counter IV* that both endpoints advance in lockstep,
//! so a ciphertext produced with IV `n` can only ever be opened as the
//! `n`-th message — opening it at any other position fails authentication.
//!
//! The GHASH universal hash uses Shoup's 4-bit-table method (the "simple,
//! 4-bit tables" variant from the GCM submission): a 16-entry multiple
//! table of the hash subkey plus a 16-entry reduction table, giving ~8×
//! the throughput of bitwise multiplication while remaining obviously
//! correct against the reference [`gf_mul`] (property-tested below).

use crate::aes::{Aes, BLOCK_SIZE};
use crate::{CryptoError, Result};

/// Length of the GCM authentication tag in bytes.
pub const TAG_LEN: usize = 16;

/// Length of the GCM nonce in bytes (the standard 96-bit nonce).
pub const NONCE_LEN: usize = 12;

/// Multiplication in GF(2^128) as defined by the GCM spec (NIST SP 800-38D).
///
/// Operands and result are 128-bit blocks interpreted with the GCM bit
/// ordering (bit 0 is the most significant bit of byte 0).
fn gf_mul(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let mut z: u128 = 0;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

fn block_to_u128(block: &[u8]) -> u128 {
    let mut bytes = [0u8; 16];
    bytes[..block.len()].copy_from_slice(block);
    u128::from_be_bytes(bytes)
}

/// Multiplication by x in GF(2^128) (one right shift with reduction).
fn mul_x(v: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let reduce = if v & 1 == 1 { R } else { 0 };
    (v >> 1) ^ reduce
}

/// Precomputed tables for multiplying by a fixed hash subkey H.
#[derive(Clone)]
struct GhashKey {
    /// `m[v]` = (the element whose top nibble is `v`) · H.
    m: [u128; 16],
    /// `red[v]` = reduction term of shifting an element with low nibble `v`
    /// right by four bits.
    red: [u128; 16],
}

impl GhashKey {
    fn new(h: u128) -> Self {
        let mut m = [0u128; 16];
        // 8 = 0b1000 sets u128 bit 127 = x^0: the field identity times H.
        m[8] = h;
        m[4] = mul_x(m[8]);
        m[2] = mul_x(m[4]);
        m[1] = mul_x(m[2]);
        for v in 1..16usize {
            // Decompose composite nibbles into their power-of-two parts.
            let low = v & v.wrapping_neg();
            if v != low {
                m[v] = m[low] ^ m[v ^ low];
            }
        }
        let mut red = [0u128; 16];
        for (v, slot) in red.iter_mut().enumerate() {
            let mut t = v as u128;
            for _ in 0..4 {
                t = mul_x(t);
            }
            *slot = t;
        }
        GhashKey { m, red }
    }

    /// Multiplies `y` by the hash subkey.
    #[inline]
    fn mul_h(&self, y: u128) -> u128 {
        let mut z = 0u128;
        let mut rest = y;
        for _ in 0..32 {
            z = (z >> 4) ^ self.red[(z & 0xf) as usize];
            z ^= self.m[(rest & 0xf) as usize];
            rest >>= 4;
        }
        z
    }
}

/// GHASH over the concatenation `aad || ciphertext || len(aad) || len(ct)`.
fn ghash(key: &GhashKey, aad: &[u8], ciphertext: &[u8]) -> u128 {
    let mut y: u128 = 0;
    for chunk in aad.chunks(BLOCK_SIZE) {
        y = key.mul_h(y ^ block_to_u128(chunk));
    }
    for chunk in ciphertext.chunks(BLOCK_SIZE) {
        y = key.mul_h(y ^ block_to_u128(chunk));
    }
    let lengths = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
    key.mul_h(y ^ lengths)
}

/// An AES-GCM encryption context bound to one key.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), pipellm_crypto::CryptoError> {
/// use pipellm_crypto::gcm::AesGcm;
///
/// let gcm = AesGcm::new(&[0x42; 32])?;
/// let nonce = [0u8; 12];
/// let sealed = gcm.seal(&nonce, b"header", b"secret payload");
/// let opened = gcm.open(&nonce, b"header", &sealed)?;
/// assert_eq!(opened, b"secret payload");
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct AesGcm {
    cipher: Aes,
    /// Tables derived from the hash subkey H = E_K(0^128).
    h: GhashKey,
}

impl std::fmt::Debug for AesGcm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AesGcm")
            .field("key_size", &self.cipher.key_size())
            .finish()
    }
}

impl AesGcm {
    /// Creates a GCM context from a 16- or 32-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for other key lengths.
    pub fn new(key: &[u8]) -> Result<Self> {
        let cipher = Aes::new(key)?;
        let h = u128::from_be_bytes(cipher.encrypt_block_copy(&[0u8; BLOCK_SIZE]));
        Ok(AesGcm { cipher, h: GhashKey::new(h) })
    }

    /// Derives the initial counter block J0 from a 96-bit nonce.
    fn j0(&self, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_SIZE] {
        let mut j0 = [0u8; BLOCK_SIZE];
        j0[..NONCE_LEN].copy_from_slice(nonce);
        j0[15] = 1;
        j0
    }

    /// Runs CTR mode keystream starting from counter block `initial+1`.
    fn ctr_xor(&self, j0: &[u8; BLOCK_SIZE], data: &mut [u8]) {
        let mut counter = u32::from_be_bytes([j0[12], j0[13], j0[14], j0[15]]);
        let mut block = *j0;
        for chunk in data.chunks_mut(BLOCK_SIZE) {
            counter = counter.wrapping_add(1);
            block[12..].copy_from_slice(&counter.to_be_bytes());
            let keystream = self.cipher.encrypt_block_copy(&block);
            for (byte, ks) in chunk.iter_mut().zip(keystream.iter()) {
                *byte ^= ks;
            }
        }
    }

    fn tag(&self, j0: &[u8; BLOCK_SIZE], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let s = ghash(&self.h, aad, ciphertext);
        let ek_j0 = block_to_u128(&self.cipher.encrypt_block_copy(j0));
        (s ^ ek_j0).to_be_bytes()
    }

    /// Encrypts `plaintext`, returning `ciphertext || tag`.
    ///
    /// `aad` is authenticated but not encrypted (NVIDIA CC authenticates the
    /// transfer header; we use it for the chunk descriptor).
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let j0 = self.j0(nonce);
        let mut out = plaintext.to_vec();
        self.ctr_xor(&j0, &mut out);
        let tag = self.tag(&j0, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypts `sealed` (which must be `ciphertext || tag`), verifying the
    /// tag before returning the plaintext.
    ///
    /// # Errors
    ///
    /// - [`CryptoError::TruncatedCiphertext`] if `sealed` is shorter than the
    ///   16-byte tag.
    /// - [`CryptoError::AuthenticationFailed`] if the tag does not verify
    ///   (tampering, wrong AAD, or wrong nonce). The reported `expected_iv`
    ///   is 0 at this layer; [`crate::channel`] rewrites it with the real
    ///   channel IV.
    pub fn open(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::TruncatedCiphertext { got: sealed.len() });
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let j0 = self.j0(nonce);
        let expected = self.tag(&j0, aad, ciphertext);
        // Non-constant-time comparison is acceptable in a simulator.
        if expected != tag {
            return Err(CryptoError::AuthenticationFailed { expected_iv: 0 });
        }
        let mut out = ciphertext.to_vec();
        self.ctr_xor(&j0, &mut out);
        Ok(out)
    }
}

/// Encodes a 64-bit counter IV into a 96-bit GCM nonce.
///
/// NVIDIA CC records the IV "in cyclic code"; the paper uses decimal
/// integers for clarity and so do we: the nonce is the big-endian counter in
/// the low 8 bytes with a 4-byte channel-direction prefix, guaranteeing the
/// CPU→GPU and GPU→CPU streams never collide on a nonce.
pub fn nonce_from_iv(direction: u32, iv: u64) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..4].copy_from_slice(&direction.to_be_bytes());
    nonce[4..].copy_from_slice(&iv.to_be_bytes());
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// NIST GCM spec test case 1: empty plaintext, zero key.
    #[test]
    fn nist_case_1_empty() {
        let gcm = AesGcm::new(&hex("00000000000000000000000000000000")).unwrap();
        let nonce = [0u8; 12];
        let sealed = gcm.seal(&nonce, b"", b"");
        assert_eq!(sealed, hex("58e2fccefa7e3061367f1d57a4e7455a"));
    }

    /// NIST GCM spec test case 2: one zero block.
    #[test]
    fn nist_case_2_single_block() {
        let gcm = AesGcm::new(&hex("00000000000000000000000000000000")).unwrap();
        let nonce = [0u8; 12];
        let sealed = gcm.seal(&nonce, b"", &hex("00000000000000000000000000000000"));
        assert_eq!(
            sealed,
            hex("0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf")
        );
    }

    /// NIST GCM spec test case 3: 4-block message under a real key.
    #[test]
    fn nist_case_3_four_blocks() {
        let gcm = AesGcm::new(&hex("feffe9928665731c6d6a8f9467308308")).unwrap();
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&hex("cafebabefacedbaddecaf888"));
        let plaintext = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let sealed = gcm.seal(&nonce, b"", &plaintext);
        let expected_ct = hex(
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
        );
        let expected_tag = hex("4d5c2af327cd64a62cf35abd2ba6fab4");
        assert_eq!(&sealed[..plaintext.len()], &expected_ct[..]);
        assert_eq!(&sealed[plaintext.len()..], &expected_tag[..]);
    }

    /// NIST GCM spec test case 4: with AAD and a short final block.
    #[test]
    fn nist_case_4_with_aad() {
        let gcm = AesGcm::new(&hex("feffe9928665731c6d6a8f9467308308")).unwrap();
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&hex("cafebabefacedbaddecaf888"));
        let plaintext = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let sealed = gcm.seal(&nonce, &aad, &plaintext);
        let expected_tag = hex("5bc94fbc3221a5db94fae95ae7121a47");
        assert_eq!(&sealed[plaintext.len()..], &expected_tag[..]);
        let opened = gcm.open(&nonce, &aad, &sealed).unwrap();
        assert_eq!(opened, plaintext);
    }

    /// AES-256-GCM: NIST test case 14 (zero key, one zero block).
    #[test]
    fn nist_case_14_aes256() {
        let gcm = AesGcm::new(&[0u8; 32]).unwrap();
        let nonce = [0u8; 12];
        let sealed = gcm.seal(&nonce, b"", &[0u8; 16]);
        assert_eq!(
            sealed,
            hex("cea7403d4d606b6e074ec5d3baf39d18d0d1c8a799996bf0265b98b5d48ab919")
        );
    }

    #[test]
    fn roundtrip_various_lengths() {
        let gcm = AesGcm::new(&[7u8; 32]).unwrap();
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100, 1000] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let nonce = nonce_from_iv(0, len as u64);
            let sealed = gcm.seal(&nonce, b"aad", &plaintext);
            let opened = gcm.open(&nonce, b"aad", &sealed).unwrap();
            assert_eq!(opened, plaintext, "roundtrip failed at len {len}");
        }
    }

    #[test]
    fn tampered_ciphertext_fails() {
        let gcm = AesGcm::new(&[7u8; 16]).unwrap();
        let nonce = nonce_from_iv(0, 1);
        let mut sealed = gcm.seal(&nonce, b"", b"payload bytes");
        sealed[3] ^= 0x01;
        assert!(matches!(
            gcm.open(&nonce, b"", &sealed),
            Err(CryptoError::AuthenticationFailed { .. })
        ));
    }

    #[test]
    fn tampered_tag_fails() {
        let gcm = AesGcm::new(&[7u8; 16]).unwrap();
        let nonce = nonce_from_iv(0, 1);
        let mut sealed = gcm.seal(&nonce, b"", b"payload bytes");
        let last = sealed.len() - 1;
        sealed[last] ^= 0x80;
        assert!(gcm.open(&nonce, b"", &sealed).is_err());
    }

    #[test]
    fn wrong_nonce_fails() {
        let gcm = AesGcm::new(&[7u8; 16]).unwrap();
        let sealed = gcm.seal(&nonce_from_iv(0, 5), b"", b"payload");
        assert!(gcm.open(&nonce_from_iv(0, 6), b"", &sealed).is_err());
    }

    #[test]
    fn wrong_aad_fails() {
        let gcm = AesGcm::new(&[7u8; 16]).unwrap();
        let nonce = nonce_from_iv(0, 5);
        let sealed = gcm.seal(&nonce, b"header-a", b"payload");
        assert!(gcm.open(&nonce, b"header-b", &sealed).is_err());
    }

    #[test]
    fn truncated_ciphertext_is_reported() {
        let gcm = AesGcm::new(&[7u8; 16]).unwrap();
        let nonce = nonce_from_iv(0, 5);
        assert!(matches!(
            gcm.open(&nonce, b"", &[0u8; 15]),
            Err(CryptoError::TruncatedCiphertext { got: 15 })
        ));
    }

    #[test]
    fn directions_do_not_collide() {
        // The same counter value in opposite directions must produce
        // different nonces, hence unrelated ciphertexts.
        assert_ne!(nonce_from_iv(0, 9), nonce_from_iv(1, 9));
    }

    #[test]
    fn table_mul_matches_reference_gf_mul() {
        let h = 0x66e94bd4ef8a2c3b884cfa59ca342b2eu128; // E_zero_key(0)
        let key = GhashKey::new(h);
        // Structured and pseudo-random operands.
        let mut y = 0x0123456789abcdef0123456789abcdefu128;
        for i in 0..200u32 {
            assert_eq!(key.mul_h(y), gf_mul(y, h), "mismatch at iteration {i}");
            y = y.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17) ^ u128::from(i);
        }
        for special in [0u128, 1, 1 << 127, u128::MAX, h] {
            assert_eq!(key.mul_h(special), gf_mul(special, h));
        }
    }

    #[test]
    fn gf_mul_commutes() {
        let a = 0x0123456789abcdef0123456789abcdefu128;
        let b = 0xfedcba9876543210fedcba9876543210u128;
        assert_eq!(gf_mul(a, b), gf_mul(b, a));
    }

    #[test]
    fn gf_mul_identity_element() {
        // The identity of GCM's GF(2^128) is the block 0x80 00 ... 00.
        let one: u128 = 1 << 127;
        let a = 0x0123456789abcdef0123456789abcdefu128;
        assert_eq!(gf_mul(a, one), a);
    }
}
