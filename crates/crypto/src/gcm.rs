//! AES-GCM (Galois/Counter Mode) authenticated encryption.
//!
//! NVIDIA CC seals every CPU↔GPU transfer with AES-GCM (paper §2.2). The
//! property PipeLLM's entire design revolves around is that the 96-bit nonce
//! is derived from a *counter IV* that both endpoints advance in lockstep,
//! so a ciphertext produced with IV `n` can only ever be opened as the
//! `n`-th message — opening it at any other position fails authentication.
//!
//! # Hot-path structure
//!
//! The GHASH universal hash uses Shoup's **8-bit-table** method: for each
//! retained power of the hash subkey (H¹–H⁴) a 256-entry multiple table,
//! plus one shared, compile-time 256-entry reduction table. One GF(2¹²⁸)
//! multiplication is 16 table steps instead of the 32 of the classic 4-bit
//! variant, and [`ghash_update`] folds **four ciphertext blocks per
//! reduction chain** using the Horner expansion
//! `y·H⁴ ⊕ b₀·H⁴ ⊕ b₁·H³ ⊕ b₂·H² ⊕ b₃·H`, whose four multiplications are
//! independent and overlap in the pipeline.
//!
//! CTR keystream generation is batched: [`AesGcm::ctr_xor`] fills a
//! 512-byte run of counter blocks (`CTR_BATCH` = 32), encrypts them
//! through the multi-block [`Aes::encrypt_blocks`] path, and XORs whole
//! 64-bit words into the payload — no per-block round trips through the
//! cipher.
//!
//! The original one-block-at-a-time CTR walk is retained as
//! [`AesGcm::seal_reference`], the correctness oracle the fast paths are
//! property-tested against and the baseline the crypto bench reports its
//! speedup over; the bitwise [`gf_mul`] plays the same role for GHASH.
//!
//! The zero-copy entry points are [`AesGcm::seal_in_place`] /
//! [`AesGcm::open_in_place`] (detached tag, caller-owned buffer); the
//! allocating [`AesGcm::seal`] / [`AesGcm::open`] are thin wrappers.
//!
//! # Chunked multi-threaded GCM
//!
//! A context built with [`AesGcm::with_engine`] splits payloads of at
//! least [`PAR_MIN_BYTES`] into block-aligned segments sealed concurrently
//! on the engine's workers. Both halves of GCM parallelize exactly:
//!
//! - **CTR is seekable** — segment `s` starting at block offset `o`
//!   generates its keystream from counter `J₀ + 1 + o`
//!   ([`AesGcm::ctr_xor_at`]), independent of every other segment;
//! - **GHASH is a polynomial in H** — each worker folds a *partial* hash
//!   `P_s = Σ_j b_{s,j}·H^{m_s-j+1}` over its own block range (zero
//!   accumulator, no length block), and the combiner shifts each partial
//!   by the blocks that follow it: `Y = Y_aad·H^{n} ⊕ Σ_s P_s·H^{after_s}`
//!   with the extended subkey powers `H^k` computed by square-and-multiply
//!   (one PCLMULQDQ multiply per squaring where available). The length
//!   block folds last, as in the sequential walk.
//!
//! The result is **bit-identical** to the sequential path by construction
//! — same ciphertext, same tag — which the property tests in
//! `tests/engine_props.rs` pin down for arbitrary sizes, chunk counts,
//! and worker counts on both the software and hardware paths.

use crate::aes::{Aes, BLOCK_SIZE};
use crate::engine::CryptoEngine;
use crate::{CryptoError, Result};
use std::ops::Range;
use std::sync::Arc;

/// Length of the GCM authentication tag in bytes.
pub const TAG_LEN: usize = 16;

/// Length of the GCM nonce in bytes (the standard 96-bit nonce).
pub const NONCE_LEN: usize = 12;

/// Floor of the chunked multi-threaded path's engagement threshold; the
/// effective crossover is calibrated at startup (see
/// [`AesGcm::set_par_threshold`]) and never sits below this.
pub const PAR_MIN_BYTES: usize = 64 * 1024;

/// Fallback crossover when calibration finds the gang slower than the
/// sequential path at every probed size: very large payloads still gang
/// (the measured sizes top out well below this).
const PAR_FALLBACK_BYTES: usize = 16 * PAR_MIN_BYTES;

/// Smallest per-worker segment: payloads shard into at most
/// `len / PAR_MIN_CHUNK` segments even when more workers are available.
const PAR_MIN_CHUNK: usize = 16 * 1024;

/// The multiplicative identity of GCM's GF(2¹²⁸) (the block `0x80 00…00`).
const GF_ONE: u128 = 1 << 127;

/// Multiplication in GF(2^128) as defined by the GCM spec (NIST SP 800-38D).
///
/// Operands and result are 128-bit blocks interpreted with the GCM bit
/// ordering (bit 0 is the most significant bit of byte 0). This is the
/// bit-by-bit reference the table paths are property-tested against; it is
/// also used (three times) to derive the H² – H⁴ table subkeys.
fn gf_mul(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let mut z: u128 = 0;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

fn block_to_u128(block: &[u8]) -> u128 {
    let mut bytes = [0u8; 16];
    bytes[..block.len()].copy_from_slice(block);
    u128::from_be_bytes(bytes)
}

/// Multiplication by x in GF(2^128) (one right shift with reduction).
const fn mul_x(v: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let reduce = if v & 1 == 1 { R } else { 0 };
    (v >> 1) ^ reduce
}

/// `RED8[b]` = reduction term of shifting an element with low byte `b`
/// right by eight bits. Independent of the hash subkey, so built once at
/// compile time and shared by every table multiplication.
static RED8: [u128; 256] = {
    let mut red = [0u128; 256];
    let mut b = 0;
    while b < 256 {
        let mut t = b as u128;
        let mut i = 0;
        while i < 8 {
            t = mul_x(t);
            i += 1;
        }
        red[b] = t;
        b += 1;
    }
    red
};

/// 256-entry multiple table of one subkey: `table[b]` = (the element whose
/// top byte is `b`) · H.
fn byte_table(h: u128) -> [u128; 256] {
    let mut m = [0u128; 256];
    // 0x80 sets u128 bit 127 = x^0: the field identity times H.
    m[0x80] = h;
    let mut bit = 0x40usize;
    while bit > 0 {
        m[bit] = mul_x(m[bit << 1]);
        bit >>= 1;
    }
    for v in 1..256usize {
        // Decompose composite bytes into their power-of-two parts.
        let low = v & v.wrapping_neg();
        if v != low {
            m[v] = m[low] ^ m[v ^ low];
        }
    }
    m
}

/// Multiplies `x` by the subkey behind `table`, eight bits per step.
#[inline]
fn mul_tab(table: &[u128; 256], x: u128) -> u128 {
    let mut z = 0u128;
    let mut rest = x;
    for _ in 0..16 {
        z = (z >> 8) ^ RED8[(z & 0xff) as usize];
        z ^= table[(rest & 0xff) as usize];
        rest >>= 8;
    }
    z
}

/// 8-bit multiple tables for the hash subkey powers H¹ – H⁴.
///
/// `m[p]` multiplies by H^(p+1). 16 KiB per key, heap-allocated so the
/// containing [`AesGcm`] stays cheap to move, and built lazily: on
/// machines where the PCLMULQDQ path serves every GHASH call the tables
/// are never materialized (only [`AesGcm::software_only`] contexts and
/// the retained reference path touch them).
#[derive(Clone)]
struct GhashKey {
    /// Normal-domain subkey powers H¹ – H⁴ (`powers[p]` = H^(p+1)).
    powers: [u128; 4],
    m: std::sync::OnceLock<Box<[[u128; 256]; 4]>>,
    /// Reflected-domain subkey powers for the PCLMULQDQ path, when the
    /// hardware supports it (see [`crate::hw`]).
    clmul: Option<crate::hw::ClmulKey>,
}

impl GhashKey {
    fn new(h: u128) -> Self {
        let h2 = gf_mul(h, h);
        let h3 = gf_mul(h2, h);
        let h4 = gf_mul(h3, h);
        let powers = [h, h2, h3, h4];
        let clmul = crate::hw::clmul_available().then(|| crate::hw::ClmulKey::new(powers));
        GhashKey {
            powers,
            m: std::sync::OnceLock::new(),
            clmul,
        }
    }

    /// The software multiple tables, built on first use.
    fn tables(&self) -> &[[u128; 256]; 4] {
        self.m.get_or_init(|| {
            Box::new([
                byte_table(self.powers[0]),
                byte_table(self.powers[1]),
                byte_table(self.powers[2]),
                byte_table(self.powers[3]),
            ])
        })
    }

    /// Multiplies `y` by the hash subkey H.
    #[inline]
    fn mul_h(&self, y: u128) -> u128 {
        mul_tab(&self.tables()[0], y)
    }

    /// One multiplication of *arbitrary* field elements — PCLMULQDQ where
    /// available, the bitwise reference otherwise. Used a handful of times
    /// per chunked operation (combining partials), never per block.
    fn mul(&self, a: u128, b: u128) -> u128 {
        if self.clmul.is_some() {
            crate::hw::gf_mul(a, b)
        } else {
            gf_mul(a, b)
        }
    }

    /// The extended subkey power H^n (H^0 is the field identity), by
    /// square-and-multiply — O(log n) multiplications, so shifting a
    /// segment partial past a million trailing blocks costs ~40 multiplies.
    fn power(&self, mut n: u64) -> u128 {
        let mut result = GF_ONE;
        let mut base = self.powers[0];
        while n > 0 {
            if n & 1 == 1 {
                result = self.mul(result, base);
            }
            n >>= 1;
            if n > 0 {
                base = self.mul(base, base);
            }
        }
        result
    }

    /// `v · H^n` (`v` unchanged when `n` is zero).
    fn shift(&self, v: u128, n: u64) -> u128 {
        if n == 0 || v == 0 {
            v
        } else {
            self.mul(v, self.power(n))
        }
    }

    /// Partial GHASH of one block-aligned segment: zero initial
    /// accumulator, no length block. The per-worker half of the chunked
    /// tag.
    fn segment(&self, data: &[u8]) -> u128 {
        if let Some(clmul) = &self.clmul {
            crate::hw::ghash_segment(clmul, data)
        } else {
            ghash_update(self, 0, data)
        }
    }
}

/// Folds `data` (zero-padded to block granularity) into the GHASH
/// accumulator `y`, four blocks per reduction chain.
fn ghash_update(key: &GhashKey, mut y: u128, data: &[u8]) -> u128 {
    let m = key.tables();
    let mut quads = data.chunks_exact(4 * BLOCK_SIZE);
    for quad in quads.by_ref() {
        let b0 = block_to_u128(&quad[..16]);
        let b1 = block_to_u128(&quad[16..32]);
        let b2 = block_to_u128(&quad[32..48]);
        let b3 = block_to_u128(&quad[48..]);
        // Horner: ((((y⊕b0)H ⊕ b1)H ⊕ b2)H ⊕ b3)H, expanded so the four
        // multiplications are independent.
        y = mul_tab(&m[3], y ^ b0) ^ mul_tab(&m[2], b1) ^ mul_tab(&m[1], b2) ^ mul_tab(&m[0], b3);
    }
    for chunk in quads.remainder().chunks(BLOCK_SIZE) {
        y = key.mul_h(y ^ block_to_u128(chunk));
    }
    y
}

/// GHASH over the concatenation `aad || ciphertext || len(aad) || len(ct)`.
fn ghash(key: &GhashKey, aad: &[u8], ciphertext: &[u8]) -> u128 {
    let lengths = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
    if let Some(clmul) = &key.clmul {
        return crate::hw::ghash(clmul, aad, ciphertext, lengths);
    }
    let mut y = ghash_update(key, 0, aad);
    y = ghash_update(key, y, ciphertext);
    key.mul_h(y ^ lengths)
}

/// The software GHASH walk regardless of hardware support — the 8-bit-table
/// path the clmul path is tested against.
#[cfg(test)]
fn ghash_soft(key: &GhashKey, aad: &[u8], ciphertext: &[u8]) -> u128 {
    let lengths = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
    let mut y = ghash_update(key, 0, aad);
    y = ghash_update(key, y, ciphertext);
    key.mul_h(y ^ lengths)
}

/// Single-block GHASH walk (one multiplication per block), used by the
/// retained reference seal path.
fn ghash_reference(key: &GhashKey, aad: &[u8], ciphertext: &[u8]) -> u128 {
    let mut y: u128 = 0;
    for chunk in aad.chunks(BLOCK_SIZE) {
        y = key.mul_h(y ^ block_to_u128(chunk));
    }
    for chunk in ciphertext.chunks(BLOCK_SIZE) {
        y = key.mul_h(y ^ block_to_u128(chunk));
    }
    let lengths = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
    key.mul_h(y ^ lengths)
}

/// XORs `ks` into `data` (equal lengths), 64 bits at a time.
#[inline]
fn xor_in_place(data: &mut [u8], ks: &[u8]) {
    debug_assert_eq!(data.len(), ks.len());
    let mut words = data.chunks_exact_mut(8);
    let mut ks_words = ks.chunks_exact(8);
    for (d, k) in words.by_ref().zip(ks_words.by_ref()) {
        let v = u64::from_ne_bytes(d.try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(k.try_into().expect("8-byte chunk"));
        d.copy_from_slice(&v.to_ne_bytes());
    }
    for (d, k) in words.into_remainder().iter_mut().zip(ks_words.remainder()) {
        *d ^= k;
    }
}

/// An AES-GCM encryption context bound to one key.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), pipellm_crypto::CryptoError> {
/// use pipellm_crypto::gcm::AesGcm;
///
/// let gcm = AesGcm::new(&[0x42; 32])?;
/// let nonce = [0u8; 12];
/// let sealed = gcm.seal(&nonce, b"header", b"secret payload");
/// let opened = gcm.open(&nonce, b"header", &sealed)?;
/// assert_eq!(opened, b"secret payload");
///
/// // Zero-copy: encrypt a caller-owned buffer in place (detached tag).
/// let mut buf = *b"secret payload";
/// let tag = gcm.seal_in_place(&nonce, b"header", &mut buf);
/// gcm.open_in_place(&nonce, b"header", &mut buf, &tag)?;
/// assert_eq!(&buf, b"secret payload");
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct AesGcm {
    cipher: Aes,
    /// Tables derived from the hash subkey H = E_K(0^128).
    h: GhashKey,
    /// Worker pool for the chunked multi-threaded paths; `None` (the
    /// default) keeps every operation on the calling thread.
    engine: Option<Arc<CryptoEngine>>,
    /// Explicit chunked-path crossover for this context; `None` (the
    /// default) uses the process-wide calibrated threshold.
    par_threshold: Option<usize>,
}

impl std::fmt::Debug for AesGcm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AesGcm")
            .field("key_size", &self.cipher.key_size())
            .finish()
    }
}

/// Keystream blocks generated per batch. 512 bytes of counter blocks per
/// trip keeps the multi-block cipher core hot (and amortizes the AES-NI
/// round-key reload) while staying comfortably on the stack.
const CTR_BATCH: usize = 32;

/// One message of a fused batch seal (see [`AesGcm::seal_batch`]).
#[derive(Debug)]
pub struct BatchSealMsg<'a> {
    /// The message's own 96-bit nonce.
    pub nonce: [u8; NONCE_LEN],
    /// Authenticated-but-unencrypted descriptor for this message.
    pub aad: &'a [u8],
    /// Plaintext on entry; `ciphertext || tag` on return.
    pub buf: &'a mut Vec<u8>,
}

impl AesGcm {
    /// Creates a GCM context from a 16- or 32-byte key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for other key lengths.
    pub fn new(key: &[u8]) -> Result<Self> {
        let cipher = Aes::new(key)?;
        let h = u128::from_be_bytes(cipher.encrypt_block_copy(&[0u8; BLOCK_SIZE]));
        Ok(AesGcm {
            cipher,
            h: GhashKey::new(h),
            engine: None,
            par_threshold: None,
        })
    }

    /// Disables the hardware (AES-NI / PCLMULQDQ) paths, forcing the
    /// portable T-table cipher and 8-bit-table GHASH. Bench and test
    /// support.
    pub fn software_only(mut self) -> Self {
        self.cipher = self.cipher.software_only();
        self.h.clmul = None;
        self
    }

    /// Attaches a worker pool: payloads of at least [`PAR_MIN_BYTES`] are
    /// sealed/opened via the chunked multi-threaded path (bit-identical
    /// output; see the module docs).
    pub fn with_engine(mut self, engine: Arc<CryptoEngine>) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Attaches or detaches the worker pool in place.
    pub fn set_engine(&mut self, engine: Option<Arc<CryptoEngine>>) {
        self.engine = engine;
    }

    /// The attached worker pool, if any.
    pub fn engine(&self) -> Option<&Arc<CryptoEngine>> {
        self.engine.as_ref()
    }

    /// Overrides the chunked-path crossover for this context: payloads of
    /// at least `bytes` gang across the engine, smaller ones stay
    /// sequential on the calling thread. Without an override the
    /// process-wide calibrated crossover applies (measured once, at the
    /// first large seal — see the module docs). Test/bench support, and an
    /// escape hatch for hosts where the calibration probe misfires.
    pub fn set_par_threshold(&mut self, bytes: usize) {
        self.par_threshold = Some(bytes);
    }

    /// The engine to use for a payload of `len` bytes, when the chunked
    /// path applies: a gang with real parallelism (adaptive width — an
    /// oversubscribed pool on a small host never gangs), a calling thread
    /// that is not itself an engine worker (background jobs run
    /// sequentially and pipeline *across* workers — and a nested gang
    /// could otherwise deadlock the pool), and a payload at or above the
    /// calibrated crossover.
    fn par_engine(&self, len: usize) -> Option<&CryptoEngine> {
        let engine = self.engine.as_deref()?;
        (engine.gang_width() >= 2
            && !CryptoEngine::on_worker_thread()
            && len >= self.effective_par_threshold(engine))
        .then_some(engine)
    }

    /// The crossover in effect for this context: the explicit override,
    /// or the process-wide calibrated value.
    fn effective_par_threshold(&self, engine: &CryptoEngine) -> usize {
        self.par_threshold
            .unwrap_or_else(|| calibrated_par_threshold(engine))
    }

    /// Derives the initial counter block J0 from a 96-bit nonce.
    fn j0(&self, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_SIZE] {
        let mut j0 = [0u8; BLOCK_SIZE];
        j0[..NONCE_LEN].copy_from_slice(nonce);
        j0[15] = 1;
        j0
    }

    /// Runs CTR mode keystream starting from counter block `initial+1`,
    /// generating [`CTR_BATCH`] counter blocks per trip through the
    /// four-way [`Aes::encrypt_blocks`] path and XORing them into `data`
    /// word-wide.
    fn ctr_xor(&self, j0: &[u8; BLOCK_SIZE], data: &mut [u8]) {
        self.ctr_xor_at(j0, 0, data);
    }

    /// [`AesGcm::ctr_xor`] seeked to an arbitrary block offset: `data` is
    /// treated as the bytes starting `block_offset` whole blocks into the
    /// stream, so disjoint segments of one payload can be processed
    /// concurrently (CTR blocks are independent).
    fn ctr_xor_at(&self, j0: &[u8; BLOCK_SIZE], block_offset: u32, data: &mut [u8]) {
        let mut counter =
            u32::from_be_bytes([j0[12], j0[13], j0[14], j0[15]]).wrapping_add(block_offset);
        let mut ks = [0u8; CTR_BATCH * BLOCK_SIZE];
        let mut done = 0;
        while done < data.len() {
            let take = (data.len() - done).min(ks.len());
            let blocks = take.div_ceil(BLOCK_SIZE);
            for b in 0..blocks {
                let o = b * BLOCK_SIZE;
                ks[o..o + NONCE_LEN].copy_from_slice(&j0[..NONCE_LEN]);
                counter = counter.wrapping_add(1);
                ks[o + NONCE_LEN..o + BLOCK_SIZE].copy_from_slice(&counter.to_be_bytes());
            }
            self.cipher.encrypt_blocks(&mut ks[..blocks * BLOCK_SIZE]);
            xor_in_place(&mut data[done..done + take], &ks[..take]);
            done += take;
        }
    }

    /// The seed's one-block-at-a-time CTR walk, retained as the correctness
    /// oracle for [`AesGcm::ctr_xor`] and as the bench baseline.
    fn ctr_xor_single(&self, j0: &[u8; BLOCK_SIZE], data: &mut [u8]) {
        let mut counter = u32::from_be_bytes([j0[12], j0[13], j0[14], j0[15]]);
        let mut block = *j0;
        for chunk in data.chunks_mut(BLOCK_SIZE) {
            counter = counter.wrapping_add(1);
            block[12..].copy_from_slice(&counter.to_be_bytes());
            let keystream = self.cipher.encrypt_block_copy(&block);
            for (byte, ks) in chunk.iter_mut().zip(keystream.iter()) {
                *byte ^= ks;
            }
        }
    }

    fn tag(&self, j0: &[u8; BLOCK_SIZE], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let s = match self.par_engine(ciphertext.len()) {
            Some(engine) => self.ghash_parallel(engine, aad, ciphertext),
            None => ghash(&self.h, aad, ciphertext),
        };
        let ek_j0 = block_to_u128(&self.cipher.encrypt_block_copy(j0));
        (s ^ ek_j0).to_be_bytes()
    }

    /// Splits `len` bytes into block-aligned segment ranges, one per gang
    /// task: at most `workers` segments, each at least [`PAR_MIN_CHUNK`]
    /// (the final segment alone may carry a partial trailing block).
    fn par_ranges(len: usize, workers: usize) -> Vec<Range<usize>> {
        let blocks = len.div_ceil(BLOCK_SIZE);
        let parts = workers.min(len / PAR_MIN_CHUNK).min(blocks).max(1);
        let base = blocks / parts;
        let extra = blocks % parts;
        let mut ranges = Vec::with_capacity(parts);
        let mut start = 0usize;
        for i in 0..parts {
            let segment_blocks = base + usize::from(i < extra);
            let end = (start + segment_blocks * BLOCK_SIZE).min(len);
            ranges.push(start..end);
            start = end;
        }
        ranges
    }

    /// GHASH over `aad || ciphertext || lengths` with the ciphertext
    /// segments hashed concurrently and combined through extended powers
    /// of H (see the module docs) — identical to [`ghash`] bit for bit.
    fn ghash_parallel(&self, engine: &CryptoEngine, aad: &[u8], ciphertext: &[u8]) -> u128 {
        let ranges = Self::par_ranges(ciphertext.len(), engine.gang_width());
        let mut partials = vec![0u128; ranges.len()];
        {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
                .iter()
                .zip(partials.iter_mut())
                .map(|(range, slot)| {
                    let segment = &ciphertext[range.clone()];
                    let task: Box<dyn FnOnce() + Send + '_> =
                        Box::new(move || *slot = self.h.segment(segment));
                    task
                })
                .collect();
            engine.run_scoped(tasks);
        }
        self.combine_partials(aad, ciphertext.len(), &ranges, &partials)
    }

    /// Folds per-segment GHASH partials into the full-message hash: the
    /// AAD state shifts past every ciphertext block, each partial shifts
    /// past the blocks that follow its segment, and the length block
    /// folds last — exactly the sequential walk, reassociated.
    fn combine_partials(
        &self,
        aad: &[u8],
        ct_len: usize,
        ranges: &[Range<usize>],
        partials: &[u128],
    ) -> u128 {
        let total_blocks = ct_len.div_ceil(BLOCK_SIZE) as u64;
        let mut y = self.h.shift(self.h.segment(aad), total_blocks);
        let mut after = total_blocks;
        for (range, partial) in ranges.iter().zip(partials) {
            after -= range.len().div_ceil(BLOCK_SIZE) as u64;
            y ^= self.h.shift(*partial, after);
        }
        let lengths = ((aad.len() as u128 * 8) << 64) | (ct_len as u128 * 8);
        self.h.mul(y ^ lengths, self.h.powers[0])
    }

    /// Chunked seal: **one** gang per operation — each worker generates
    /// its segment's CTR keystream and immediately folds its partial GHASH
    /// over the ciphertext it just produced, so the pool is dispatched
    /// once, not twice.
    fn seal_chunked(
        &self,
        engine: &CryptoEngine,
        j0: &[u8; BLOCK_SIZE],
        aad: &[u8],
        data: &mut [u8],
    ) -> [u8; TAG_LEN] {
        let ct_len = data.len();
        let ranges = Self::par_ranges(ct_len, engine.gang_width());
        let mut partials = vec![0u128; ranges.len()];
        {
            let j0 = *j0;
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ranges.len());
            let mut rest = &mut *data;
            let mut consumed = 0usize;
            for (range, slot) in ranges.iter().zip(partials.iter_mut()) {
                let (segment, tail) = rest.split_at_mut(range.end - consumed);
                consumed = range.end;
                rest = tail;
                let block_offset = (range.start / BLOCK_SIZE) as u32;
                tasks.push(Box::new(move || {
                    *slot = self.seal_segment(&j0, block_offset, segment);
                }));
            }
            engine.run_scoped(tasks);
        }
        let s = self.combine_partials(aad, ct_len, &ranges, &partials);
        let ek_j0 = block_to_u128(&self.cipher.encrypt_block_copy(j0));
        (s ^ ek_j0).to_be_bytes()
    }

    /// Seals one block-aligned CTR segment in place and returns its
    /// partial GHASH (zero accumulator, no length block): the fused
    /// single-pass kernel when both hardware paths are live — keystream
    /// XOR and GHASH fold share one sweep over the segment — and the
    /// two-pass CTR-then-GHASH walk otherwise. The per-worker body of
    /// [`AesGcm::seal_chunked`] and the whole of the sequential seal.
    fn seal_segment(&self, j0: &[u8; BLOCK_SIZE], block_offset: u32, segment: &mut [u8]) -> u128 {
        match (&self.h.clmul, self.cipher.hw_active()) {
            (Some(clmul), true) => crate::hw::ctr_ghash_seal(
                self.cipher.round_keys(),
                clmul,
                j0,
                block_offset,
                segment,
            ),
            _ => {
                self.ctr_xor_at(j0, block_offset, segment);
                self.h.segment(segment)
            }
        }
    }

    /// CTR keystream over `data`, fanned across the engine's workers when
    /// the chunked path applies (each segment seeks to its block offset).
    fn ctr_xor_dispatch(&self, j0: &[u8; BLOCK_SIZE], data: &mut [u8]) {
        let Some(engine) = self.par_engine(data.len()) else {
            self.ctr_xor(j0, data);
            return;
        };
        let ranges = Self::par_ranges(data.len(), engine.gang_width());
        let j0 = *j0;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ranges.len());
        let mut rest = data;
        let mut consumed = 0usize;
        for range in &ranges {
            let (segment, tail) = rest.split_at_mut(range.end - consumed);
            consumed = range.end;
            rest = tail;
            let block_offset = (range.start / BLOCK_SIZE) as u32;
            tasks.push(Box::new(move || {
                self.ctr_xor_at(&j0, block_offset, segment)
            }));
        }
        engine.run_scoped(tasks);
    }

    /// Encrypts `data` in place and returns the detached authentication
    /// tag. The caller owns the buffer; nothing is allocated.
    pub fn seal_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        data: &mut [u8],
    ) -> [u8; TAG_LEN] {
        let j0 = self.j0(nonce);
        if let Some(engine) = self.par_engine(data.len()) {
            // Fused chunked path: one gang does CTR + partial GHASH.
            return self.seal_chunked(engine, &j0, aad, data);
        }
        if !data.is_empty() && self.h.clmul.is_some() && self.cipher.hw_active() {
            // Sequential fused path: the single-pass CTR+GHASH kernel
            // covers the whole payload as one segment; the combiner then
            // folds the AAD and length block exactly as the chunked path
            // does (identical math, one range).
            let ct_len = data.len();
            let partial = self.seal_segment(&j0, 0, data);
            let whole = 0..ct_len;
            let s = self.combine_partials(aad, ct_len, std::slice::from_ref(&whole), &[partial]);
            let ek_j0 = block_to_u128(&self.cipher.encrypt_block_copy(&j0));
            return (s ^ ek_j0).to_be_bytes();
        }
        self.ctr_xor(&j0, data);
        self.tag(&j0, aad, data)
    }

    /// Verifies the detached `tag` over ciphertext `data`, then decrypts
    /// `data` in place. On failure the buffer is left as ciphertext.
    ///
    /// # Errors
    ///
    /// [`CryptoError::AuthenticationFailed`] if the tag does not verify;
    /// the `expected_iv` is 0 at this layer (see [`AesGcm::open`]).
    pub fn open_in_place(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<()> {
        let j0 = self.j0(nonce);
        let expected = self.tag(&j0, aad, data);
        // Non-constant-time comparison is acceptable in a simulator.
        if &expected != tag {
            return Err(CryptoError::AuthenticationFailed { expected_iv: 0 });
        }
        self.ctr_xor_dispatch(&j0, data);
        Ok(())
    }

    /// Opens `sealed` (`ciphertext || tag`) **into** `out`, leaving the
    /// input untouched: the tag is verified over the borrowed ciphertext
    /// first (a failed open copies nothing), then the plaintext is
    /// produced in `out`, reusing whatever capacity the caller pooled.
    /// This is the borrowed-message open path — no intermediate clone of
    /// the ciphertext, unlike `sealed.to_vec()` + in-place decryption.
    ///
    /// # Errors
    ///
    /// As [`AesGcm::open`]; on failure `out` is unchanged.
    pub fn open_into(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<()> {
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::TruncatedCiphertext { got: sealed.len() });
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let j0 = self.j0(nonce);
        let expected = self.tag(&j0, aad, ciphertext);
        if expected[..] != *tag {
            return Err(CryptoError::AuthenticationFailed { expected_iv: 0 });
        }
        out.clear();
        out.extend_from_slice(ciphertext);
        self.ctr_xor_dispatch(&j0, out);
        Ok(())
    }

    /// Seals the contents of `buf` in place and appends the 16-byte tag,
    /// reusing whatever capacity `buf` already has.
    pub fn seal_vec(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], buf: &mut Vec<u8>) {
        let tag = self.seal_in_place(nonce, aad, buf);
        buf.extend_from_slice(&tag);
    }

    /// Seals a whole batch of independent messages in **one** engine
    /// submission: the messages are grouped into at most
    /// [`CryptoEngine::gang_width`] contiguous runs balanced by bytes, and
    /// each gang task seals its run sequentially (per-message nonce, AAD,
    /// and tag — bit-identical to calling [`AesGcm::seal_vec`] once per
    /// message, which is exactly what each task does). This replaces
    /// per-message gang dispatch for bursts of small messages — KV pages,
    /// NOP padding, speculative pre-seals — where the pool round-trip per
    /// message costs more than the crypto itself.
    ///
    /// Without an engine (or when the fused total stays below the
    /// calibrated crossover) the batch seals inline on the calling thread,
    /// still touching the dispatch machinery zero times.
    pub fn seal_batch(&self, batch: &mut [BatchSealMsg<'_>]) {
        let total: usize = batch.iter().map(|m| m.buf.len()).sum();
        let engine = match self.engine.as_deref() {
            Some(engine)
                if batch.len() >= 2
                    && engine.gang_width() >= 2
                    && !CryptoEngine::on_worker_thread()
                    && total >= self.effective_par_threshold(engine) =>
            {
                engine
            }
            _ => {
                for msg in batch.iter_mut() {
                    self.seal_vec(&msg.nonce, msg.aad, msg.buf);
                }
                return;
            }
        };
        let width = engine.gang_width().min(batch.len());
        let target = total.div_ceil(width).max(1);
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(width);
        let mut rest = &mut *batch;
        while !rest.is_empty() {
            let groups_left = width - tasks.len();
            let cut = if groups_left <= 1 {
                rest.len()
            } else {
                // Leave at least one message for each remaining group.
                let max_take = rest.len() + 1 - groups_left;
                let mut bytes = 0usize;
                let mut i = 0usize;
                while i < max_take {
                    bytes += rest[i].buf.len();
                    i += 1;
                    if bytes >= target {
                        break;
                    }
                }
                i.max(1)
            };
            let (group, tail) = rest.split_at_mut(cut);
            rest = tail;
            tasks.push(Box::new(move || {
                for msg in group {
                    // On a worker thread the per-message seal is always
                    // sequential (no nested gangs), so the fused kernel
                    // runs once per message with zero extra dispatch.
                    self.seal_vec(&msg.nonce, msg.aad, msg.buf);
                }
            }));
        }
        engine.run_scoped(tasks);
    }

    /// Opens `buf` (which must be `ciphertext || tag`) in place: verifies
    /// and strips the trailing tag, then decrypts the remaining bytes.
    ///
    /// # Errors
    ///
    /// As [`AesGcm::open`]; on failure `buf` is unchanged.
    pub fn open_vec(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], buf: &mut Vec<u8>) -> Result<()> {
        if buf.len() < TAG_LEN {
            return Err(CryptoError::TruncatedCiphertext { got: buf.len() });
        }
        let split = buf.len() - TAG_LEN;
        let (ciphertext, tag) = buf.split_at_mut(split);
        let tag: [u8; TAG_LEN] = (&*tag).try_into().expect("exact split");
        self.open_in_place(nonce, aad, ciphertext, &tag)?;
        buf.truncate(split);
        Ok(())
    }

    /// Encrypts `plaintext`, returning `ciphertext || tag`.
    ///
    /// `aad` is authenticated but not encrypted (NVIDIA CC authenticates the
    /// transfer header; we use it for the chunk descriptor).
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        self.seal_vec(nonce, aad, &mut out);
        out
    }

    /// Single-block reference seal: the retained baseline path (per-block
    /// CTR via [`Aes::encrypt_block_copy`], one GHASH multiplication per
    /// block). Property-tested identical to [`AesGcm::seal`]; the crypto
    /// bench reports the fast path's speedup against it.
    pub fn seal_reference(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let j0 = self.j0(nonce);
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        self.ctr_xor_single(&j0, &mut out);
        let s = ghash_reference(&self.h, aad, &out);
        let ek_j0 = block_to_u128(&self.cipher.encrypt_block_copy(&j0));
        let tag = (s ^ ek_j0).to_be_bytes();
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypts `sealed` (which must be `ciphertext || tag`), verifying the
    /// tag before returning the plaintext.
    ///
    /// # Errors
    ///
    /// - [`CryptoError::TruncatedCiphertext`] if `sealed` is shorter than the
    ///   16-byte tag.
    /// - [`CryptoError::AuthenticationFailed`] if the tag does not verify
    ///   (tampering, wrong AAD, or wrong nonce). The reported `expected_iv`
    ///   is 0 at this layer; [`crate::channel`] rewrites it with the real
    ///   channel IV.
    pub fn open(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>> {
        let mut out = sealed.to_vec();
        self.open_vec(nonce, aad, &mut out)?;
        Ok(out)
    }
}

/// Encodes a 64-bit counter IV into a 96-bit GCM nonce.
///
/// NVIDIA CC records the IV "in cyclic code"; the paper uses decimal
/// integers for clarity and so do we: the nonce is the big-endian counter in
/// the low 8 bytes with a 4-byte channel-direction prefix, guaranteeing the
/// CPU→GPU and GPU→CPU streams never collide on a nonce.
pub fn nonce_from_iv(direction: u32, iv: u64) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..4].copy_from_slice(&direction.to_be_bytes());
    nonce[4..].copy_from_slice(&iv.to_be_bytes());
    nonce
}

/// The process-wide calibrated chunked-path crossover: measured once, by
/// the first caller whose engine can actually gang (every later caller
/// reads the cached value). See [`calibrate_crossover`].
fn calibrated_par_threshold(engine: &CryptoEngine) -> usize {
    static CROSSOVER: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CROSSOVER.get_or_init(|| calibrate_crossover(engine))
}

fn best_of(n: usize, mut f: impl FnMut() -> std::time::Duration) -> std::time::Duration {
    (0..n).map(|_| f()).min().unwrap_or_default()
}

/// One-shot startup calibration of the sequential→gang crossover: times a
/// sequential seal against a ganged seal at a few candidate sizes and
/// returns the first size where the gang wins. On hosts where the gang
/// cannot help at all (adaptive width below 2 — e.g. a single-core
/// container running a `k`-thread pool) the crossover is `usize::MAX` and
/// the pool is skipped entirely; where the gang never wins at the probed
/// sizes, very large payloads still gang ([`PAR_FALLBACK_BYTES`]). The
/// probe costs ~1 ms, once per process.
fn calibrate_crossover(engine: &CryptoEngine) -> usize {
    if engine.gang_width() < 2 {
        return usize::MAX;
    }
    let Ok(gcm) = AesGcm::new(&[0x5a; 16]) else {
        return PAR_MIN_BYTES;
    };
    let j0 = gcm.j0(&[0u8; NONCE_LEN]);
    let nonce = [0u8; NONCE_LEN];
    for size in [PAR_MIN_BYTES, 4 * PAR_MIN_BYTES] {
        let mut buf = vec![0u8; size];
        let seq = best_of(3, || {
            let t = std::time::Instant::now();
            std::hint::black_box(gcm.seal_in_place(&nonce, b"", &mut buf));
            t.elapsed()
        });
        let gang = best_of(3, || {
            let t = std::time::Instant::now();
            std::hint::black_box(gcm.seal_chunked(engine, &j0, b"", &mut buf));
            t.elapsed()
        });
        if gang < seq {
            return size;
        }
    }
    PAR_FALLBACK_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// NIST GCM spec test case 1: empty plaintext, zero key.
    #[test]
    fn nist_case_1_empty() {
        let gcm = AesGcm::new(&hex("00000000000000000000000000000000")).unwrap();
        let nonce = [0u8; 12];
        let sealed = gcm.seal(&nonce, b"", b"");
        assert_eq!(sealed, hex("58e2fccefa7e3061367f1d57a4e7455a"));
    }

    /// NIST GCM spec test case 2: one zero block.
    #[test]
    fn nist_case_2_single_block() {
        let gcm = AesGcm::new(&hex("00000000000000000000000000000000")).unwrap();
        let nonce = [0u8; 12];
        let sealed = gcm.seal(&nonce, b"", &hex("00000000000000000000000000000000"));
        assert_eq!(
            sealed,
            hex("0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf")
        );
    }

    /// NIST GCM spec test case 3: 4-block message under a real key.
    #[test]
    fn nist_case_3_four_blocks() {
        let gcm = AesGcm::new(&hex("feffe9928665731c6d6a8f9467308308")).unwrap();
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&hex("cafebabefacedbaddecaf888"));
        let plaintext = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let sealed = gcm.seal(&nonce, b"", &plaintext);
        let expected_ct = hex(
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
        );
        let expected_tag = hex("4d5c2af327cd64a62cf35abd2ba6fab4");
        assert_eq!(&sealed[..plaintext.len()], &expected_ct[..]);
        assert_eq!(&sealed[plaintext.len()..], &expected_tag[..]);
    }

    /// NIST GCM spec test case 4: with AAD and a short final block.
    #[test]
    fn nist_case_4_with_aad() {
        let gcm = AesGcm::new(&hex("feffe9928665731c6d6a8f9467308308")).unwrap();
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&hex("cafebabefacedbaddecaf888"));
        let plaintext = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let sealed = gcm.seal(&nonce, &aad, &plaintext);
        let expected_tag = hex("5bc94fbc3221a5db94fae95ae7121a47");
        assert_eq!(&sealed[plaintext.len()..], &expected_tag[..]);
        let opened = gcm.open(&nonce, &aad, &sealed).unwrap();
        assert_eq!(opened, plaintext);
    }

    /// NIST GCM spec test cases 3 and 4 through the detached-tag in-place
    /// path: same key/nonce/AAD material as above, caller-owned buffers.
    #[test]
    fn nist_vectors_through_in_place_apis() {
        let gcm = AesGcm::new(&hex("feffe9928665731c6d6a8f9467308308")).unwrap();
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&hex("cafebabefacedbaddecaf888"));
        // Case 3: no AAD, 4 whole blocks.
        let plaintext = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let mut buf = plaintext.clone();
        let tag = gcm.seal_in_place(&nonce, b"", &mut buf);
        assert_eq!(
            buf,
            hex(
                "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
            )
        );
        assert_eq!(tag.to_vec(), hex("4d5c2af327cd64a62cf35abd2ba6fab4"));
        gcm.open_in_place(&nonce, b"", &mut buf, &tag).unwrap();
        assert_eq!(buf, plaintext);
        // Case 4: AAD and a partial trailing block.
        let plaintext = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let mut buf = plaintext.clone();
        let tag = gcm.seal_in_place(&nonce, &aad, &mut buf);
        assert_eq!(tag.to_vec(), hex("5bc94fbc3221a5db94fae95ae7121a47"));
        // A detached-tag mismatch leaves the ciphertext untouched.
        let mut wrong = tag;
        wrong[0] ^= 1;
        let ct = buf.clone();
        assert!(gcm.open_in_place(&nonce, &aad, &mut buf, &wrong).is_err());
        assert_eq!(buf, ct);
        gcm.open_in_place(&nonce, &aad, &mut buf, &tag).unwrap();
        assert_eq!(buf, plaintext);
    }

    /// AES-256-GCM: NIST test case 14 (zero key, one zero block).
    #[test]
    fn nist_case_14_aes256() {
        let gcm = AesGcm::new(&[0u8; 32]).unwrap();
        let nonce = [0u8; 12];
        let sealed = gcm.seal(&nonce, b"", &[0u8; 16]);
        assert_eq!(
            sealed,
            hex("cea7403d4d606b6e074ec5d3baf39d18d0d1c8a799996bf0265b98b5d48ab919")
        );
    }

    #[test]
    fn roundtrip_various_lengths() {
        let gcm = AesGcm::new(&[7u8; 32]).unwrap();
        for len in [
            0usize, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 127, 128, 129, 1000,
        ] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let nonce = nonce_from_iv(0, len as u64);
            let sealed = gcm.seal(&nonce, b"aad", &plaintext);
            let opened = gcm.open(&nonce, b"aad", &sealed).unwrap();
            assert_eq!(opened, plaintext, "roundtrip failed at len {len}");
        }
    }

    /// The batched fast path must be byte-identical to the retained
    /// single-block reference at every length around the batch boundaries.
    #[test]
    fn fast_seal_matches_reference_seal() {
        let gcm = AesGcm::new(&[9u8; 32]).unwrap();
        for len in [
            0usize, 1, 15, 16, 17, 63, 64, 65, 127, 128, 129, 255, 256, 1000,
        ] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 131 % 251) as u8).collect();
            let nonce = nonce_from_iv(2, len as u64);
            assert_eq!(
                gcm.seal(&nonce, b"descriptor", &plaintext),
                gcm.seal_reference(&nonce, b"descriptor", &plaintext),
                "fast/reference divergence at len {len}"
            );
        }
    }

    #[test]
    fn seal_vec_and_open_vec_reuse_the_buffer() {
        let gcm = AesGcm::new(&[5u8; 16]).unwrap();
        let nonce = nonce_from_iv(1, 7);
        let mut buf = Vec::with_capacity(64 + TAG_LEN);
        buf.extend_from_slice(&[0xaa; 64]);
        let ptr = buf.as_ptr();
        gcm.seal_vec(&nonce, b"hdr", &mut buf);
        assert_eq!(buf.len(), 64 + TAG_LEN);
        assert_eq!(
            buf.as_ptr(),
            ptr,
            "sealing must not reallocate a sized buffer"
        );
        gcm.open_vec(&nonce, b"hdr", &mut buf).unwrap();
        assert_eq!(buf, vec![0xaa; 64]);
        assert_eq!(buf.as_ptr(), ptr, "opening must not reallocate");
    }

    #[test]
    fn open_vec_rejects_truncated_buffers() {
        let gcm = AesGcm::new(&[5u8; 16]).unwrap();
        let mut buf = vec![0u8; TAG_LEN - 1];
        assert!(matches!(
            gcm.open_vec(&nonce_from_iv(0, 1), b"", &mut buf),
            Err(CryptoError::TruncatedCiphertext { got }) if got == TAG_LEN - 1
        ));
    }

    #[test]
    fn tampered_ciphertext_fails() {
        let gcm = AesGcm::new(&[7u8; 16]).unwrap();
        let nonce = nonce_from_iv(0, 1);
        let mut sealed = gcm.seal(&nonce, b"", b"payload bytes");
        sealed[3] ^= 0x01;
        assert!(matches!(
            gcm.open(&nonce, b"", &sealed),
            Err(CryptoError::AuthenticationFailed { .. })
        ));
    }

    #[test]
    fn tampered_tag_fails() {
        let gcm = AesGcm::new(&[7u8; 16]).unwrap();
        let nonce = nonce_from_iv(0, 1);
        let mut sealed = gcm.seal(&nonce, b"", b"payload bytes");
        let last = sealed.len() - 1;
        sealed[last] ^= 0x80;
        assert!(gcm.open(&nonce, b"", &sealed).is_err());
    }

    #[test]
    fn wrong_nonce_fails() {
        let gcm = AesGcm::new(&[7u8; 16]).unwrap();
        let sealed = gcm.seal(&nonce_from_iv(0, 5), b"", b"payload");
        assert!(gcm.open(&nonce_from_iv(0, 6), b"", &sealed).is_err());
    }

    #[test]
    fn wrong_aad_fails() {
        let gcm = AesGcm::new(&[7u8; 16]).unwrap();
        let nonce = nonce_from_iv(0, 5);
        let sealed = gcm.seal(&nonce, b"header-a", b"payload");
        assert!(gcm.open(&nonce, b"header-b", &sealed).is_err());
    }

    #[test]
    fn truncated_ciphertext_is_reported() {
        let gcm = AesGcm::new(&[7u8; 16]).unwrap();
        let nonce = nonce_from_iv(0, 5);
        assert!(matches!(
            gcm.open(&nonce, b"", &[0u8; 15]),
            Err(CryptoError::TruncatedCiphertext { got: 15 })
        ));
    }

    #[test]
    fn directions_do_not_collide() {
        // The same counter value in opposite directions must produce
        // different nonces, hence unrelated ciphertexts.
        assert_ne!(nonce_from_iv(0, 9), nonce_from_iv(1, 9));
    }

    #[test]
    fn table_mul_matches_reference_gf_mul() {
        let h = 0x66e94bd4ef8a2c3b884cfa59ca342b2eu128; // E_zero_key(0)
        let key = GhashKey::new(h);
        // Structured and pseudo-random operands, against every stored power.
        let powers = [h, gf_mul(h, h), gf_mul(gf_mul(h, h), h)];
        let mut y = 0x0123456789abcdef0123456789abcdefu128;
        for i in 0..200u32 {
            assert_eq!(key.mul_h(y), gf_mul(y, h), "mismatch at iteration {i}");
            for (p, hp) in powers.iter().enumerate() {
                assert_eq!(
                    mul_tab(&key.tables()[p], y),
                    gf_mul(y, *hp),
                    "power {p} iteration {i}"
                );
            }
            y = y.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17) ^ u128::from(i);
        }
        for special in [0u128, 1, 1 << 127, u128::MAX, h] {
            assert_eq!(key.mul_h(special), gf_mul(special, h));
        }
    }

    /// The 4-blocks-per-reduction GHASH walk equals the one-multiplication-
    /// per-block walk on arbitrary (non-multiple-of-64) inputs.
    #[test]
    fn batched_ghash_matches_single_block_walk() {
        let key = GhashKey::new(0x66e94bd4ef8a2c3b884cfa59ca342b2e);
        for len in [0usize, 5, 16, 48, 64, 65, 100, 128, 200, 333] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
            let aad: Vec<u8> = (0..len / 3).map(|i| (i * 53 % 251) as u8).collect();
            assert_eq!(
                ghash(&key, &aad, &data),
                ghash_reference(&key, &aad, &data),
                "GHASH divergence at len {len}"
            );
        }
    }

    /// The PCLMULQDQ GHASH must agree with the 8-bit-table walk (skipped
    /// quietly on machines without the instruction set).
    #[test]
    fn clmul_ghash_matches_software_ghash() {
        let key = GhashKey::new(0x66e94bd4ef8a2c3b884cfa59ca342b2e);
        if key.clmul.is_none() {
            return;
        }
        for len in [0usize, 5, 16, 48, 63, 64, 65, 128, 200, 500] {
            let data: Vec<u8> = (0..len).map(|i| (i * 41 % 251) as u8).collect();
            let aad: Vec<u8> = (0..len / 2).map(|i| (i * 59 % 251) as u8).collect();
            assert_eq!(
                ghash(&key, &aad, &data),
                ghash_soft(&key, &aad, &data),
                "clmul/software GHASH divergence at len {len}"
            );
        }
    }

    /// Hardware-dispatched and software-only GCM produce identical
    /// ciphertext and tags.
    #[test]
    fn software_only_gcm_matches_dispatch() {
        let gcm = AesGcm::new(&[3u8; 32]).unwrap();
        let soft = AesGcm::new(&[3u8; 32]).unwrap().software_only();
        for len in [0usize, 1, 16, 64, 100, 512, 1000] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 7 % 251) as u8).collect();
            let nonce = nonce_from_iv(4, len as u64);
            let sealed = gcm.seal(&nonce, b"aad", &plaintext);
            assert_eq!(sealed, soft.seal(&nonce, b"aad", &plaintext), "len {len}");
            assert_eq!(soft.open(&nonce, b"aad", &sealed).unwrap(), plaintext);
        }
    }

    #[test]
    fn extended_powers_match_repeated_multiplication() {
        let key = GhashKey::new(0x66e94bd4ef8a2c3b884cfa59ca342b2e);
        assert_eq!(key.power(0), GF_ONE);
        let mut expect = GF_ONE;
        for n in 1..=40u64 {
            expect = gf_mul(expect, key.powers[0]);
            assert_eq!(key.power(n), expect, "H^{n}");
        }
        // A power far beyond the precomputed H¹–H⁴ range (a 16 MiB
        // payload's block count) agrees with shifting in two halves.
        let big = 1_048_576u64 + 37;
        assert_eq!(
            key.power(big),
            gf_mul(key.power(big / 2), key.power(big - big / 2))
        );
        // shift() is multiplication by H^n, with the n = 0 identity.
        let v = 0x0123456789abcdef0123456789abcdefu128;
        assert_eq!(key.shift(v, 0), v);
        assert_eq!(key.shift(v, 7), gf_mul(v, key.power(7)));
    }

    #[test]
    fn clmul_generic_mul_matches_bitwise_reference() {
        if !crate::hw::clmul_available() {
            return;
        }
        let mut a = 0x0123456789abcdef0123456789abcdefu128;
        let mut b = 0x66e94bd4ef8a2c3b884cfa59ca342b2eu128;
        for _ in 0..100 {
            assert_eq!(crate::hw::gf_mul(a, b), gf_mul(a, b));
            a = a.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(11) ^ b;
            b = b.wrapping_mul(0xbf58476d1ce4e5b9).rotate_left(29) ^ a;
        }
        for special in [0u128, GF_ONE, u128::MAX] {
            assert_eq!(crate::hw::gf_mul(special, b), gf_mul(special, b));
        }
    }

    /// The chunked multi-threaded seal/open produce bit-identical
    /// ciphertext and tags to the sequential path, at sizes straddling
    /// the engagement threshold and the segment boundaries.
    #[test]
    fn chunked_parallel_seal_is_bit_identical() {
        // Forced gang width + explicit crossover: the chunked path must
        // engage deterministically even on single-core CI hosts (where
        // the adaptive width would otherwise skip the pool).
        let engine = std::sync::Arc::new(CryptoEngine::with_gang_width(4, 4));
        let plain = AesGcm::new(&[7u8; 32]).unwrap();
        let mut par = AesGcm::new(&[7u8; 32])
            .unwrap()
            .with_engine(std::sync::Arc::clone(&engine));
        par.set_par_threshold(PAR_MIN_BYTES);
        for len in [
            PAR_MIN_BYTES - 1,
            PAR_MIN_BYTES,
            PAR_MIN_BYTES + 13,
            100_000,
            (1 << 20) + 1,
        ] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let nonce = nonce_from_iv(3, len as u64);
            let sealed_seq = plain.seal(&nonce, b"descriptor", &plaintext);
            let sealed_par = par.seal(&nonce, b"descriptor", &plaintext);
            assert_eq!(sealed_par, sealed_seq, "len {len}");
            // Cross-path opens: parallel opens sequential and vice versa.
            assert_eq!(
                par.open(&nonce, b"descriptor", &sealed_seq).unwrap(),
                plaintext
            );
            assert_eq!(
                plain.open(&nonce, b"descriptor", &sealed_par).unwrap(),
                plaintext
            );
            // Tampering is still caught on the chunked path.
            let mut bad = sealed_par.clone();
            bad[len / 2] ^= 0x40;
            assert!(par.open(&nonce, b"descriptor", &bad).is_err());
        }
    }

    /// The chunked path also matches on the forced-software (T-table +
    /// 8-bit-table GHASH) variant.
    #[test]
    fn chunked_parallel_matches_on_software_path() {
        let engine = std::sync::Arc::new(CryptoEngine::with_gang_width(3, 3));
        let soft = AesGcm::new(&[9u8; 16]).unwrap().software_only();
        let mut soft_par = AesGcm::new(&[9u8; 16])
            .unwrap()
            .software_only()
            .with_engine(engine);
        soft_par.set_par_threshold(PAR_MIN_BYTES);
        let len = PAR_MIN_BYTES + 4321;
        let plaintext: Vec<u8> = (0..len).map(|i| (i * 131 % 251) as u8).collect();
        let nonce = nonce_from_iv(6, 77);
        assert_eq!(
            soft_par.seal(&nonce, b"hdr", &plaintext),
            soft.seal(&nonce, b"hdr", &plaintext)
        );
    }

    #[test]
    fn open_into_reuses_the_buffer_and_copies_nothing_on_failure() {
        let gcm = AesGcm::new(&[5u8; 16]).unwrap();
        let nonce = nonce_from_iv(1, 9);
        let plaintext = vec![0x5au8; 300];
        let sealed = gcm.seal(&nonce, b"hdr", &plaintext);
        let mut out = Vec::with_capacity(512);
        out.extend_from_slice(b"stale contents");
        let ptr = out.as_ptr();
        gcm.open_into(&nonce, b"hdr", &sealed, &mut out).unwrap();
        assert_eq!(out, plaintext);
        assert_eq!(ptr, out.as_ptr(), "capacity is reused, not reallocated");
        // A tampered message leaves `out` untouched (verified before any
        // byte is copied) and the input ciphertext unmodified.
        let mut bad = sealed.clone();
        bad[0] ^= 1;
        let before = out.clone();
        assert!(gcm.open_into(&nonce, b"hdr", &bad, &mut out).is_err());
        assert_eq!(out, before);
        assert!(matches!(
            gcm.open_into(&nonce, b"hdr", &bad[..TAG_LEN - 1], &mut out),
            Err(CryptoError::TruncatedCiphertext { .. })
        ));
    }

    #[test]
    fn par_ranges_cover_exactly_and_align_to_blocks() {
        for len in [1usize, 16, 100, PAR_MIN_CHUNK * 3 + 5, 1 << 20] {
            for workers in [1usize, 2, 4, 8] {
                let ranges = AesGcm::par_ranges(len, workers);
                assert!(!ranges.is_empty());
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, len);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start, "contiguous");
                    assert_eq!(pair[0].end % BLOCK_SIZE, 0, "block-aligned cut");
                }
            }
        }
    }

    #[test]
    fn gf_mul_commutes() {
        let a = 0x0123456789abcdef0123456789abcdefu128;
        let b = 0xfedcba9876543210fedcba9876543210u128;
        assert_eq!(gf_mul(a, b), gf_mul(b, a));
    }

    #[test]
    fn gf_mul_identity_element() {
        // The identity of GCM's GF(2^128) is the block 0x80 00 ... 00.
        let one: u128 = 1 << 127;
        let a = 0x0123456789abcdef0123456789abcdefu128;
        assert_eq!(gf_mul(a, one), a);
    }
}
