//! Multi-block sealing for the encrypted paged KV cache.
//!
//! A paged KV cache evicts a request's KV blocks as a *group*: N blocks
//! sealed back to back under the owning session's channel keys, each block
//! at its own IV drawn from the channel counter — consecutive, in eviction
//! order. The associated data binds every block to the group id, its index
//! within the group, the group size, and a caller-chosen kind byte, so
//! blocks cannot be dropped, reordered, truncated, or spliced between
//! groups (or between sessions — the keys differ) without failing
//! authentication.
//!
//! Opening supports the PipeLLM §5.4 discipline through
//! [`crate::channel::RxContext::defer_open`]: each block's IV is reserved
//! at the receiver in wire order while the actual decryptions run later,
//! off the critical path and possibly out of order with one another.

use crate::channel::{DeferredOpen, RxContext, SealedMessage, TxContext};
use crate::Result;
use std::sync::Arc;

/// Byte length of [`kv_block_aad`]'s output.
pub const KV_AAD_LEN: usize = 25;

/// Builds the associated data sealed with one KV block: the caller's kind
/// byte first (so transfer descriptors stay self-identifying), then the
/// group id, the block index, the block count, and the block's logical
/// payload length, all big-endian.
pub fn kv_block_aad(kind: u8, group: u64, index: u32, count: u32, len: u64) -> Arc<[u8]> {
    let mut aad = Vec::with_capacity(KV_AAD_LEN);
    aad.push(kind);
    aad.extend_from_slice(&group.to_be_bytes());
    aad.extend_from_slice(&index.to_be_bytes());
    aad.extend_from_slice(&count.to_be_bytes());
    aad.extend_from_slice(&len.to_be_bytes());
    aad.into()
}

/// One evicted KV group: every block's ciphertext, in eviction order, each
/// sealed at its own consecutive channel IV.
#[derive(Debug, Clone)]
pub struct SealedKvGroup {
    /// Group id the blocks are bound to.
    pub group: u64,
    /// Sealed blocks in eviction order (`blocks[i]` carries index `i`).
    pub blocks: Vec<SealedMessage>,
}

impl SealedKvGroup {
    /// Number of blocks in the group.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the group holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Seals `blocks` (plaintexts in eviction order) as one KV group at
/// consecutive committed IVs from `tx`, staging each ciphertext in a
/// buffer drawn from `pool` — real AES-GCM over the staging pool, so
/// steady-state eviction allocates nothing once the pool is warm.
///
/// All blocks share `kind` (the caller's payload descriptor byte).
///
/// # Errors
///
/// [`crate::CryptoError::IvExhausted`] if the group would run the channel
/// into its IV headroom. The check covers the whole group before any IV
/// is consumed, so a failed group leaves the counter untouched (the
/// caller's session layer rekeys on this signal).
pub fn seal_kv_group(
    tx: &mut TxContext,
    kind: u8,
    group: u64,
    blocks: &[&[u8]],
    pool: &mut Vec<Vec<u8>>,
) -> Result<SealedKvGroup> {
    let count = blocks.len() as u32;
    // Stage every block, then seal the whole group as ONE fused batch
    // submission ([`TxContext::seal_batch_prepared`]) instead of one
    // engine dispatch per block — bit-identical messages at the same
    // consecutive IVs, and the group's exhaustion check becomes
    // all-or-nothing (no partially consumed IV run on failure).
    let mut msgs = Vec::with_capacity(blocks.len());
    for (index, plaintext) in blocks.iter().enumerate() {
        let mut buf = pool.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(plaintext);
        let aad = kv_block_aad(kind, group, index as u32, count, plaintext.len() as u64);
        msgs.push((aad, buf));
    }
    let sealed = tx.seal_batch_prepared(msgs)?;
    Ok(SealedKvGroup {
        group,
        blocks: sealed,
    })
}

/// Opens every block of `sealed` in wire order at `rx`'s counter,
/// returning the plaintexts (the synchronous path — native CC semantics).
///
/// # Errors
///
/// [`crate::CryptoError::AuthenticationFailed`] on the first block that
/// does not verify; earlier blocks have advanced the counter.
pub fn open_kv_group(rx: &mut RxContext, sealed: &SealedKvGroup) -> Result<Vec<Vec<u8>>> {
    sealed.blocks.iter().map(|block| rx.open(block)).collect()
}

/// One block whose decryption is decoupled from its arrival: the IV is
/// already reserved at the receiver; [`DeferredKvBlock::open`] performs
/// the actual decryption whenever the pipeline schedules it.
#[derive(Debug, Clone)]
pub struct DeferredKvBlock {
    /// Index of the block within its group.
    pub index: u32,
    /// The sealed block (ciphertext at rest).
    pub sealed: SealedMessage,
    /// Decryption handle at the reserved counter value.
    pub open: DeferredOpen,
}

impl DeferredKvBlock {
    /// Opens the block in place, consuming it and returning the plaintext
    /// in the recycled ciphertext buffer.
    ///
    /// # Errors
    ///
    /// [`crate::CryptoError::AuthenticationFailed`] if the ciphertext was
    /// not sealed at the reserved IV under the matching key.
    pub fn open(self) -> Result<Vec<u8>> {
        let mut buf = self.sealed.bytes;
        self.open.open_in_place(&self.sealed.aad, &mut buf)?;
        Ok(buf)
    }
}

/// Accepts a sealed KV group at `rx` in wire order, reserving one IV per
/// block *now*, and returns per-block deferred-open handles so the actual
/// decryptions can run later and out of order (the PipeLLM swap-out path).
pub fn defer_kv_group(rx: &mut RxContext, sealed: SealedKvGroup) -> Vec<DeferredKvBlock> {
    sealed
        .blocks
        .into_iter()
        .enumerate()
        .map(|(index, block)| DeferredKvBlock {
            index: index as u32,
            open: rx.defer_open(),
            sealed: block,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelKeys, SecureChannel};
    use crate::CryptoError;

    fn channel(seed: u64) -> SecureChannel {
        SecureChannel::new(ChannelKeys::from_seed(seed))
    }

    fn group_plaintexts() -> Vec<Vec<u8>> {
        (0..4u8).map(|i| vec![0x40 + i; 96]).collect()
    }

    #[test]
    fn group_roundtrips_bit_exact_with_consecutive_ivs() {
        let mut ch = channel(9);
        let blocks = group_plaintexts();
        let refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
        let mut pool = Vec::new();
        let sealed = seal_kv_group(ch.device_mut().tx_mut(), 0, 7, &refs, &mut pool).unwrap();
        assert_eq!(sealed.len(), 4);
        // Per-block IVs are consecutive counter values, in eviction order.
        let ivs: Vec<u64> = sealed.blocks.iter().map(|b| b.iv).collect();
        assert_eq!(ivs, vec![1, 2, 3, 4]);
        // Ciphertext is genuine: every block differs from its plaintext.
        for (block, plain) in sealed.blocks.iter().zip(&blocks) {
            assert_ne!(&block.bytes[..plain.len()], plain.as_slice());
        }
        let opened = open_kv_group(ch.host_mut().rx_mut(), &sealed).unwrap();
        assert_eq!(opened, blocks);
    }

    #[test]
    fn cross_session_open_fails() {
        let mut a = channel(1);
        let mut b = channel(2);
        let blocks = group_plaintexts();
        let refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
        let sealed = seal_kv_group(a.device_mut().tx_mut(), 0, 1, &refs, &mut Vec::new()).unwrap();
        // Session B's keys cannot open session A's swapped-out KV.
        assert!(matches!(
            open_kv_group(b.host_mut().rx_mut(), &sealed),
            Err(CryptoError::AuthenticationFailed { .. })
        ));
        // Session A still can: B's failed attempt never advanced B's state
        // into A's stream.
        assert_eq!(
            open_kv_group(a.host_mut().rx_mut(), &sealed).unwrap(),
            blocks
        );
    }

    #[test]
    fn reordered_blocks_fail_authentication() {
        let mut ch = channel(4);
        let blocks = group_plaintexts();
        let refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
        let mut sealed =
            seal_kv_group(ch.device_mut().tx_mut(), 0, 3, &refs, &mut Vec::new()).unwrap();
        sealed.blocks.swap(0, 1);
        assert!(open_kv_group(ch.host_mut().rx_mut(), &sealed).is_err());
    }

    #[test]
    fn aad_binds_group_identity() {
        let mut ch = channel(5);
        let blocks = group_plaintexts();
        let refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
        let mut sealed =
            seal_kv_group(ch.device_mut().tx_mut(), 0, 10, &refs, &mut Vec::new()).unwrap();
        // Claiming the block belongs to another group flips the AAD.
        sealed.blocks[0].aad = kv_block_aad(0, 11, 0, 4, 96);
        assert!(matches!(
            open_kv_group(ch.host_mut().rx_mut(), &sealed),
            Err(CryptoError::AuthenticationFailed { expected_iv: 1 })
        ));
    }

    #[test]
    fn deferred_opens_work_out_of_order() {
        let mut ch = channel(6);
        let blocks = group_plaintexts();
        let refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
        let sealed = seal_kv_group(ch.device_mut().tx_mut(), 0, 2, &refs, &mut Vec::new()).unwrap();
        let mut deferred = defer_kv_group(ch.host_mut().rx_mut(), sealed);
        // The counter advanced at arrival time: both endpoints agree.
        assert_eq!(ch.host().rx().next_iv(), ch.device().tx().next_iv());
        // Open in scrambled order; every block still authenticates.
        deferred.reverse();
        let last = deferred.remove(1);
        let mut opened: Vec<(u32, Vec<u8>)> = deferred
            .into_iter()
            .map(|d| (d.index, d.open().unwrap()))
            .collect();
        opened.push((last.index, last.open().unwrap()));
        opened.sort_by_key(|(i, _)| *i);
        let plain: Vec<Vec<u8>> = opened.into_iter().map(|(_, p)| p).collect();
        assert_eq!(plain, blocks);
        // Later traffic on the channel proceeds undisturbed.
        let next = ch.device_mut().seal(b"post-group traffic").unwrap();
        assert_eq!(ch.host_mut().open(&next).unwrap(), b"post-group traffic");
    }

    #[test]
    fn deferred_open_rejects_tampering() {
        let mut ch = channel(8);
        let sealed = seal_kv_group(
            ch.device_mut().tx_mut(),
            0,
            1,
            &[&[9u8; 64][..]],
            &mut Vec::new(),
        )
        .unwrap();
        let mut deferred = defer_kv_group(ch.host_mut().rx_mut(), sealed);
        let mut block = deferred.remove(0);
        block.sealed.bytes[0] ^= 1;
        assert!(matches!(
            block.open(),
            Err(CryptoError::AuthenticationFailed { expected_iv: 1 })
        ));
    }

    #[test]
    fn sealing_reuses_pooled_buffers() {
        let mut ch = channel(12);
        let mut pool: Vec<Vec<u8>> = vec![Vec::with_capacity(256), Vec::with_capacity(256)];
        let ptrs: Vec<*const u8> = pool.iter().map(|b| b.as_ptr()).collect();
        let blocks = [&[1u8; 128][..], &[2u8; 128][..]];
        let sealed = seal_kv_group(ch.device_mut().tx_mut(), 0, 4, &blocks, &mut pool).unwrap();
        assert!(pool.is_empty(), "both staged buffers were consumed");
        let mut sealed_ptrs: Vec<*const u8> =
            sealed.blocks.iter().map(|b| b.bytes.as_ptr()).collect();
        sealed_ptrs.sort_unstable();
        let mut expected = ptrs;
        expected.sort_unstable();
        assert_eq!(sealed_ptrs, expected, "ciphertext lives in pooled buffers");
    }
}
