//! Cryptographic substrate for the PipeLLM reproduction.
//!
//! NVIDIA H100 confidential computing encrypts every CPU↔GPU transfer with
//! AES-GCM under a session key and a strictly incrementing Initialization
//! Vector (IV) that is implicitly synchronized between both endpoints
//! (PipeLLM paper, §2.2 and Figure 1). This crate provides:
//!
//! - [`aes`]: the AES-128/AES-256 block cipher, implemented from first
//!   principles (S-box, key schedule, rounds) and checked against FIPS-197
//!   vectors. The hot multi-block entry point dispatches to AES-NI where
//!   the CPU has it, with a four-T-table software path everywhere else.
//! - [`gcm`]: Galois/Counter Mode on top of AES, including the GHASH
//!   universal hash over GF(2^128) (8-bit Shoup tables, or PCLMULQDQ on
//!   x86_64), checked against NIST CAVP vectors, with zero-copy
//!   `seal_in_place`/`open_in_place` entry points.
//! - [`hw`]: the runtime-detected hardware acceleration layer backing the
//!   two fast paths above.
//! - [`engine`]: the multi-threaded crypto engine — a persistent pool of
//!   worker threads servicing chunked seal/open gangs (large payloads are
//!   split into segments whose CTR keystreams and partial GHASHes run
//!   concurrently, combined into the standard tag, bit-identical to the
//!   sequential path) and background deferred-open jobs.
//! - [`channel`]: [`channel::SecureChannel`], a pair of endpoints that model
//!   the CPU-side and GPU-side encryption engines with the exact IV
//!   discipline PipeLLM exploits and must not break: each encryption consumes
//!   the next IV, IVs never repeat, and decrypting with the wrong IV fails
//!   authentication.
//! - [`cost`]: a calibrated throughput model for the CPU encryption engine,
//!   used by the timing layer (`pipellm-sim`) so benchmarks can move
//!   *virtual* multi-gigabyte payloads without encrypting them.
//! - [`kv`]: multi-block sealing for the encrypted paged KV cache — a
//!   group of KV blocks sealed back to back at consecutive channel IVs,
//!   with AAD binding each block to its group, index, and size, and
//!   deferred per-block opens so decryption can run off the critical path.
//! - [`session`]: the multi-tenant session layer — [`session::SessionId`]
//!   and [`session::SessionManager`], which derive per-session
//!   [`channel::ChannelKeys`] from a root secret, own one channel pair per
//!   session, and rekey sessions whose IV counters approach exhaustion.
//! - [`reuse`]: the **deliberately insecure** ciphertext-reuse strawman of
//!   the paper's §8.2 (static per-chunk nonces), built to demonstrate the
//!   replay attack the IV discipline prevents and to quantify the
//!   performance it trades away.
//!
//! # Example
//!
//! ```
//! use pipellm_crypto::channel::{ChannelKeys, SecureChannel};
//!
//! # fn main() -> Result<(), pipellm_crypto::CryptoError> {
//! let keys = ChannelKeys::from_seed(7);
//! let mut channel = SecureChannel::new(keys);
//! let msg = b"kv-cache block 42";
//! let sealed = channel.host_mut().seal(msg)?;
//! let opened = channel.device_mut().open(&sealed)?;
//! assert_eq!(opened.as_slice(), msg);
//! # Ok(())
//! # }
//! ```

// `unsafe` is denied crate-wide; the exemptions are the [`hw`] module
// (runtime-detected AES-NI / PCLMULQDQ intrinsics) and the lifetime
// erasure inside [`engine`]'s scoped gang dispatch.
#![deny(unsafe_code)]
#![warn(missing_docs)]
// Library code must propagate crypto failures, never panic on them: a
// corrupted frame is a handled event (sentinel + retry), not a crash.
// Tests are exempt — an `unwrap` in a test *is* the assertion.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod aes;
pub mod channel;
pub mod cost;
pub mod engine;
pub mod gcm;
pub mod hw;
pub mod kv;
pub mod reuse;
pub mod session;

use std::error::Error;
use std::fmt;

/// Errors produced by the cryptographic substrate.
///
/// All failure modes are explicit because PipeLLM's error handler (§5.3 of
/// the paper) is driven by *which* way a speculative ciphertext is unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// The authentication tag did not verify: the ciphertext was tampered
    /// with, or it was produced under a different IV than the receiver used.
    AuthenticationFailed {
        /// IV the receiving endpoint used for this decryption attempt.
        expected_iv: u64,
    },
    /// An encryption was requested with an IV that this endpoint has already
    /// consumed. Reusing an IV under GCM is catastrophic, so the channel
    /// refuses rather than silently weakening security.
    IvReused {
        /// The IV that was requested again.
        iv: u64,
    },
    /// A send was committed at an IV that does not match the sender's
    /// counter. The caller must pad NOPs (if `iv > expected`) or discard the
    /// speculative ciphertext (if `iv < expected`, see [`CryptoError::IvReused`]).
    IvMismatch {
        /// IV carried by the message being committed.
        iv: u64,
        /// IV the sender's counter currently expects.
        expected: u64,
    },
    /// The sender's IV counter ran into the reserved exhaustion headroom
    /// near `u64::MAX`. Advancing further would eventually wrap the counter
    /// and silently reuse nonces, so the channel refuses; the session must
    /// be rekeyed (see [`session::SessionManager::rekey`]).
    IvExhausted {
        /// The counter value that hit the headroom.
        iv: u64,
    },
    /// A key of invalid length was supplied.
    InvalidKeyLength {
        /// Number of key bytes supplied.
        got: usize,
    },
    /// The ciphertext is too short to contain the authentication tag.
    TruncatedCiphertext {
        /// Number of ciphertext bytes supplied.
        got: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::AuthenticationFailed { expected_iv } => {
                write!(f, "authentication failed at receiver IV {expected_iv}")
            }
            CryptoError::IvReused { iv } => write!(f, "refusing to reuse IV {iv}"),
            CryptoError::IvMismatch { iv, expected } => {
                write!(
                    f,
                    "committed IV {iv} does not match sender counter {expected}"
                )
            }
            CryptoError::IvExhausted { iv } => {
                write!(
                    f,
                    "IV counter {iv} is inside the exhaustion headroom; rekey the session"
                )
            }
            CryptoError::InvalidKeyLength { got } => {
                write!(f, "invalid key length {got}, expected 16 or 32 bytes")
            }
            CryptoError::TruncatedCiphertext { got } => {
                write!(
                    f,
                    "ciphertext of {got} bytes is shorter than the 16-byte tag"
                )
            }
        }
    }
}

impl Error for CryptoError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CryptoError>;
