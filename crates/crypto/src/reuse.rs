//! The ciphertext-reuse strawman of the paper's §8.2 — **deliberately
//! insecure**, implemented to *quantify* the trade-off the paper argues
//! about.
//!
//! Observation: applications never modify swapped-out model weights or KV
//! cache on the CPU, so one could retain the sealed form and re-send it on
//! every reload, eliminating re-encryption entirely. Doing this requires a
//! nonce that does not change between sends — here, derived from the
//! chunk's stable tag — which surrenders exactly the properties the
//! incrementing-IV discipline buys:
//!
//! 1. **Traffic linkability**: identical plaintext at the same address
//!    produces identical ciphertext, so an observer can tell when the same
//!    data crosses the bus again.
//! 2. **Replay**: a host-level attacker can substitute any *previously
//!    captured* ciphertext for the same chunk, and the receiver will accept
//!    it — rolling the GPU back to stale weights or KV state (the paper:
//!    "more critically, it could make the system vulnerable to replay
//!    attacks").
//!
//! The integration tests in `tests/security.rs` demonstrate both failures
//! against this module and show the [`crate::channel`] discipline rejecting
//! the same attacks. The `ablations` bench quantifies the performance this
//! insecurity would buy.

use crate::gcm::{AesGcm, NONCE_LEN};
use crate::{CryptoError, Result};

/// A sealer with per-chunk *static* nonces: fast, cacheable, and insecure
/// against replay. See the module docs before using this for anything.
#[derive(Debug, Clone)]
pub struct StaticSealer {
    gcm: AesGcm,
}

impl StaticSealer {
    /// Creates a sealer from a 32-byte key.
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidKeyLength`] for keys that are not 32 bytes.
    pub fn new(key: &[u8]) -> Result<Self> {
        Ok(StaticSealer {
            gcm: AesGcm::new(key)?,
        })
    }

    /// The nonce used for `chunk_tag` — a pure function of the tag, which
    /// is the whole point and the whole problem.
    fn nonce(chunk_tag: u64) -> [u8; NONCE_LEN] {
        let mut nonce = [0u8; NONCE_LEN];
        nonce[..4].copy_from_slice(b"RUSE");
        nonce[4..].copy_from_slice(&chunk_tag.to_be_bytes());
        nonce
    }

    /// Seals `plaintext` for the chunk identified by `chunk_tag`.
    ///
    /// Sealing the same `(chunk_tag, plaintext)` twice yields the identical
    /// ciphertext (deterministic encryption) — cacheable and linkable.
    pub fn seal(&self, chunk_tag: u64, plaintext: &[u8]) -> Vec<u8> {
        self.gcm
            .seal(&Self::nonce(chunk_tag), &chunk_tag.to_be_bytes(), plaintext)
    }

    /// Opens a ciphertext for `chunk_tag`.
    ///
    /// Accepts **any** ciphertext ever produced for this tag, including
    /// stale ones — there is no freshness check. This is the replay hole.
    ///
    /// # Errors
    ///
    /// [`CryptoError::AuthenticationFailed`] only for ciphertext that was
    /// never legitimately produced for this tag (tampering or wrong tag).
    pub fn open(&self, chunk_tag: u64, sealed: &[u8]) -> Result<Vec<u8>> {
        self.gcm
            .open(&Self::nonce(chunk_tag), &chunk_tag.to_be_bytes(), sealed)
            .map_err(|_| CryptoError::AuthenticationFailed {
                expected_iv: chunk_tag,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sealer() -> StaticSealer {
        StaticSealer::new(&[0x42u8; 32]).expect("32-byte key")
    }

    #[test]
    fn roundtrip_works() {
        let s = sealer();
        let sealed = s.seal(7, b"layer weights v1");
        assert_eq!(s.open(7, &sealed).expect("authentic"), b"layer weights v1");
    }

    #[test]
    fn sealing_is_deterministic_hence_linkable() {
        let s = sealer();
        assert_eq!(
            s.seal(7, b"same data"),
            s.seal(7, b"same data"),
            "identical ciphertext: an observer links repeated transfers"
        );
        assert_ne!(s.seal(7, b"same data"), s.seal(8, b"same data"));
    }

    #[test]
    fn replay_of_stale_ciphertext_is_accepted() {
        // The vulnerability, demonstrated: capture v1's ciphertext, let the
        // application move to v2, replay v1 — the receiver cannot tell.
        let s = sealer();
        let stale = s.seal(7, b"weights v1");
        let _fresh = s.seal(7, b"weights v2");
        assert_eq!(
            s.open(7, &stale)
                .expect("replay accepted — this is the flaw"),
            b"weights v1"
        );
    }

    #[test]
    fn cross_tag_substitution_is_rejected() {
        let s = sealer();
        let sealed = s.seal(7, b"chunk 7 data");
        assert!(matches!(
            s.open(8, &sealed),
            Err(CryptoError::AuthenticationFailed { .. })
        ));
    }

    #[test]
    fn tampering_is_still_detected() {
        let s = sealer();
        let mut sealed = s.seal(7, b"data");
        sealed[0] ^= 1;
        assert!(s.open(7, &sealed).is_err());
    }
}
