//! Calibrated timing model for the CPU-side encryption engine.
//!
//! The timing layer of the reproduction moves *virtual* payloads (length
//! only); this module answers "how long would the CPU take to seal/open
//! `n` bytes" so the simulator can schedule crypto work without touching
//! real bytes. The numbers are calibrated from the paper's Figure 2
//! microbenchmark and §7.2:
//!
//! - sustained single-thread AES-GCM throughput ≈ 5.8 GB/s (Figure 2,
//!   CC-enabled throughput rows plateau at 5.82–5.83 GB/s);
//! - per-operation CPU setup (buffer staging, EVP context) ≈ 1.5 µs;
//! - encryption scales near-linearly with thread count until it saturates
//!   PCIe (§7.2: PipeLLM uses multiple threads for model offloading).

use std::time::Duration;

/// Bytes per gigabyte, the unit the paper quotes bandwidths in.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Throughput/latency model for a single CPU crypto worker.
///
/// # Example
///
/// ```
/// use pipellm_crypto::cost::CpuCryptoModel;
///
/// let model = CpuCryptoModel::default();
/// let one_mib = model.seal_time(1 << 20);
/// let ten_mib = model.seal_time(10 << 20);
/// assert!(ten_mib > one_mib * 9); // near-linear in size
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCryptoModel {
    /// Sustained per-thread throughput, bytes per second.
    pub bytes_per_sec: f64,
    /// Fixed per-operation overhead (context setup, IV bookkeeping).
    pub per_op: Duration,
}

impl Default for CpuCryptoModel {
    /// Calibration from the paper's Figure 2 (see module docs).
    fn default() -> Self {
        CpuCryptoModel {
            bytes_per_sec: 5.8 * GIB,
            per_op: Duration::from_nanos(1_500),
        }
    }
}

impl CpuCryptoModel {
    /// Creates a model from a throughput in GB/s and per-op overhead.
    pub fn from_gbps(gbps: f64, per_op: Duration) -> Self {
        CpuCryptoModel {
            bytes_per_sec: gbps * GIB,
            per_op,
        }
    }

    /// Time for one worker to seal (encrypt + tag) `bytes` bytes.
    pub fn seal_time(&self, bytes: u64) -> Duration {
        self.op_time(bytes)
    }

    /// Time for one worker to open (decrypt + verify) `bytes` bytes.
    ///
    /// AES-GCM decryption runs the same CTR keystream and GHASH, so the
    /// model treats it as symmetric with sealing.
    pub fn open_time(&self, bytes: u64) -> Duration {
        self.op_time(bytes)
    }

    /// Time to seal a NOP (1-byte dummy): dominated by per-op overhead.
    pub fn nop_time(&self) -> Duration {
        self.op_time(1)
    }

    fn op_time(&self, bytes: u64) -> Duration {
        let transfer = Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec);
        self.per_op + transfer
    }

    /// Aggregate throughput of `threads` independent workers in bytes/sec,
    /// assuming chunk-level parallelism (each chunk is sealed by one
    /// worker, as PipeLLM does for model offloading).
    pub fn pool_bytes_per_sec(&self, threads: usize) -> f64 {
        self.bytes_per_sec * threads.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_figure2_plateau() {
        let model = CpuCryptoModel::default();
        // 32 MiB at ~5.8 GB/s ≈ 5.5 ms; Figure 2 reports 5.25 ms for the
        // whole CC-enabled API call. Same order, slightly above raw PCIe.
        let t = model.seal_time(32 << 20);
        assert!(
            t > Duration::from_millis(4) && t < Duration::from_millis(7),
            "{t:?}"
        );
    }

    #[test]
    fn tiny_ops_are_dominated_by_setup() {
        let model = CpuCryptoModel::default();
        let nop = model.nop_time();
        assert!(nop >= model.per_op);
        assert!(nop < model.per_op * 2);
    }

    #[test]
    fn seal_and_open_are_symmetric() {
        let model = CpuCryptoModel::default();
        assert_eq!(model.seal_time(123_456), model.open_time(123_456));
    }

    #[test]
    fn pool_scales_linearly() {
        let model = CpuCryptoModel::default();
        let one = model.pool_bytes_per_sec(1);
        let four = model.pool_bytes_per_sec(4);
        assert!((four / one - 4.0).abs() < 1e-9);
        // Zero threads degrades to one, never to zero throughput.
        assert_eq!(model.pool_bytes_per_sec(0), one);
    }

    #[test]
    fn from_gbps_roundtrips() {
        let model = CpuCryptoModel::from_gbps(6.4, Duration::from_micros(2));
        assert!((model.bytes_per_sec - 6.4 * GIB).abs() < 1.0);
        assert_eq!(model.per_op, Duration::from_micros(2));
    }
}
