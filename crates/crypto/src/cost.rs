//! Calibrated timing model for the CPU-side encryption engine.
//!
//! The timing layer of the reproduction moves *virtual* payloads (length
//! only); this module answers "how long would the CPU take to seal/open
//! `n` bytes" so the simulator can schedule crypto work without touching
//! real bytes. The numbers are calibrated from the paper's Figure 2
//! microbenchmark and §7.2:
//!
//! - sustained single-thread AES-GCM throughput ≈ 5.8 GB/s (Figure 2,
//!   CC-enabled throughput rows plateau at 5.82–5.83 GB/s);
//! - per-operation CPU setup (buffer staging, EVP context) ≈ 1.5 µs;
//! - encryption scales near-linearly with thread count until it saturates
//!   PCIe (§7.2: PipeLLM uses multiple threads for model offloading).

use std::time::Duration;

/// Bytes per gigabyte, the unit the paper quotes bandwidths in.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Throughput/latency model for a single CPU crypto worker.
///
/// # Example
///
/// ```
/// use pipellm_crypto::cost::CpuCryptoModel;
///
/// let model = CpuCryptoModel::default();
/// let one_mib = model.seal_time(1 << 20);
/// let ten_mib = model.seal_time(10 << 20);
/// assert!(ten_mib > one_mib * 9); // near-linear in size
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCryptoModel {
    /// Sustained per-thread throughput, bytes per second.
    pub bytes_per_sec: f64,
    /// Fixed per-operation overhead (context setup, IV bookkeeping).
    pub per_op: Duration,
    /// Aggregate multi-thread ceiling, bytes per second: §7.2 has the
    /// engine scaling near-linearly with thread count *until it saturates
    /// PCIe*, so a pool's throughput is capped here no matter how many
    /// workers it runs (PCIe-class staging bandwidth; the ciphertext still
    /// has to move through the bounce buffers).
    pub saturation_bytes_per_sec: f64,
    /// Adaptive gang crossover: payloads below this seal sequentially on
    /// the submitting thread (the real engine skips the pool below its
    /// calibrated threshold — see `pipellm_crypto::gcm`), so pool pricing
    /// only credits thread-level parallelism at or above it.
    pub gang_min_bytes: u64,
}

impl Default for CpuCryptoModel {
    /// Calibration from the paper's Figure 2 (see module docs).
    fn default() -> Self {
        CpuCryptoModel {
            bytes_per_sec: 5.8 * GIB,
            per_op: Duration::from_nanos(1_500),
            saturation_bytes_per_sec: 25.0 * GIB,
            gang_min_bytes: 64 * 1024,
        }
    }
}

impl CpuCryptoModel {
    /// Creates a model from a throughput in GB/s and per-op overhead,
    /// keeping the default saturation ceiling.
    pub fn from_gbps(gbps: f64, per_op: Duration) -> Self {
        CpuCryptoModel {
            bytes_per_sec: gbps * GIB,
            per_op,
            ..Self::default()
        }
    }

    /// Overrides the aggregate saturation ceiling (GB/s).
    pub fn with_saturation_gbps(mut self, gbps: f64) -> Self {
        self.saturation_bytes_per_sec = gbps * GIB;
        self
    }

    /// Time for one worker to seal (encrypt + tag) `bytes` bytes.
    pub fn seal_time(&self, bytes: u64) -> Duration {
        self.op_time(bytes)
    }

    /// Time for one worker to open (decrypt + verify) `bytes` bytes.
    ///
    /// AES-GCM decryption runs the same CTR keystream and GHASH, so the
    /// model treats it as symmetric with sealing.
    pub fn open_time(&self, bytes: u64) -> Duration {
        self.op_time(bytes)
    }

    /// Time to seal a NOP (1-byte dummy): dominated by per-op overhead.
    pub fn nop_time(&self) -> Duration {
        self.op_time(1)
    }

    fn op_time(&self, bytes: u64) -> Duration {
        let transfer = Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec);
        self.per_op + transfer
    }

    /// Effective throughput of the pool for one `bytes`-byte payload:
    /// below the adaptive crossover ([`CpuCryptoModel::gang_min_bytes`])
    /// the engine seals sequentially on the submitting thread — one
    /// thread's rate, no matter how many workers the pool runs — and at
    /// or above it chunk-level parallelism scales near-linearly with
    /// thread count until the pool hits the PCIe-class saturation ceiling
    /// (§7.2).
    pub fn pool_bytes_per_sec(&self, bytes: u64, threads: usize) -> f64 {
        if threads < 2 || bytes < self.gang_min_bytes {
            return self.bytes_per_sec;
        }
        let linear = self.bytes_per_sec * threads as f64;
        // The ceiling never cuts below a single thread's throughput.
        linear.min(self.saturation_bytes_per_sec.max(self.bytes_per_sec))
    }

    /// Wall time for the pool to seal one `bytes`-byte buffer: chunked
    /// across all workers at or above the adaptive crossover (the
    /// blocking native-CC path and the engine's chunked seal), sequential
    /// below it.
    pub fn pool_seal_time(&self, bytes: u64, threads: usize) -> Duration {
        self.per_op
            + Duration::from_secs_f64(bytes as f64 / self.pool_bytes_per_sec(bytes, threads))
    }

    /// Gang-open twin of [`CpuCryptoModel::pool_seal_time`] (AES-GCM
    /// decryption runs the same CTR keystream and GHASH).
    pub fn pool_open_time(&self, bytes: u64, threads: usize) -> Duration {
        self.pool_seal_time(bytes, threads)
    }

    /// Wall time for one **fused batch** submission sealing `count` small
    /// messages totalling `total_bytes`: a single dispatch (`per_op`)
    /// covers the whole batch instead of one per message, plus one
    /// 16-byte tag/length-block finalization per message. The batch total
    /// decides whether the gang engages, exactly like the real engine's
    /// batch path.
    pub fn batch_seal_time(&self, total_bytes: u64, count: usize, threads: usize) -> Duration {
        let hashed = total_bytes + 16 * count.max(1) as u64;
        self.per_op
            + Duration::from_secs_f64(hashed as f64 / self.pool_bytes_per_sec(hashed, threads))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_figure2_plateau() {
        let model = CpuCryptoModel::default();
        // 32 MiB at ~5.8 GB/s ≈ 5.5 ms; Figure 2 reports 5.25 ms for the
        // whole CC-enabled API call. Same order, slightly above raw PCIe.
        let t = model.seal_time(32 << 20);
        assert!(
            t > Duration::from_millis(4) && t < Duration::from_millis(7),
            "{t:?}"
        );
    }

    #[test]
    fn tiny_ops_are_dominated_by_setup() {
        let model = CpuCryptoModel::default();
        let nop = model.nop_time();
        assert!(nop >= model.per_op);
        assert!(nop < model.per_op * 2);
    }

    #[test]
    fn seal_and_open_are_symmetric() {
        let model = CpuCryptoModel::default();
        assert_eq!(model.seal_time(123_456), model.open_time(123_456));
    }

    /// A payload comfortably above the adaptive crossover.
    const BIG: u64 = 32 << 20;

    #[test]
    fn pool_scales_linearly_below_saturation() {
        let model = CpuCryptoModel::default();
        let one = model.pool_bytes_per_sec(BIG, 1);
        let four = model.pool_bytes_per_sec(BIG, 4);
        assert!((four / one - 4.0).abs() < 1e-9);
        // Zero threads degrades to one, never to zero throughput.
        assert_eq!(model.pool_bytes_per_sec(BIG, 0), one);
    }

    #[test]
    fn pool_saturates_at_the_pcie_class_ceiling() {
        let model = CpuCryptoModel::default();
        // 5.8 GB/s per thread: 8 threads would be 46.4 GB/s linear, but
        // the aggregate clamps at the 25 GB/s staging ceiling (§7.2
        // "scales near-linearly … until it saturates PCIe").
        let eight = model.pool_bytes_per_sec(BIG, 8);
        assert!((eight - model.saturation_bytes_per_sec).abs() < 1.0);
        assert_eq!(
            eight,
            model.pool_bytes_per_sec(BIG, 64),
            "flat past saturation"
        );
        assert!(
            model.pool_bytes_per_sec(BIG, 4) < eight,
            "4 threads still scale"
        );
        // Gang time reflects the cap: 8 and 16 threads seal equally fast.
        assert_eq!(
            model.pool_seal_time(32 << 20, 8),
            model.pool_seal_time(32 << 20, 16)
        );
        assert!(model.pool_seal_time(32 << 20, 4) > model.pool_seal_time(32 << 20, 8));
        // A degenerate model whose ceiling sits below one thread never
        // reports a pool slower than that single thread.
        let tight = CpuCryptoModel::default().with_saturation_gbps(1.0);
        assert_eq!(tight.pool_bytes_per_sec(BIG, 1), tight.bytes_per_sec);
        assert_eq!(tight.pool_bytes_per_sec(BIG, 8), tight.bytes_per_sec);
    }

    #[test]
    fn adaptive_crossover_prices_sequential_below_the_threshold() {
        let model = CpuCryptoModel::default();
        let t = model.gang_min_bytes;
        // One byte below the crossover: one thread's rate regardless of
        // pool width — the engine skips the gang there.
        assert_eq!(model.pool_bytes_per_sec(t - 1, 8), model.bytes_per_sec);
        // Exactly at the crossover: the gang engages.
        assert!((model.pool_bytes_per_sec(t, 8) / model.bytes_per_sec - 4.3103).abs() < 0.01);
        assert!(model.pool_bytes_per_sec(t, 4) > model.pool_bytes_per_sec(t - 1, 4));
        // Seal time is continuous in spirit: the ganged seal at the
        // threshold is never slower than the sequential seal just below.
        assert!(model.pool_seal_time(t, 8) <= model.pool_seal_time(t - 1, 8));
        // A single-thread pool never gangs, at any size.
        assert_eq!(model.pool_bytes_per_sec(BIG, 1), model.bytes_per_sec);
    }

    #[test]
    fn batch_seal_charges_one_dispatch_for_the_whole_group() {
        let model = CpuCryptoModel::default();
        // 16 KV pages of 4 KiB: per-message dispatch pays per_op 16×,
        // the fused batch once.
        let per_message: Duration = (0..16).map(|_| model.pool_seal_time(4096, 4)).sum();
        let batch = model.batch_seal_time(16 * 4096, 16, 4);
        assert!(batch < per_message);
        assert!(
            per_message - batch > model.per_op * 14,
            "dispatch dominates"
        );
        // The batch total decides gang engagement: 16 × 4 KiB crosses the
        // threshold even though each message alone would not.
        assert!(
            model.batch_seal_time(16 * 4096, 16, 8) < model.batch_seal_time(16 * 4096, 16, 1),
            "fused total unlocks thread-level parallelism"
        );
        // An empty-ish batch still costs the dispatch.
        assert!(model.batch_seal_time(0, 0, 4) >= model.per_op);
    }

    #[test]
    fn from_gbps_roundtrips() {
        let model = CpuCryptoModel::from_gbps(6.4, Duration::from_micros(2));
        assert!((model.bytes_per_sec - 6.4 * GIB).abs() < 1.0);
        assert_eq!(model.per_op, Duration::from_micros(2));
    }
}
