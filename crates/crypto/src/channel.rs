//! Secure channels with the NVIDIA-CC incrementing-IV discipline.
//!
//! Figure 1 of the PipeLLM paper shows the protocol this module reproduces:
//! the CPU→GPU direction is sealed under `keyCPU` and the GPU→CPU direction
//! under `keyGPU`; each direction has a counter IV that both endpoints
//! advance in lockstep, **without the IV ever being transmitted**. A
//! receiver therefore always opens the next message at its own counter
//! value; a ciphertext sealed at any other IV fails authentication.
//!
//! The speculative API ([`TxContext::seal_speculative`]) is the hook that
//! PipeLLM's predictor uses: it seals a payload at a *future* IV without
//! advancing the sender counter. Committing a speculative message later
//! requires the counter to have caught up exactly — which is why the paper's
//! error handler needs NOP padding and pipeline relinquishing.

use crate::engine::CryptoEngine;
use crate::gcm::{nonce_from_iv, AesGcm, BatchSealMsg, NONCE_LEN, TAG_LEN};
use crate::{CryptoError, Result};
use std::sync::Arc;

/// Direction tag mixed into every nonce so the two streams of a channel can
/// never collide even if their counters coincide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// CPU (CVM) to GPU enclave; the "swap in" direction.
    HostToDevice,
    /// GPU enclave to CPU; the "swap out" direction.
    DeviceToHost,
}

impl Direction {
    fn tag(self) -> u32 {
        match self {
            Direction::HostToDevice => 0x4832_4421, // "H2D!"
            Direction::DeviceToHost => 0x4432_4821, // "D2H!"
        }
    }
}

/// A sealed transfer: `ciphertext || tag` plus sender-side bookkeeping.
///
/// `iv` is *not* transmitted in the real protocol; it is carried here only
/// so the sending runtime (PipeLLM) can track which counter value each
/// speculative ciphertext was produced under. The receiver never reads it.
///
/// The associated data is reference-counted: the PipeLLM runtime clones
/// messages into its speculation queue and pools their ciphertext buffers,
/// and an `Arc` keeps those clones from duplicating the descriptor bytes
/// (the seed allocated a fresh `Vec` per message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedMessage {
    /// IV under which this message was sealed (sender bookkeeping only).
    pub iv: u64,
    /// Authenticated associated data (transfer descriptor).
    pub aad: Arc<[u8]>,
    /// `ciphertext || 16-byte tag`.
    pub bytes: Vec<u8>,
}

impl SealedMessage {
    /// Plaintext length this message decrypts to.
    pub fn plaintext_len(&self) -> usize {
        self.bytes.len().saturating_sub(TAG_LEN)
    }

    /// Consumes the message, returning its ciphertext buffer for reuse
    /// (the PipeLLM runtime's staging-buffer pool).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Fill byte for sentinel payloads: when a frame fails authentication under
/// the sentinel discipline ([`RxContext::open_in_place_or_sentinel`]), the
/// output buffer is overwritten with this value so neither the rejected
/// ciphertext nor any decryption intermediate can be mistaken for plaintext.
pub const SENTINEL_BYTE: u8 = 0xFE;

/// IVs reserved below `u64::MAX` as exhaustion headroom: no seal may use a
/// counter value at or above [`IV_LIMIT`]. The headroom keeps speculative
/// seals (which run ahead of the counter by `spec_depth + iv_slack`) from
/// ever computing an IV that wraps, and gives the session layer room to
/// notice and rekey before the stream truly runs dry.
pub const IV_HEADROOM: u64 = 1 << 16;

/// First unusable IV value: sealing at `iv >= IV_LIMIT` returns
/// [`CryptoError::IvExhausted`].
pub const IV_LIMIT: u64 = u64::MAX - IV_HEADROOM;

/// Sending half of one channel direction: a key plus the sender counter.
#[derive(Debug, Clone)]
pub struct TxContext {
    gcm: AesGcm,
    direction: Direction,
    next_iv: u64,
    /// Shared `b"nop"` descriptor, so NOP padding never re-allocates AAD.
    nop_aad: Arc<[u8]>,
}

impl TxContext {
    fn new(gcm: AesGcm, direction: Direction, initial_iv: u64) -> Self {
        TxContext {
            gcm,
            direction,
            next_iv: initial_iv,
            nop_aad: Arc::from(&b"nop"[..]),
        }
    }

    /// The IV the next committed send will consume.
    pub fn next_iv(&self) -> u64 {
        self.next_iv
    }

    /// IVs left before this direction hits the exhaustion headroom and
    /// every further seal fails with [`CryptoError::IvExhausted`].
    pub fn remaining_ivs(&self) -> u64 {
        IV_LIMIT.saturating_sub(self.next_iv)
    }

    /// Refuses IVs inside the exhaustion headroom (nonce-wrap guard).
    fn check_exhaustion(&self, iv: u64) -> Result<()> {
        if iv >= IV_LIMIT {
            return Err(CryptoError::IvExhausted { iv });
        }
        Ok(())
    }

    /// Direction this context seals for.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Attaches the multi-threaded crypto engine: large seals go through
    /// the chunked gang path (bit-identical ciphertext and tags).
    pub(crate) fn set_engine(&mut self, engine: Option<Arc<CryptoEngine>>) {
        self.gcm.set_engine(engine);
    }

    fn nonce(&self, iv: u64) -> [u8; NONCE_LEN] {
        nonce_from_iv(self.direction.tag(), iv)
    }

    /// Seals `plaintext` at the current counter and advances it.
    ///
    /// This is what the stock CUDA library does inside `cudaMemcpyAsync`
    /// when CC is enabled: on-the-fly encryption coupled to the transfer.
    pub fn seal(&mut self, plaintext: &[u8]) -> Result<SealedMessage> {
        self.seal_with_aad(&[], plaintext)
    }

    /// Seals `plaintext` with associated data at the current counter.
    pub fn seal_with_aad(&mut self, aad: &[u8], plaintext: &[u8]) -> Result<SealedMessage> {
        let mut buf = Vec::with_capacity(plaintext.len() + TAG_LEN);
        buf.extend_from_slice(plaintext);
        self.seal_prepared(Arc::from(aad), buf)
    }

    /// Seals a staged buffer at the current counter and advances it: `buf`
    /// holds the plaintext on entry and becomes the message's
    /// `ciphertext || tag` storage — no copy, and any spare capacity the
    /// caller pooled is reused.
    pub fn seal_prepared(&mut self, aad: Arc<[u8]>, mut buf: Vec<u8>) -> Result<SealedMessage> {
        let iv = self.next_iv;
        self.check_exhaustion(iv)?;
        self.gcm.seal_vec(&self.nonce(iv), &aad, &mut buf);
        self.next_iv += 1;
        Ok(SealedMessage {
            iv,
            aad,
            bytes: buf,
        })
    }

    /// Seals a run of staged buffers at **consecutive** committed IVs in
    /// one fused engine submission (see [`AesGcm::seal_batch`]): each
    /// `(aad, plaintext-buf)` pair becomes a [`SealedMessage`] with its
    /// own nonce, AAD, and tag, bit-identical to sealing them one
    /// [`TxContext::seal_prepared`] call at a time — only the dispatch is
    /// coalesced. The exhaustion check covers the whole batch **before**
    /// any IV is consumed, so a failing batch is all-or-nothing (unlike a
    /// loop of single seals, which consumes IVs up to the failure).
    ///
    /// # Errors
    ///
    /// [`CryptoError::IvExhausted`] if the batch would run into the IV
    /// headroom; the counter has not advanced and the buffers are dropped.
    pub fn seal_batch_prepared(
        &mut self,
        msgs: Vec<(Arc<[u8]>, Vec<u8>)>,
    ) -> Result<Vec<SealedMessage>> {
        let sealed = self.seal_batch_at(self.next_iv, msgs)?;
        self.next_iv += sealed.len() as u64;
        Ok(sealed)
    }

    /// Speculative twin of [`TxContext::seal_batch_prepared`]: seals the
    /// run at consecutive IVs starting at a **future** `start_iv` without
    /// advancing the counter (paper §4.3 pre-encryption, batched). Each
    /// message commits individually via [`TxContext::commit`] when the
    /// counter reaches its IV.
    ///
    /// # Errors
    ///
    /// [`CryptoError::IvReused`] if `start_iv` is below the counter,
    /// [`CryptoError::IvExhausted`] if the run would enter the headroom;
    /// either way nothing is sealed.
    pub fn seal_speculative_batch(
        &self,
        start_iv: u64,
        msgs: Vec<(Arc<[u8]>, Vec<u8>)>,
    ) -> Result<Vec<SealedMessage>> {
        if start_iv < self.next_iv {
            return Err(CryptoError::IvReused { iv: start_iv });
        }
        self.seal_batch_at(start_iv, msgs)
    }

    /// Seals a burst of NOPs at consecutive committed IVs in one fused
    /// submission — the batched form of [`TxContext::seal_nop_with`],
    /// recycling `staging` buffers where provided (extra buffers beyond
    /// `count` are dropped; missing ones are allocated).
    ///
    /// # Errors
    ///
    /// As [`TxContext::seal_batch_prepared`].
    pub fn seal_nop_batch(
        &mut self,
        count: usize,
        staging: &mut Vec<Vec<u8>>,
    ) -> Result<Vec<SealedMessage>> {
        let msgs = (0..count)
            .map(|_| {
                let mut buf = staging.pop().unwrap_or_default();
                buf.clear();
                buf.push(0u8);
                (Arc::clone(&self.nop_aad), buf)
            })
            .collect();
        self.seal_batch_prepared(msgs)
    }

    /// Shared core of the batch seals: messages land at consecutive IVs
    /// `start_iv..start_iv + n`, checked against the headroom up front.
    fn seal_batch_at(
        &self,
        start_iv: u64,
        msgs: Vec<(Arc<[u8]>, Vec<u8>)>,
    ) -> Result<Vec<SealedMessage>> {
        let n = msgs.len() as u64;
        if n == 0 {
            return Ok(Vec::new());
        }
        self.check_exhaustion(start_iv + (n - 1))?;
        let mut out: Vec<SealedMessage> = msgs
            .into_iter()
            .enumerate()
            .map(|(i, (aad, bytes))| SealedMessage {
                iv: start_iv + i as u64,
                aad,
                bytes,
            })
            .collect();
        let direction = self.direction.tag();
        let mut batch: Vec<BatchSealMsg<'_>> = out
            .iter_mut()
            .map(|m| BatchSealMsg {
                nonce: nonce_from_iv(direction, m.iv),
                aad: &m.aad,
                buf: &mut m.bytes,
            })
            .collect();
        self.gcm.seal_batch(&mut batch);
        Ok(out)
    }

    /// Seals `data` in place at the current counter, advancing it. Returns
    /// the consumed IV and the detached tag; `data` holds the ciphertext.
    pub fn seal_in_place(&mut self, aad: &[u8], data: &mut [u8]) -> Result<(u64, [u8; TAG_LEN])> {
        let iv = self.next_iv;
        self.check_exhaustion(iv)?;
        let tag = self.gcm.seal_in_place(&self.nonce(iv), aad, data);
        self.next_iv += 1;
        Ok((iv, tag))
    }

    /// Seals `plaintext` at an arbitrary `iv` **without advancing** the
    /// counter. This is speculative pre-encryption (paper §4.3): the message
    /// only becomes sendable once the counter reaches `iv` exactly.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::IvReused`] if `iv` is below the counter: that
    /// IV has already been consumed and sealing under it again would repeat
    /// a GCM nonce.
    pub fn seal_speculative(&self, iv: u64, aad: &[u8], plaintext: &[u8]) -> Result<SealedMessage> {
        let mut buf = Vec::with_capacity(plaintext.len() + TAG_LEN);
        buf.extend_from_slice(plaintext);
        self.seal_speculative_prepared(iv, Arc::from(aad), buf)
    }

    /// Speculative variant of [`TxContext::seal_prepared`]: seals a staged
    /// plaintext buffer in place at a future `iv` without advancing the
    /// counter.
    ///
    /// # Errors
    ///
    /// As [`TxContext::seal_speculative`]; on error `buf` is dropped.
    pub fn seal_speculative_prepared(
        &self,
        iv: u64,
        aad: Arc<[u8]>,
        mut buf: Vec<u8>,
    ) -> Result<SealedMessage> {
        if iv < self.next_iv {
            return Err(CryptoError::IvReused { iv });
        }
        self.check_exhaustion(iv)?;
        self.gcm.seal_vec(&self.nonce(iv), &aad, &mut buf);
        Ok(SealedMessage {
            iv,
            aad,
            bytes: buf,
        })
    }

    /// Commits a previously sealed speculative message, consuming the
    /// counter value it was sealed under.
    ///
    /// # Errors
    ///
    /// - [`CryptoError::IvReused`] if the message's IV is already behind the
    ///   counter (irrecoverable; the ciphertext must be discarded).
    /// - [`CryptoError::IvMismatch`] if the message's IV is ahead of the
    ///   counter (recoverable by NOP padding first).
    pub fn commit(&mut self, message: &SealedMessage) -> Result<()> {
        if message.iv < self.next_iv {
            return Err(CryptoError::IvReused { iv: message.iv });
        }
        if message.iv > self.next_iv {
            return Err(CryptoError::IvMismatch {
                iv: message.iv,
                expected: self.next_iv,
            });
        }
        self.next_iv += 1;
        Ok(())
    }

    /// Seals a NOP: a 1-byte dummy transfer whose only purpose is to
    /// advance the IV (paper §5.3). The counter advances immediately.
    ///
    /// # Errors
    ///
    /// [`CryptoError::IvExhausted`] when the counter sits in the headroom.
    pub fn seal_nop(&mut self) -> Result<SealedMessage> {
        self.seal_nop_with(Vec::with_capacity(1 + TAG_LEN))
    }

    /// Seals a NOP into a recycled staging buffer (the descriptor is the
    /// shared `b"nop"` AAD, so the sender allocates nothing once the
    /// caller cycles buffers back through [`SealedMessage::into_bytes`] or
    /// [`RxContext::open_owned`]).
    ///
    /// # Errors
    ///
    /// As [`TxContext::seal_nop`]; on error `buf` is dropped.
    pub fn seal_nop_with(&mut self, mut buf: Vec<u8>) -> Result<SealedMessage> {
        let iv = self.next_iv;
        self.check_exhaustion(iv)?;
        let aad = Arc::clone(&self.nop_aad);
        buf.clear();
        buf.push(0u8);
        self.gcm.seal_vec(&self.nonce(iv), &aad, &mut buf);
        self.next_iv += 1;
        Ok(SealedMessage {
            iv,
            aad,
            bytes: buf,
        })
    }
}

/// A decryption decoupled from its arrival (paper §5.4, §6).
///
/// Ciphertext always *arrives* in wire order, which fixes the IV it must be
/// opened under — but PipeLLM's hooked decryption workers perform the
/// actual opens later, possibly out of order with each other, off the
/// critical path. [`RxContext::defer_open`] reserves the counter value at
/// arrival time and hands back this self-contained handle; the receiver
/// counter stays in lockstep with the sender while the bytes stay sealed.
#[derive(Clone)]
pub struct DeferredOpen {
    /// Shared with the owning [`RxContext`]: a deferred open holds a
    /// pointer to the key schedule, not a copy of it, so a burst of
    /// pending blocks costs one `Arc` bump each.
    gcm: Arc<AesGcm>,
    nonce: [u8; NONCE_LEN],
    iv: u64,
}

impl std::fmt::Debug for DeferredOpen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeferredOpen")
            .field("iv", &self.iv)
            .finish()
    }
}

impl DeferredOpen {
    /// The counter value this open was reserved at.
    pub fn iv(&self) -> u64 {
        self.iv
    }

    /// Opens `buf` (`ciphertext || tag`) in place at the reserved IV,
    /// truncating the tag on success.
    ///
    /// # Errors
    ///
    /// [`CryptoError::AuthenticationFailed`] if the bytes were not sealed
    /// at this handle's IV under the matching key (or were tampered with).
    pub fn open_in_place(&self, aad: &[u8], buf: &mut Vec<u8>) -> Result<()> {
        match self.gcm.open_vec(&self.nonce, aad, buf) {
            Ok(()) => Ok(()),
            Err(CryptoError::AuthenticationFailed { .. }) => {
                Err(CryptoError::AuthenticationFailed {
                    expected_iv: self.iv,
                })
            }
            Err(other) => Err(other),
        }
    }

    /// Sentinel variant of [`DeferredOpen::open_in_place`]: the reserved IV
    /// was consumed at reservation time, so a failed open cannot disturb
    /// the channel — but the rejected bytes must not linger either. On
    /// failure `buf` is truncated to the plaintext length and overwritten
    /// with [`SENTINEL_BYTE`], and the error is returned for accounting.
    pub fn open_in_place_or_sentinel(&self, aad: &[u8], buf: &mut Vec<u8>) -> Result<()> {
        self.open_in_place(aad, buf).inspect_err(|_| {
            sentinel_fill(buf);
        })
    }
}

/// Replaces a rejected `ciphertext || tag` buffer with a sentinel payload
/// of the corresponding plaintext length (zero for frames shorter than a
/// tag), so no ciphertext byte survives in a buffer a caller might read.
fn sentinel_fill(buf: &mut Vec<u8>) {
    let plaintext_len = buf.len().saturating_sub(TAG_LEN);
    buf.truncate(plaintext_len);
    buf.iter_mut().for_each(|b| *b = SENTINEL_BYTE);
}

/// Receiving half of one channel direction: a key plus the receiver counter.
///
/// The key schedule lives behind an `Arc` so [`RxContext::defer_open`]
/// hands out handles at pointer cost instead of copying the AES round
/// keys and GHASH tables per deferred block.
#[derive(Debug, Clone)]
pub struct RxContext {
    gcm: Arc<AesGcm>,
    direction: Direction,
    next_iv: u64,
}

impl RxContext {
    fn new(gcm: AesGcm, direction: Direction, initial_iv: u64) -> Self {
        RxContext {
            gcm: Arc::new(gcm),
            direction,
            next_iv: initial_iv,
        }
    }

    /// The IV the receiver will use for the next message.
    pub fn next_iv(&self) -> u64 {
        self.next_iv
    }

    /// Attaches the multi-threaded crypto engine (see [`TxContext::set_engine`]).
    pub(crate) fn set_engine(&mut self, engine: Option<Arc<CryptoEngine>>) {
        let mut gcm = (*self.gcm).clone();
        gcm.set_engine(engine);
        self.gcm = Arc::new(gcm);
    }

    /// Opens `message` at the receiver's own counter — the IV recorded in
    /// the message is deliberately ignored, as in the real protocol.
    ///
    /// On success the counter advances. On failure it does not: the real
    /// hardware treats an authentication failure as a fatal session error,
    /// and the PipeLLM validator exists precisely to keep bad ciphertext
    /// from ever reaching this point.
    ///
    /// # Errors
    ///
    /// [`CryptoError::AuthenticationFailed`] when the message was not sealed
    /// at this counter value (or was tampered with); the error reports the
    /// receiver-side IV that was expected.
    pub fn open(&mut self, message: &SealedMessage) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.open_message_into(message, &mut out)?;
        Ok(out)
    }

    /// Opens a borrowed message **into** a caller-supplied buffer at the
    /// receiver's own counter: the tag is verified over the message's own
    /// ciphertext (nothing is cloned — a failed open copies zero bytes),
    /// then the plaintext lands in `out`, reusing its capacity. On success
    /// the counter advances; on failure it does not and `out` is unchanged.
    ///
    /// # Errors
    ///
    /// See [`RxContext::open`].
    pub fn open_message_into(&mut self, message: &SealedMessage, out: &mut Vec<u8>) -> Result<()> {
        let nonce = nonce_from_iv(self.direction.tag(), self.next_iv);
        match self
            .gcm
            .open_into(&nonce, &message.aad, &message.bytes, out)
        {
            Ok(()) => {
                self.next_iv += 1;
                Ok(())
            }
            Err(CryptoError::AuthenticationFailed { .. }) => {
                Err(CryptoError::AuthenticationFailed {
                    expected_iv: self.next_iv,
                })
            }
            Err(other) => Err(other),
        }
    }

    /// Opens a consumed message, decrypting its own buffer in place and
    /// returning the plaintext without copying the ciphertext.
    ///
    /// # Errors
    ///
    /// See [`RxContext::open`].
    pub fn open_owned(&mut self, message: SealedMessage) -> Result<Vec<u8>> {
        let mut buf = message.bytes;
        self.open_in_place(&message.aad, &mut buf)?;
        Ok(buf)
    }

    /// Opens `buf` (`ciphertext || tag`) at the receiver's own counter,
    /// decrypting in place and truncating the tag. On success the counter
    /// advances; on failure it does not and `buf` is unchanged.
    ///
    /// # Errors
    ///
    /// See [`RxContext::open`].
    pub fn open_in_place(&mut self, aad: &[u8], buf: &mut Vec<u8>) -> Result<()> {
        let nonce = nonce_from_iv(self.direction.tag(), self.next_iv);
        match self.gcm.open_vec(&nonce, aad, buf) {
            Ok(()) => {
                self.next_iv += 1;
                Ok(())
            }
            Err(CryptoError::AuthenticationFailed { .. }) => {
                Err(CryptoError::AuthenticationFailed {
                    expected_iv: self.next_iv,
                })
            }
            Err(other) => Err(other),
        }
    }

    /// Reserves the current counter value for a message that arrived in
    /// order but whose decryption is deferred: the counter advances *now*
    /// (keeping the endpoints in lockstep), and the returned handle opens
    /// the ciphertext later — out of order with other deferred opens, as
    /// PipeLLM's decoupled decryption workers do.
    pub fn defer_open(&mut self) -> DeferredOpen {
        let iv = self.next_iv;
        self.next_iv += 1;
        DeferredOpen {
            gcm: Arc::clone(&self.gcm),
            nonce: nonce_from_iv(self.direction.tag(), iv),
            iv,
        }
    }

    /// Detached-tag variant: verifies `tag` over ciphertext `data` at the
    /// receiver counter, then decrypts `data` in place and advances.
    ///
    /// # Errors
    ///
    /// See [`RxContext::open`].
    pub fn open_detached(
        &mut self,
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<()> {
        let nonce = nonce_from_iv(self.direction.tag(), self.next_iv);
        match self.gcm.open_in_place(&nonce, aad, data, tag) {
            Ok(()) => {
                self.next_iv += 1;
                Ok(())
            }
            Err(CryptoError::AuthenticationFailed { .. }) => {
                Err(CryptoError::AuthenticationFailed {
                    expected_iv: self.next_iv,
                })
            }
            Err(other) => Err(other),
        }
    }

    /// Sentinel-discipline open (chaos/error-handling path): like
    /// [`RxContext::open_in_place`], but a failed authentication **still
    /// consumes the IV**. The receiver stays in lockstep with the sender —
    /// the frame occupied a counter slot on the wire whether or not its
    /// bytes survived — and the slot is burned, never reused. On failure
    /// `buf` is truncated to the plaintext length and overwritten with
    /// [`SENTINEL_BYTE`] so no ciphertext byte can be mistaken for
    /// plaintext, and the error is returned for the caller's retry logic.
    ///
    /// Frames mangled below the tag length (truncations, drops modelled as
    /// empty frames) are handled the same way: the IV is consumed and the
    /// sentinel payload is empty.
    ///
    /// # Errors
    ///
    /// [`CryptoError::AuthenticationFailed`] / [`CryptoError::TruncatedCiphertext`]
    /// exactly as [`RxContext::open_in_place`] — but note the counter *has*
    /// advanced when this returns an error.
    pub fn open_in_place_or_sentinel(&mut self, aad: &[u8], buf: &mut Vec<u8>) -> Result<()> {
        self.open_in_place(aad, buf).inspect_err(|_| {
            self.next_iv += 1;
            sentinel_fill(buf);
        })
    }

    /// Sentinel-discipline open of a consumed message: the happy path of
    /// [`RxContext::open_owned`], with the failure semantics of
    /// [`RxContext::open_in_place_or_sentinel`]. Always returns the buffer
    /// (plaintext on success, sentinel payload on failure) so pooled
    /// staging allocations survive the fault.
    pub fn open_owned_or_sentinel(&mut self, message: SealedMessage) -> (Vec<u8>, Result<()>) {
        let mut buf = message.bytes;
        let outcome = self.open_in_place_or_sentinel(&message.aad, &mut buf);
        (buf, outcome)
    }

    /// Consumes the next IV without opening anything: the resynchronization
    /// step for a frame that was lost in flight. The sender sealed at this
    /// counter value, so the receiver must burn it too — skipping keeps the
    /// endpoints in lockstep and guarantees the lost frame's IV is never
    /// reused. Returns the consumed IV.
    pub fn skip(&mut self) -> u64 {
        let iv = self.next_iv;
        self.next_iv += 1;
        iv
    }
}

/// Key material for both directions of a channel.
#[derive(Clone)]
pub struct ChannelKeys {
    h2d: [u8; 32],
    d2h: [u8; 32],
}

impl std::fmt::Debug for ChannelKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ChannelKeys { .. }")
    }
}

impl ChannelKeys {
    /// Creates keys from explicit 32-byte values.
    pub fn new(h2d: [u8; 32], d2h: [u8; 32]) -> Self {
        ChannelKeys { h2d, d2h }
    }

    /// Derives deterministic (simulation-grade) keys from a seed, standing
    /// in for the SPDM key exchange performed at GPU attestation time.
    pub fn from_seed(seed: u64) -> Self {
        fn derive(seed: u64, salt: u8) -> [u8; 32] {
            let mut key = [0u8; 32];
            let mut state = seed ^ u64::from(salt).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for chunk in key.chunks_mut(8) {
                // SplitMix64 step: good enough to decorrelate test keys.
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                chunk.copy_from_slice(&z.to_le_bytes());
            }
            key
        }
        ChannelKeys {
            h2d: derive(seed, 1),
            d2h: derive(seed, 2),
        }
    }
}

/// One endpoint of a secure channel: it can send in one direction and
/// receive in the other.
#[derive(Debug, Clone)]
pub struct Endpoint {
    tx: TxContext,
    rx: RxContext,
}

impl Endpoint {
    /// Sending context (outgoing direction).
    pub fn tx(&self) -> &TxContext {
        &self.tx
    }

    /// Mutable sending context.
    pub fn tx_mut(&mut self) -> &mut TxContext {
        &mut self.tx
    }

    /// Receiving context (incoming direction).
    pub fn rx(&self) -> &RxContext {
        &self.rx
    }

    /// Mutable receiving context.
    pub fn rx_mut(&mut self) -> &mut RxContext {
        &mut self.rx
    }

    /// Attaches the multi-threaded crypto engine to both directions of
    /// this endpoint.
    pub fn set_engine(&mut self, engine: Option<Arc<CryptoEngine>>) {
        self.tx.set_engine(engine.clone());
        self.rx.set_engine(engine);
    }

    /// Seals at the current counter and advances (the non-speculative path).
    pub fn seal(&mut self, plaintext: &[u8]) -> Result<SealedMessage> {
        self.tx.seal(plaintext)
    }

    /// Seals a caller-owned buffer in place at the current send counter
    /// (detached tag, zero-copy). Returns the consumed IV and the tag.
    ///
    /// # Errors
    ///
    /// See [`TxContext::seal_in_place`].
    pub fn seal_in_place(&mut self, aad: &[u8], data: &mut [u8]) -> Result<(u64, [u8; TAG_LEN])> {
        self.tx.seal_in_place(aad, data)
    }

    /// Opens at the current receive counter.
    ///
    /// # Errors
    ///
    /// See [`RxContext::open`].
    pub fn open(&mut self, message: &SealedMessage) -> Result<Vec<u8>> {
        self.rx.open(message)
    }

    /// Verifies a detached tag and decrypts a caller-owned buffer in place
    /// at the current receive counter (zero-copy).
    ///
    /// # Errors
    ///
    /// See [`RxContext::open`].
    pub fn open_in_place(
        &mut self,
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<()> {
        self.rx.open_detached(aad, data, tag)
    }
}

/// A full CPU↔GPU secure channel: the host endpoint and the device endpoint
/// with mirrored key material and synchronized starting IVs.
///
/// In the real system the two endpoints live in different trust domains;
/// here they live in one struct so tests can drive both sides.
#[derive(Debug, Clone)]
pub struct SecureChannel {
    host: Endpoint,
    device: Endpoint,
}

impl SecureChannel {
    /// Builds a channel with both directions starting at IV 1, matching the
    /// paper's Figure 1 (the first CPU→GPU message is sealed at IV=1).
    pub fn new(keys: ChannelKeys) -> Self {
        Self::with_initial_ivs(keys, 1, 1)
    }

    /// Builds a channel with explicit starting IVs per direction.
    pub fn with_initial_ivs(keys: ChannelKeys, h2d_iv: u64, d2h_iv: u64) -> Self {
        let h2d_gcm = AesGcm::new(&keys.h2d).expect("32-byte key is always valid");
        let d2h_gcm = AesGcm::new(&keys.d2h).expect("32-byte key is always valid");
        SecureChannel {
            host: Endpoint {
                tx: TxContext::new(h2d_gcm.clone(), Direction::HostToDevice, h2d_iv),
                rx: RxContext::new(d2h_gcm.clone(), Direction::DeviceToHost, d2h_iv),
            },
            device: Endpoint {
                tx: TxContext::new(d2h_gcm, Direction::DeviceToHost, d2h_iv),
                rx: RxContext::new(h2d_gcm, Direction::HostToDevice, h2d_iv),
            },
        }
    }

    /// Host (CVM) endpoint.
    pub fn host(&self) -> &Endpoint {
        &self.host
    }

    /// Mutable host endpoint.
    pub fn host_mut(&mut self) -> &mut Endpoint {
        &mut self.host
    }

    /// Device (GPU enclave) endpoint.
    pub fn device(&self) -> &Endpoint {
        &self.device
    }

    /// Mutable device endpoint.
    pub fn device_mut(&mut self) -> &mut Endpoint {
        &mut self.device
    }

    /// Borrows both endpoints mutably, for driving a transfer end to end.
    pub fn both_mut(&mut self) -> (&mut Endpoint, &mut Endpoint) {
        (&mut self.host, &mut self.device)
    }

    /// Attaches the multi-threaded crypto engine to all four contexts of
    /// the channel (both endpoints, both directions): large transfers go
    /// through the chunked gang path with bit-identical ciphertext.
    pub fn set_engine(&mut self, engine: &Arc<CryptoEngine>) {
        self.host.set_engine(Some(Arc::clone(engine)));
        self.device.set_engine(Some(Arc::clone(engine)));
    }

    /// Builder form of [`SecureChannel::set_engine`].
    pub fn with_engine(mut self, engine: &Arc<CryptoEngine>) -> Self {
        self.set_engine(engine);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> SecureChannel {
        SecureChannel::new(ChannelKeys::from_seed(42))
    }

    #[test]
    fn in_order_transfers_roundtrip() {
        let mut ch = channel();
        for i in 0..20u8 {
            let payload = vec![i; 64];
            let sealed = ch.host_mut().seal(&payload).unwrap();
            assert_eq!(sealed.iv, 1 + u64::from(i));
            let opened = ch.device_mut().open(&sealed).unwrap();
            assert_eq!(opened, payload);
        }
    }

    #[test]
    fn figure1_iv_progression() {
        // Figure 1: after two H2D and two D2H transfers starting from IVs
        // (1, 5), the counters sit at 3 and 7.
        let mut ch = SecureChannel::with_initial_ivs(ChannelKeys::from_seed(1), 1, 5);
        let a = ch.host_mut().seal(b"a").unwrap();
        let b = ch.host_mut().seal(b"b").unwrap();
        ch.device_mut().open(&a).unwrap();
        ch.device_mut().open(&b).unwrap();
        let c = ch.device_mut().seal(b"c").unwrap();
        let d = ch.device_mut().seal(b"d").unwrap();
        ch.host_mut().open(&c).unwrap();
        ch.host_mut().open(&d).unwrap();
        assert_eq!(ch.host().tx().next_iv(), 3);
        assert_eq!(ch.device().tx().next_iv(), 7);
        assert_eq!((a.iv, b.iv, c.iv, d.iv), (1, 2, 5, 6));
    }

    #[test]
    fn out_of_order_delivery_fails_authentication() {
        let mut ch = channel();
        let first = ch.host_mut().seal(b"first").unwrap();
        let second = ch.host_mut().seal(b"second").unwrap();
        // Delivering the second message first: receiver IV is 1, message was
        // sealed at IV 2 → must fail.
        let err = ch.device_mut().open(&second).unwrap_err();
        assert_eq!(err, CryptoError::AuthenticationFailed { expected_iv: 1 });
        // The receiver did not advance, so the correct order still works.
        assert_eq!(ch.device_mut().open(&first).unwrap(), b"first");
        assert_eq!(ch.device_mut().open(&second).unwrap(), b"second");
    }

    #[test]
    fn replayed_message_fails_authentication() {
        let mut ch = channel();
        let sealed = ch.host_mut().seal(b"payload").unwrap();
        ch.device_mut().open(&sealed).unwrap();
        // Replaying the same ciphertext: receiver counter has moved on.
        assert!(matches!(
            ch.device_mut().open(&sealed),
            Err(CryptoError::AuthenticationFailed { expected_iv: 2 })
        ));
    }

    #[test]
    fn speculative_seal_at_future_iv_opens_after_nops() {
        let mut ch = channel();
        // Speculatively seal at IV 4 while the counter is 1.
        let spec = ch.host().tx().seal_speculative(4, b"", b"future").unwrap();
        // Committing now is an IV mismatch (recoverable).
        assert!(matches!(
            ch.host_mut().tx_mut().commit(&spec),
            Err(CryptoError::IvMismatch { iv: 4, expected: 1 })
        ));
        // Pad NOPs to advance 1→4, delivering each so the device follows.
        for _ in 0..3 {
            let nop = ch.host_mut().tx_mut().seal_nop().unwrap();
            ch.device_mut().open(&nop).unwrap();
        }
        ch.host_mut().tx_mut().commit(&spec).unwrap();
        assert_eq!(ch.device_mut().open(&spec).unwrap(), b"future");
    }

    #[test]
    fn speculative_seal_below_counter_is_refused() {
        let mut ch = channel();
        ch.host_mut().seal(b"x").unwrap();
        ch.host_mut().seal(b"y").unwrap();
        // Counter is now 3; sealing at 2 would reuse a nonce.
        assert!(matches!(
            ch.host().tx().seal_speculative(2, b"", b"stale"),
            Err(CryptoError::IvReused { iv: 2 })
        ));
    }

    #[test]
    fn commit_of_stale_speculative_is_irrecoverable() {
        let mut ch = channel();
        let spec = ch.host().tx().seal_speculative(1, b"", b"chunk").unwrap();
        // Some other transfer consumes IV 1 first.
        let other = ch.host_mut().seal(b"interloper").unwrap();
        ch.device_mut().open(&other).unwrap();
        assert!(matches!(
            ch.host_mut().tx_mut().commit(&spec),
            Err(CryptoError::IvReused { iv: 1 })
        ));
    }

    #[test]
    fn nop_advances_both_sides_and_carries_one_byte() {
        let mut ch = channel();
        let nop = ch.host_mut().tx_mut().seal_nop().unwrap();
        assert_eq!(nop.plaintext_len(), 1);
        let opened = ch.device_mut().open(&nop).unwrap();
        assert_eq!(opened, vec![0u8]);
        assert_eq!(ch.host().tx().next_iv(), 2);
        assert_eq!(ch.device().rx().next_iv(), 2);
    }

    #[test]
    fn in_place_seal_and_open_roundtrip_in_lockstep() {
        let mut ch = channel();
        let mut buf = *b"kv-cache chunk 0123456789abcdef!";
        let original = buf;
        let (iv, tag) = ch.host_mut().seal_in_place(b"hdr", &mut buf).unwrap();
        assert_eq!(iv, 1);
        assert_ne!(buf, original, "buffer holds ciphertext after sealing");
        ch.device_mut()
            .open_in_place(b"hdr", &mut buf, &tag)
            .unwrap();
        assert_eq!(buf, original);
        assert_eq!(ch.host().tx().next_iv(), 2);
        assert_eq!(ch.device().rx().next_iv(), 2);
        // The in-place stream interleaves with message-based traffic.
        let sealed = ch.host_mut().seal(b"next").unwrap();
        assert_eq!(ch.device_mut().open(&sealed).unwrap(), b"next");
    }

    #[test]
    fn in_place_open_fails_without_touching_the_buffer() {
        let mut ch = channel();
        let mut buf = [7u8; 48];
        let (_, tag) = ch.host_mut().seal_in_place(b"", &mut buf).unwrap();
        let ciphertext = buf;
        let mut wrong = tag;
        wrong[0] ^= 1;
        let err = ch
            .device_mut()
            .open_in_place(b"", &mut buf, &wrong)
            .unwrap_err();
        assert_eq!(err, CryptoError::AuthenticationFailed { expected_iv: 1 });
        assert_eq!(buf, ciphertext, "failed open must not corrupt the buffer");
        assert_eq!(
            ch.device().rx().next_iv(),
            1,
            "failed open must not advance"
        );
        ch.device_mut().open_in_place(b"", &mut buf, &tag).unwrap();
        assert_eq!(buf, [7u8; 48]);
    }

    #[test]
    fn nop_staging_buffer_is_reused_without_reallocating() {
        let mut ch = channel();
        let nop = ch.host_mut().tx_mut().seal_nop().unwrap();
        ch.device_mut().open(&nop).unwrap();
        let recycled = nop.into_bytes();
        let ptr = recycled.as_ptr();
        let capacity = recycled.capacity();
        let nop2 = ch.host_mut().tx_mut().seal_nop_with(recycled).unwrap();
        assert_eq!(
            nop2.bytes.as_ptr(),
            ptr,
            "recycled NOP buffer must be reused"
        );
        assert_eq!(nop2.bytes.capacity(), capacity);
        assert_eq!(ch.device_mut().open(&nop2).unwrap(), vec![0u8]);
    }

    #[test]
    fn open_owned_decrypts_the_message_buffer_in_place() {
        let mut ch = channel();
        let sealed = ch.host_mut().seal(b"zero-copy payload").unwrap();
        let ptr = sealed.bytes.as_ptr();
        let opened = ch.device_mut().rx_mut().open_owned(sealed).unwrap();
        assert_eq!(opened, b"zero-copy payload");
        assert_eq!(
            opened.as_ptr(),
            ptr,
            "plaintext reuses the ciphertext buffer"
        );
    }

    #[test]
    fn directions_are_independent_streams() {
        let mut ch = channel();
        // Interleave directions arbitrarily; counters are per-direction.
        let h1 = ch.host_mut().seal(b"h1").unwrap();
        let d1 = ch.device_mut().seal(b"d1").unwrap();
        let h2 = ch.host_mut().seal(b"h2").unwrap();
        assert_eq!(ch.device_mut().open(&h1).unwrap(), b"h1");
        assert_eq!(ch.host_mut().open(&d1).unwrap(), b"d1");
        assert_eq!(ch.device_mut().open(&h2).unwrap(), b"h2");
    }

    #[test]
    fn cross_direction_message_rejected() {
        let mut ch = channel();
        let h2d = ch.host_mut().seal(b"host data").unwrap();
        // Reflecting a H2D ciphertext back to the host must fail even at a
        // matching counter value, because the direction tag differs.
        assert!(ch.host_mut().open(&h2d).is_err());
    }

    #[test]
    fn seals_inside_exhaustion_headroom_are_refused() {
        let mut ch = SecureChannel::with_initial_ivs(ChannelKeys::from_seed(3), IV_LIMIT - 1, 1);
        assert_eq!(ch.host().tx().remaining_ivs(), 1);
        ch.host_mut().seal(b"last one").unwrap();
        assert_eq!(ch.host().tx().remaining_ivs(), 0);
        assert!(matches!(
            ch.host_mut().seal(b"x"),
            Err(CryptoError::IvExhausted { iv: IV_LIMIT })
        ));
        assert!(matches!(
            ch.host_mut().tx_mut().seal_nop(),
            Err(CryptoError::IvExhausted { .. })
        ));
        let mut buf = [0u8; 4];
        assert!(matches!(
            ch.host_mut().seal_in_place(b"", &mut buf),
            Err(CryptoError::IvExhausted { .. })
        ));
        // Speculative seals cannot reserve IVs inside the headroom either.
        assert!(matches!(
            ch.host().tx().seal_speculative(IV_LIMIT, b"", b"y"),
            Err(CryptoError::IvExhausted { .. })
        ));
        // The counter never advanced into the headroom, and the other
        // direction is unaffected.
        assert_eq!(ch.host().tx().next_iv(), IV_LIMIT);
        ch.device_mut().seal(b"fine").unwrap();
    }

    #[test]
    fn sentinel_open_consumes_iv_and_keeps_lockstep() {
        let mut ch = channel();
        let mut corrupted = ch.host_mut().seal(b"doomed frame").unwrap();
        corrupted.bytes[3] ^= 0x40;
        let follower = ch.host_mut().seal(b"survivor").unwrap();
        let (buf, outcome) = ch.device_mut().rx_mut().open_owned_or_sentinel(corrupted);
        assert!(matches!(
            outcome,
            Err(CryptoError::AuthenticationFailed { expected_iv: 1 })
        ));
        // The failed frame burned IV 1: sentinel payload, counter advanced.
        assert_eq!(buf, vec![SENTINEL_BYTE; b"doomed frame".len()]);
        assert_eq!(ch.device().rx().next_iv(), 2);
        // Lockstep holds — the next in-order frame opens normally.
        assert_eq!(ch.device_mut().open(&follower).unwrap(), b"survivor");
    }

    #[test]
    fn sentinel_open_of_truncated_frame_yields_empty_sentinel() {
        let mut ch = channel();
        let mut sealed = ch.host_mut().seal(b"cut short").unwrap();
        sealed.bytes.truncate(5); // shorter than the 16-byte tag
        let (buf, outcome) = ch.device_mut().rx_mut().open_owned_or_sentinel(sealed);
        assert!(matches!(
            outcome,
            Err(CryptoError::TruncatedCiphertext { got: 5 })
        ));
        assert!(buf.is_empty());
        assert_eq!(ch.device().rx().next_iv(), 2);
    }

    #[test]
    fn skip_resynchronizes_after_a_dropped_frame() {
        let mut ch = channel();
        let _lost = ch.host_mut().seal(b"dropped on the wire").unwrap();
        let delivered = ch.host_mut().seal(b"delivered").unwrap();
        // Without the skip, the delivered frame would fail (wrong IV).
        assert_eq!(ch.device_mut().rx_mut().skip(), 1);
        assert_eq!(ch.device_mut().open(&delivered).unwrap(), b"delivered");
        // The skipped IV is burned for the sender too — it already sealed
        // under it, and the receiver can never be convinced to reuse it.
        assert_eq!(ch.host().tx().next_iv(), 3);
        assert_eq!(ch.device().rx().next_iv(), 3);
    }

    #[test]
    fn deferred_sentinel_open_scrubs_the_buffer() {
        let mut ch = channel();
        let sealed = ch.host_mut().seal(b"deferred payload").unwrap();
        let deferred = ch.device_mut().rx_mut().defer_open();
        let mut buf = sealed.bytes.clone();
        buf[0] ^= 1;
        let err = deferred
            .open_in_place_or_sentinel(&sealed.aad, &mut buf)
            .unwrap_err();
        assert!(matches!(err, CryptoError::AuthenticationFailed { .. }));
        assert_eq!(buf, vec![SENTINEL_BYTE; b"deferred payload".len()]);
        // The reservation already advanced the counter; a fresh in-order
        // frame still opens.
        let next = ch.host_mut().seal(b"next").unwrap();
        assert_eq!(ch.device_mut().open(&next).unwrap(), b"next");
    }

    #[test]
    fn keys_from_different_seeds_are_incompatible() {
        let mut a = SecureChannel::new(ChannelKeys::from_seed(1));
        let mut b = SecureChannel::new(ChannelKeys::from_seed(2));
        let sealed = a.host_mut().seal(b"secret").unwrap();
        assert!(b.device_mut().open(&sealed).is_err());
    }
}
