//! Hardware acceleration for the crypto hot path: AES-NI block encryption
//! and carry-less-multiply (PCLMULQDQ) GHASH on x86_64.
//!
//! Everything here is runtime-detected: [`aes_available`] /
//! [`clmul_available`] gate the `unsafe` intrinsic paths, and on other
//! architectures (or older x86 parts) the callers in [`crate::aes`] and
//! [`crate::gcm`] fall back to the portable T-table / 8-bit-table software
//! paths, which double as the correctness oracles these functions are
//! property-tested against.
//!
//! # GHASH in the reflected domain
//!
//! GCM stores field elements bit-reflected. Rather than shifting the
//! 256-bit carry-less product (the Intel whitepaper's approach), this
//! implementation keeps every operand fully bit-reversed — each data block
//! is loaded and bit-reversed *within each byte* (two `pshufb` nibble
//! lookups), which together with x86's little-endian byte order yields the
//! complete 128-bit reversal. In that domain GCM multiplication is plain
//! polynomial multiplication modulo `x^128 + x^7 + x^2 + x + 1`, so the
//! product folds with two extra carry-less multiplies by `0x87` — the same
//! reduction POLYVAL uses. Subkey powers are reversed once at key setup
//! (scalar `u128::reverse_bits`), and the accumulator is reversed back only
//! when the final tag is produced.
//!
//! Four blocks are aggregated per reduction: their four 256-bit partial
//! products (against H⁴…H¹) XOR together and are folded once.

// Intrinsics are inherently unsafe; this module is the one place in the
// crate allowed to use them, behind runtime feature detection.
#![allow(unsafe_code)]

#[cfg(target_arch = "x86_64")]
pub use x86::*;

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::{
        __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_and_si128, _mm_clmulepi64_si128,
        _mm_loadu_si128, _mm_or_si128, _mm_set1_epi8, _mm_set_epi64x, _mm_setzero_si128,
        _mm_shuffle_epi8, _mm_slli_si128, _mm_srli_epi16, _mm_srli_si128, _mm_storeu_si128,
        _mm_xor_si128,
    };

    /// Whether the AES-NI block path can be used on this machine.
    pub fn aes_available() -> bool {
        std::arch::is_x86_feature_detected!("aes") && std::arch::is_x86_feature_detected!("sse2")
    }

    /// Whether the carry-less-multiply GHASH path can be used.
    pub fn clmul_available() -> bool {
        std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("ssse3")
    }

    /// Blocks interleaved per AES-NI iteration (fills the `aesenc` pipeline).
    const LANES: usize = 8;

    #[target_feature(enable = "aes,sse2")]
    unsafe fn encrypt_blocks_impl(round_keys: &[[u8; 16]], data: &mut [u8]) {
        debug_assert_eq!(data.len() % 16, 0);
        let rounds = round_keys.len() - 1;
        let mut k = [_mm_setzero_si128(); 15];
        for (slot, rk) in k.iter_mut().zip(round_keys) {
            *slot = _mm_loadu_si128(rk.as_ptr().cast());
        }
        let mut groups = data.chunks_exact_mut(LANES * 16);
        for group in groups.by_ref() {
            let p = group.as_mut_ptr().cast::<__m128i>();
            let mut s = [_mm_setzero_si128(); LANES];
            for (i, lane) in s.iter_mut().enumerate() {
                *lane = _mm_xor_si128(_mm_loadu_si128(p.add(i)), k[0]);
            }
            for key in &k[1..rounds] {
                for lane in s.iter_mut() {
                    *lane = _mm_aesenc_si128(*lane, *key);
                }
            }
            for (i, lane) in s.iter().enumerate() {
                _mm_storeu_si128(p.add(i), _mm_aesenclast_si128(*lane, k[rounds]));
            }
        }
        for block in groups.into_remainder().chunks_exact_mut(16) {
            let p = block.as_mut_ptr().cast::<__m128i>();
            let mut s = _mm_xor_si128(_mm_loadu_si128(p), k[0]);
            for key in &k[1..rounds] {
                s = _mm_aesenc_si128(s, *key);
            }
            _mm_storeu_si128(p, _mm_aesenclast_si128(s, k[rounds]));
        }
    }

    /// Encrypts whole 16-byte blocks in place with AES-NI, eight lanes at
    /// a time. The caller must have checked [`aes_available`].
    pub fn encrypt_blocks(round_keys: &[[u8; 16]], data: &mut [u8]) {
        debug_assert!(aes_available());
        // SAFETY: `aes_available()` was checked when the key was expanded;
        // the target features of `encrypt_blocks_impl` are present.
        unsafe { encrypt_blocks_impl(round_keys, data) }
    }

    /// Bit-reverse of each nibble value, as two `pshufb` tables.
    const REV_NIB_LO: [u8; 16] = [
        0x0, 0x8, 0x4, 0xc, 0x2, 0xa, 0x6, 0xe, 0x1, 0x9, 0x5, 0xd, 0x3, 0xb, 0x7, 0xf,
    ];
    const REV_NIB_HI: [u8; 16] = [
        0x00, 0x80, 0x40, 0xc0, 0x20, 0xa0, 0x60, 0xe0, 0x10, 0x90, 0x50, 0xd0, 0x30, 0xb0, 0x70,
        0xf0,
    ];

    /// Reverses the bits inside every byte; combined with x86's
    /// little-endian lane order this is the full 128-bit reflection of a
    /// big-endian GCM block.
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn rev_bits(v: __m128i) -> __m128i {
        let mask = _mm_set1_epi8(0x0f);
        let lo_nib = _mm_and_si128(v, mask);
        let hi_nib = _mm_and_si128(_mm_srli_epi16(v, 4), mask);
        let lut_hi = _mm_loadu_si128(REV_NIB_HI.as_ptr().cast());
        let lut_lo = _mm_loadu_si128(REV_NIB_LO.as_ptr().cast());
        _mm_or_si128(
            _mm_shuffle_epi8(lut_hi, lo_nib),
            _mm_shuffle_epi8(lut_lo, hi_nib),
        )
    }

    /// Loads a ≤16-byte chunk zero-padded to a block, bit-reflected.
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn load_block_rev(chunk: &[u8]) -> __m128i {
        if chunk.len() == 16 {
            rev_bits(_mm_loadu_si128(chunk.as_ptr().cast()))
        } else {
            let mut padded = [0u8; 16];
            padded[..chunk.len()].copy_from_slice(chunk);
            rev_bits(_mm_loadu_si128(padded.as_ptr().cast()))
        }
    }

    /// 256-bit carry-less multiply-accumulate: `acc ^= a * b`.
    #[inline]
    #[target_feature(enable = "pclmulqdq,sse2")]
    unsafe fn clmul_acc(a: __m128i, b: __m128i, acc_lo: &mut __m128i, acc_hi: &mut __m128i) {
        let ll = _mm_clmulepi64_si128(a, b, 0x00);
        let lh = _mm_clmulepi64_si128(a, b, 0x10);
        let hl = _mm_clmulepi64_si128(a, b, 0x01);
        let hh = _mm_clmulepi64_si128(a, b, 0x11);
        let mid = _mm_xor_si128(lh, hl);
        *acc_lo = _mm_xor_si128(*acc_lo, _mm_xor_si128(ll, _mm_slli_si128(mid, 8)));
        *acc_hi = _mm_xor_si128(*acc_hi, _mm_xor_si128(hh, _mm_srli_si128(mid, 8)));
    }

    /// Folds a 256-bit product modulo `x^128 + x^7 + x^2 + x + 1`.
    #[inline]
    #[target_feature(enable = "pclmulqdq,sse2")]
    unsafe fn reduce(lo: __m128i, hi: __m128i) -> __m128i {
        let poly = _mm_set_epi64x(0, 0x87);
        let t0 = _mm_clmulepi64_si128(hi, poly, 0x00);
        let t1 = _mm_clmulepi64_si128(hi, poly, 0x01);
        let acc = _mm_xor_si128(_mm_xor_si128(lo, t0), _mm_slli_si128(t1, 8));
        let overflow = _mm_srli_si128(t1, 8);
        _mm_xor_si128(acc, _mm_clmulepi64_si128(overflow, poly, 0x00))
    }

    #[inline]
    fn to_m128(v: u128) -> __m128i {
        // SAFETY: sse2 is part of the x86_64 baseline.
        unsafe { _mm_set_epi64x((v >> 64) as i64, v as i64) }
    }

    #[inline]
    fn from_m128(v: __m128i) -> u128 {
        let mut bytes = [0u8; 16];
        // SAFETY: sse2 is part of the x86_64 baseline.
        unsafe { _mm_storeu_si128(bytes.as_mut_ptr().cast(), v) };
        u128::from_le_bytes(bytes)
    }

    #[target_feature(enable = "pclmulqdq,ssse3,sse2")]
    unsafe fn ghash_update_impl(h: &[__m128i; 4], mut y: __m128i, data: &[u8]) -> __m128i {
        let mut quads = data.chunks_exact(64);
        for quad in quads.by_ref() {
            // (y ⊕ b0)·H⁴ ⊕ b1·H³ ⊕ b2·H² ⊕ b3·H, one reduction for all.
            let b0 = _mm_xor_si128(y, load_block_rev(&quad[..16]));
            let mut lo = _mm_setzero_si128();
            let mut hi = _mm_setzero_si128();
            clmul_acc(b0, h[3], &mut lo, &mut hi);
            clmul_acc(load_block_rev(&quad[16..32]), h[2], &mut lo, &mut hi);
            clmul_acc(load_block_rev(&quad[32..48]), h[1], &mut lo, &mut hi);
            clmul_acc(load_block_rev(&quad[48..]), h[0], &mut lo, &mut hi);
            y = reduce(lo, hi);
        }
        for chunk in quads.remainder().chunks(16) {
            let b = _mm_xor_si128(y, load_block_rev(chunk));
            let mut lo = _mm_setzero_si128();
            let mut hi = _mm_setzero_si128();
            clmul_acc(b, h[0], &mut lo, &mut hi);
            y = reduce(lo, hi);
        }
        y
    }

    #[target_feature(enable = "pclmulqdq,ssse3,sse2")]
    unsafe fn ghash_segment_impl(key: &ClmulKey, data: &[u8]) -> u128 {
        let h = [
            to_m128(key.h_rev[0]),
            to_m128(key.h_rev[1]),
            to_m128(key.h_rev[2]),
            to_m128(key.h_rev[3]),
        ];
        let y = ghash_update_impl(&h, _mm_setzero_si128(), data);
        from_m128(y).reverse_bits()
    }

    #[target_feature(enable = "pclmulqdq,sse2")]
    unsafe fn gf_mul_impl(a: u128, b: u128) -> u128 {
        let va = to_m128(a.reverse_bits());
        let vb = to_m128(b.reverse_bits());
        let mut lo = _mm_setzero_si128();
        let mut hi = _mm_setzero_si128();
        clmul_acc(va, vb, &mut lo, &mut hi);
        from_m128(reduce(lo, hi)).reverse_bits()
    }

    #[target_feature(enable = "pclmulqdq,ssse3,sse2")]
    unsafe fn ghash_impl(key: &ClmulKey, aad: &[u8], ciphertext: &[u8], lengths: u128) -> u128 {
        let h = [
            to_m128(key.h_rev[0]),
            to_m128(key.h_rev[1]),
            to_m128(key.h_rev[2]),
            to_m128(key.h_rev[3]),
        ];
        let mut y = ghash_update_impl(&h, _mm_setzero_si128(), aad);
        y = ghash_update_impl(&h, y, ciphertext);
        let len_block = _mm_xor_si128(y, to_m128(lengths.reverse_bits()));
        let mut lo = _mm_setzero_si128();
        let mut hi = _mm_setzero_si128();
        clmul_acc(len_block, h[0], &mut lo, &mut hi);
        from_m128(reduce(lo, hi)).reverse_bits()
    }

    /// Bit-reflected powers H¹–H⁴ of the hash subkey (`h_rev[p]` = H^(p+1)).
    #[derive(Debug, Clone)]
    pub struct ClmulKey {
        h_rev: [u128; 4],
    }

    impl ClmulKey {
        /// Builds the key from *normal-domain* subkey powers (as produced
        /// by `gf_mul`), reflecting each once.
        pub fn new(powers: [u128; 4]) -> Self {
            ClmulKey {
                h_rev: powers.map(u128::reverse_bits),
            }
        }
    }

    /// GHASH over `aad || ciphertext || lengths` via PCLMULQDQ; returns the
    /// normal-domain hash. The caller must have checked [`clmul_available`].
    pub fn ghash(key: &ClmulKey, aad: &[u8], ciphertext: &[u8], lengths: u128) -> u128 {
        debug_assert!(clmul_available());
        // SAFETY: `clmul_available()` was checked when the key was built.
        unsafe { ghash_impl(key, aad, ciphertext, lengths) }
    }

    /// Partial GHASH of one block-aligned segment, starting from a zero
    /// accumulator and folding no length block — the per-worker half of the
    /// chunked-GCM tag (see `pipellm_crypto::gcm`). Returns the
    /// normal-domain hash. The caller must have checked [`clmul_available`].
    pub fn ghash_segment(key: &ClmulKey, data: &[u8]) -> u128 {
        debug_assert!(clmul_available());
        // SAFETY: `clmul_available()` was checked when the key was built.
        unsafe { ghash_segment_impl(key, data) }
    }

    /// One GCM-domain GF(2¹²⁸) multiplication via PCLMULQDQ, on arbitrary
    /// normal-domain operands (not just precomputed subkey powers) — used
    /// to combine chunked-GHASH partials with extended powers of H. The
    /// caller must have checked [`clmul_available`].
    pub fn gf_mul(a: u128, b: u128) -> u128 {
        debug_assert!(clmul_available());
        // SAFETY: gated on `clmul_available()` by the caller.
        unsafe { gf_mul_impl(a, b) }
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod portable {
    //! No-op stand-ins for non-x86_64 targets: detection always fails, so
    //! the accelerated entry points are unreachable.

    /// Always `false` off x86_64.
    pub fn aes_available() -> bool {
        false
    }

    /// Always `false` off x86_64.
    pub fn clmul_available() -> bool {
        false
    }

    /// Unreachable off x86_64 (detection returns `false`).
    pub fn encrypt_blocks(_round_keys: &[[u8; 16]], _data: &mut [u8]) {
        unreachable!("hardware AES path taken without AES-NI support");
    }

    /// Bit-reflected subkey powers; never constructed off x86_64.
    #[derive(Debug, Clone)]
    pub struct ClmulKey;

    impl ClmulKey {
        /// Unreachable off x86_64.
        pub fn new(_powers: [u128; 4]) -> Self {
            unreachable!("clmul GHASH key built without PCLMULQDQ support");
        }
    }

    /// Unreachable off x86_64.
    pub fn ghash(_key: &ClmulKey, _aad: &[u8], _ciphertext: &[u8], _lengths: u128) -> u128 {
        unreachable!("clmul GHASH taken without PCLMULQDQ support");
    }

    /// Unreachable off x86_64.
    pub fn ghash_segment(_key: &ClmulKey, _data: &[u8]) -> u128 {
        unreachable!("clmul GHASH taken without PCLMULQDQ support");
    }

    /// Unreachable off x86_64.
    pub fn gf_mul(_a: u128, _b: u128) -> u128 {
        unreachable!("clmul GF multiply taken without PCLMULQDQ support");
    }
}

#[cfg(not(target_arch = "x86_64"))]
pub use portable::*;
