//! Hardware acceleration for the crypto hot path: AES-NI block encryption
//! and carry-less-multiply (PCLMULQDQ) GHASH on x86_64.
//!
//! Everything here is runtime-detected: [`aes_available`] /
//! [`clmul_available`] gate the `unsafe` intrinsic paths, and on other
//! architectures (or older x86 parts) the callers in [`crate::aes`] and
//! [`crate::gcm`] fall back to the portable T-table / 8-bit-table software
//! paths, which double as the correctness oracles these functions are
//! property-tested against.
//!
//! # GHASH in the reflected domain
//!
//! GCM stores field elements bit-reflected. Rather than shifting the
//! 256-bit carry-less product (the Intel whitepaper's approach), this
//! implementation keeps every operand fully bit-reversed — each data block
//! is loaded and bit-reversed *within each byte* (two `pshufb` nibble
//! lookups), which together with x86's little-endian byte order yields the
//! complete 128-bit reversal. In that domain GCM multiplication is plain
//! polynomial multiplication modulo `x^128 + x^7 + x^2 + x + 1`, so the
//! product folds with two extra carry-less multiplies by `0x87` — the same
//! reduction POLYVAL uses. Subkey powers are reversed once at key setup
//! (scalar `u128::reverse_bits`), and the accumulator is reversed back only
//! when the final tag is produced.
//!
//! Four blocks are aggregated per reduction: their four 256-bit partial
//! products (against H⁴…H¹) XOR together and are folded once.

// Intrinsics are inherently unsafe; this module is the one place in the
// crate allowed to use them, behind runtime feature detection.
#![allow(unsafe_code)]

#[cfg(target_arch = "x86_64")]
pub use x86::*;

/// Which accelerated path the dispatcher is forced onto, parsed once from
/// the `PIPELLM_CRYPTO_FORCE` environment variable (`auto` | `soft` |
/// `aesni` | `vaes`). `Soft` disables every intrinsic path; `AesNi` keeps
/// the 128-bit lanes but masks VAES; `Vaes` behaves like `Auto` (the wide
/// path still requires hardware detection — forcing cannot conjure missing
/// instructions). Unrecognized or unset values mean `Auto`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForcedPath {
    /// Runtime detection picks the widest available path.
    Auto,
    /// Portable software paths only (T-table AES, 8-bit-table GHASH).
    Soft,
    /// AES-NI/PCLMULQDQ 128-bit lanes, VAES masked off.
    AesNi,
    /// Prefer the VAES/AVX-512 wide path (falls back when undetected).
    Vaes,
}

/// The forced path for this process (see [`ForcedPath`]).
pub fn forced_path() -> ForcedPath {
    static FORCED: std::sync::OnceLock<ForcedPath> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| match std::env::var("PIPELLM_CRYPTO_FORCE").as_deref() {
        Ok("soft") => ForcedPath::Soft,
        Ok("aesni") => ForcedPath::AesNi,
        Ok("vaes") => ForcedPath::Vaes,
        _ => ForcedPath::Auto,
    })
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::ForcedPath;
    use core::arch::x86_64::{
        __m128i, __m512i, _mm512_aesenc_epi128, _mm512_aesenclast_epi128, _mm512_broadcast_i32x4,
        _mm512_loadu_si512, _mm512_setzero_si512, _mm512_storeu_si512, _mm512_xor_si512,
        _mm_aesenc_si128, _mm_aesenclast_si128, _mm_and_si128, _mm_clmulepi64_si128,
        _mm_loadu_si128, _mm_or_si128, _mm_set1_epi8, _mm_set_epi64x, _mm_setzero_si128,
        _mm_shuffle_epi8, _mm_slli_si128, _mm_srli_epi16, _mm_srli_si128, _mm_storeu_si128,
        _mm_xor_si128,
    };

    fn detect_aes() -> bool {
        std::arch::is_x86_feature_detected!("aes") && std::arch::is_x86_feature_detected!("sse2")
    }

    fn detect_clmul() -> bool {
        std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("ssse3")
    }

    fn detect_vaes() -> bool {
        std::arch::is_x86_feature_detected!("vaes")
    }

    fn detect_avx512f() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
    }

    /// Detected CPU crypto features, for bench/CI reporting: raw hardware
    /// detection, independent of [`super::forced_path`].
    pub fn cpu_features() -> [(&'static str, bool); 4] {
        [
            ("aes", detect_aes()),
            ("pclmulqdq", detect_clmul()),
            ("vaes", detect_vaes()),
            ("avx512f", detect_avx512f()),
        ]
    }

    /// Whether the AES-NI block path can be used on this machine (and is
    /// not masked by [`super::forced_path`]).
    pub fn aes_available() -> bool {
        super::forced_path() != ForcedPath::Soft && detect_aes()
    }

    /// Whether the carry-less-multiply GHASH path can be used (and is not
    /// masked by [`super::forced_path`]).
    pub fn clmul_available() -> bool {
        super::forced_path() != ForcedPath::Soft && detect_clmul()
    }

    /// Whether the VAES/AVX-512 wide CTR path is live: 4 AES blocks per
    /// `zmm` instruction. Requires detection *and* a [`super::forced_path`]
    /// of `Auto` or `Vaes` (`aesni` pins the 128-bit lanes, `soft`
    /// disables intrinsics entirely).
    pub fn vaes_available() -> bool {
        matches!(super::forced_path(), ForcedPath::Auto | ForcedPath::Vaes)
            && detect_vaes()
            && detect_avx512f()
            && detect_aes()
    }

    /// Blocks interleaved per AES-NI iteration (fills the `aesenc` pipeline).
    const LANES: usize = 8;

    /// # Safety
    ///
    /// The `aes` and `sse2` CPU features must be present; every dispatch
    /// goes through [`aesni_available`], which checks them via `cpuid`.
    #[target_feature(enable = "aes,sse2")]
    unsafe fn encrypt_blocks_impl(round_keys: &[[u8; 16]], data: &mut [u8]) {
        debug_assert_eq!(data.len() % 16, 0);
        let rounds = round_keys.len() - 1;
        let mut k = [_mm_setzero_si128(); 15];
        for (slot, rk) in k.iter_mut().zip(round_keys) {
            *slot = _mm_loadu_si128(rk.as_ptr().cast());
        }
        let mut groups = data.chunks_exact_mut(LANES * 16);
        for group in groups.by_ref() {
            let p = group.as_mut_ptr().cast::<__m128i>();
            let mut s = [_mm_setzero_si128(); LANES];
            for (i, lane) in s.iter_mut().enumerate() {
                *lane = _mm_xor_si128(_mm_loadu_si128(p.add(i)), k[0]);
            }
            for key in &k[1..rounds] {
                for lane in s.iter_mut() {
                    *lane = _mm_aesenc_si128(*lane, *key);
                }
            }
            for (i, lane) in s.iter().enumerate() {
                _mm_storeu_si128(p.add(i), _mm_aesenclast_si128(*lane, k[rounds]));
            }
        }
        for block in groups.into_remainder().chunks_exact_mut(16) {
            let p = block.as_mut_ptr().cast::<__m128i>();
            let mut s = _mm_xor_si128(_mm_loadu_si128(p), k[0]);
            for key in &k[1..rounds] {
                s = _mm_aesenc_si128(s, *key);
            }
            _mm_storeu_si128(p, _mm_aesenclast_si128(s, k[rounds]));
        }
    }

    /// Blocks per VAES iteration: two `zmm` registers of 4 blocks each,
    /// keeping the wide `vaesenc` pipeline fed.
    const WIDE_LANES: usize = 8;

    /// VAES/AVX-512 variant of [`encrypt_blocks_impl`]: each
    /// `_mm512_aesenc_epi128` advances four independent 128-bit lanes one
    /// AES round, so a 512-bit register carries 4 CTR blocks. The
    /// sub-`WIDE_LANES` remainder reuses the 128-bit path.
    ///
    /// # Safety
    ///
    /// The `aes`, `sse2`, `vaes`, and `avx512f` CPU features must be
    /// present; every dispatch goes through [`vaes_available`], which
    /// checks them via `cpuid`.
    #[target_feature(enable = "aes,sse2,vaes,avx512f")]
    unsafe fn encrypt_blocks_vaes(round_keys: &[[u8; 16]], data: &mut [u8]) {
        debug_assert_eq!(data.len() % 16, 0);
        let rounds = round_keys.len() - 1;
        let mut k = [_mm512_setzero_si512(); 15];
        for (slot, rk) in k.iter_mut().zip(round_keys) {
            *slot = _mm512_broadcast_i32x4(_mm_loadu_si128(rk.as_ptr().cast()));
        }
        let mut groups = data.chunks_exact_mut(WIDE_LANES * 16);
        for group in groups.by_ref() {
            let p = group.as_mut_ptr().cast::<__m512i>();
            let mut s0 = _mm512_xor_si512(_mm512_loadu_si512(p.cast()), k[0]);
            let mut s1 = _mm512_xor_si512(_mm512_loadu_si512(p.add(1).cast()), k[0]);
            for key in &k[1..rounds] {
                s0 = _mm512_aesenc_epi128(s0, *key);
                s1 = _mm512_aesenc_epi128(s1, *key);
            }
            _mm512_storeu_si512(p.cast(), _mm512_aesenclast_epi128(s0, k[rounds]));
            _mm512_storeu_si512(p.add(1).cast(), _mm512_aesenclast_epi128(s1, k[rounds]));
        }
        encrypt_blocks_impl(round_keys, groups.into_remainder());
    }

    /// Encrypts whole 16-byte blocks in place: the VAES/AVX-512 wide path
    /// when detected (4 blocks per instruction), AES-NI eight-lane
    /// otherwise. The caller must have checked [`aes_available`].
    pub fn encrypt_blocks(round_keys: &[[u8; 16]], data: &mut [u8]) {
        debug_assert!(aes_available());
        if vaes_available() && data.len() >= WIDE_LANES * 16 {
            // SAFETY: `vaes_available()` implies vaes+avx512f+aes+sse2.
            unsafe { encrypt_blocks_vaes(round_keys, data) }
        } else {
            // SAFETY: `aes_available()` was checked when the key was
            // expanded; the target features of `encrypt_blocks_impl` are
            // present.
            unsafe { encrypt_blocks_impl(round_keys, data) }
        }
    }

    /// Bit-reverse of each nibble value, as two `pshufb` tables.
    const REV_NIB_LO: [u8; 16] = [
        0x0, 0x8, 0x4, 0xc, 0x2, 0xa, 0x6, 0xe, 0x1, 0x9, 0x5, 0xd, 0x3, 0xb, 0x7, 0xf,
    ];
    const REV_NIB_HI: [u8; 16] = [
        0x00, 0x80, 0x40, 0xc0, 0x20, 0xa0, 0x60, 0xe0, 0x10, 0x90, 0x50, 0xd0, 0x30, 0xb0, 0x70,
        0xf0,
    ];

    /// Reverses the bits inside every byte; combined with x86's
    /// little-endian lane order this is the full 128-bit reflection of a
    /// big-endian GCM block.
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn rev_bits(v: __m128i) -> __m128i {
        let mask = _mm_set1_epi8(0x0f);
        let lo_nib = _mm_and_si128(v, mask);
        let hi_nib = _mm_and_si128(_mm_srli_epi16(v, 4), mask);
        let lut_hi = _mm_loadu_si128(REV_NIB_HI.as_ptr().cast());
        let lut_lo = _mm_loadu_si128(REV_NIB_LO.as_ptr().cast());
        _mm_or_si128(
            _mm_shuffle_epi8(lut_hi, lo_nib),
            _mm_shuffle_epi8(lut_lo, hi_nib),
        )
    }

    /// Loads a ≤16-byte chunk zero-padded to a block, bit-reflected.
    ///
    /// # Safety
    ///
    /// The `ssse3` CPU feature must be present (implied by the
    /// [`clmul_available`] check guarding every caller).
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn load_block_rev(chunk: &[u8]) -> __m128i {
        if chunk.len() == 16 {
            rev_bits(_mm_loadu_si128(chunk.as_ptr().cast()))
        } else {
            let mut padded = [0u8; 16];
            padded[..chunk.len()].copy_from_slice(chunk);
            rev_bits(_mm_loadu_si128(padded.as_ptr().cast()))
        }
    }

    /// 256-bit carry-less multiply-accumulate: `acc ^= a * b`.
    ///
    /// # Safety
    ///
    /// The `pclmulqdq` and `sse2` CPU features must be present (checked
    /// by [`clmul_available`] before dispatch).
    #[inline]
    #[target_feature(enable = "pclmulqdq,sse2")]
    unsafe fn clmul_acc(a: __m128i, b: __m128i, acc_lo: &mut __m128i, acc_hi: &mut __m128i) {
        let ll = _mm_clmulepi64_si128(a, b, 0x00);
        let lh = _mm_clmulepi64_si128(a, b, 0x10);
        let hl = _mm_clmulepi64_si128(a, b, 0x01);
        let hh = _mm_clmulepi64_si128(a, b, 0x11);
        let mid = _mm_xor_si128(lh, hl);
        *acc_lo = _mm_xor_si128(*acc_lo, _mm_xor_si128(ll, _mm_slli_si128(mid, 8)));
        *acc_hi = _mm_xor_si128(*acc_hi, _mm_xor_si128(hh, _mm_srli_si128(mid, 8)));
    }

    /// Folds a 256-bit product modulo `x^128 + x^7 + x^2 + x + 1`.
    ///
    /// # Safety
    ///
    /// The `pclmulqdq` and `sse2` CPU features must be present (checked
    /// by [`clmul_available`] before dispatch).
    #[inline]
    #[target_feature(enable = "pclmulqdq,sse2")]
    unsafe fn reduce(lo: __m128i, hi: __m128i) -> __m128i {
        let poly = _mm_set_epi64x(0, 0x87);
        let t0 = _mm_clmulepi64_si128(hi, poly, 0x00);
        let t1 = _mm_clmulepi64_si128(hi, poly, 0x01);
        let acc = _mm_xor_si128(_mm_xor_si128(lo, t0), _mm_slli_si128(t1, 8));
        let overflow = _mm_srli_si128(t1, 8);
        _mm_xor_si128(acc, _mm_clmulepi64_si128(overflow, poly, 0x00))
    }

    #[inline]
    fn to_m128(v: u128) -> __m128i {
        // SAFETY: sse2 is part of the x86_64 baseline.
        unsafe { _mm_set_epi64x((v >> 64) as i64, v as i64) }
    }

    #[inline]
    fn from_m128(v: __m128i) -> u128 {
        let mut bytes = [0u8; 16];
        // SAFETY: sse2 is part of the x86_64 baseline.
        unsafe { _mm_storeu_si128(bytes.as_mut_ptr().cast(), v) };
        u128::from_le_bytes(bytes)
    }

    #[target_feature(enable = "pclmulqdq,ssse3,sse2")]
    unsafe fn ghash_update_impl(h: &[__m128i; 4], mut y: __m128i, data: &[u8]) -> __m128i {
        let mut quads = data.chunks_exact(64);
        for quad in quads.by_ref() {
            // (y ⊕ b0)·H⁴ ⊕ b1·H³ ⊕ b2·H² ⊕ b3·H, one reduction for all.
            let b0 = _mm_xor_si128(y, load_block_rev(&quad[..16]));
            let mut lo = _mm_setzero_si128();
            let mut hi = _mm_setzero_si128();
            clmul_acc(b0, h[3], &mut lo, &mut hi);
            clmul_acc(load_block_rev(&quad[16..32]), h[2], &mut lo, &mut hi);
            clmul_acc(load_block_rev(&quad[32..48]), h[1], &mut lo, &mut hi);
            clmul_acc(load_block_rev(&quad[48..]), h[0], &mut lo, &mut hi);
            y = reduce(lo, hi);
        }
        for chunk in quads.remainder().chunks(16) {
            let b = _mm_xor_si128(y, load_block_rev(chunk));
            let mut lo = _mm_setzero_si128();
            let mut hi = _mm_setzero_si128();
            clmul_acc(b, h[0], &mut lo, &mut hi);
            y = reduce(lo, hi);
        }
        y
    }

    /// # Safety
    ///
    /// The `pclmulqdq`, `ssse3`, and `sse2` CPU features must be present
    /// (checked by [`clmul_available`] before dispatch).
    #[target_feature(enable = "pclmulqdq,ssse3,sse2")]
    unsafe fn ghash_segment_impl(key: &ClmulKey, data: &[u8]) -> u128 {
        let h = [
            to_m128(key.h_rev[0]),
            to_m128(key.h_rev[1]),
            to_m128(key.h_rev[2]),
            to_m128(key.h_rev[3]),
        ];
        let y = ghash_update_impl(&h, _mm_setzero_si128(), data);
        from_m128(y).reverse_bits()
    }

    /// # Safety
    ///
    /// The `pclmulqdq` and `sse2` CPU features must be present (checked
    /// by [`clmul_available`] before dispatch).
    #[target_feature(enable = "pclmulqdq,sse2")]
    unsafe fn gf_mul_impl(a: u128, b: u128) -> u128 {
        let va = to_m128(a.reverse_bits());
        let vb = to_m128(b.reverse_bits());
        let mut lo = _mm_setzero_si128();
        let mut hi = _mm_setzero_si128();
        clmul_acc(va, vb, &mut lo, &mut hi);
        from_m128(reduce(lo, hi)).reverse_bits()
    }

    /// # Safety
    ///
    /// The `pclmulqdq`, `ssse3`, and `sse2` CPU features must be present
    /// (checked by [`clmul_available`] before dispatch).
    #[target_feature(enable = "pclmulqdq,ssse3,sse2")]
    unsafe fn ghash_impl(key: &ClmulKey, aad: &[u8], ciphertext: &[u8], lengths: u128) -> u128 {
        let h = [
            to_m128(key.h_rev[0]),
            to_m128(key.h_rev[1]),
            to_m128(key.h_rev[2]),
            to_m128(key.h_rev[3]),
        ];
        let mut y = ghash_update_impl(&h, _mm_setzero_si128(), aad);
        y = ghash_update_impl(&h, y, ciphertext);
        let len_block = _mm_xor_si128(y, to_m128(lengths.reverse_bits()));
        let mut lo = _mm_setzero_si128();
        let mut hi = _mm_setzero_si128();
        clmul_acc(len_block, h[0], &mut lo, &mut hi);
        from_m128(reduce(lo, hi)).reverse_bits()
    }

    /// Bit-reflected powers H¹–H⁴ of the hash subkey (`h_rev[p]` = H^(p+1)).
    #[derive(Debug, Clone)]
    pub struct ClmulKey {
        h_rev: [u128; 4],
    }

    impl ClmulKey {
        /// Builds the key from *normal-domain* subkey powers (as produced
        /// by `gf_mul`), reflecting each once.
        pub fn new(powers: [u128; 4]) -> Self {
            ClmulKey {
                h_rev: powers.map(u128::reverse_bits),
            }
        }
    }

    /// GHASH over `aad || ciphertext || lengths` via PCLMULQDQ; returns the
    /// normal-domain hash. The caller must have checked [`clmul_available`].
    pub fn ghash(key: &ClmulKey, aad: &[u8], ciphertext: &[u8], lengths: u128) -> u128 {
        debug_assert!(clmul_available());
        // SAFETY: `clmul_available()` was checked when the key was built.
        unsafe { ghash_impl(key, aad, ciphertext, lengths) }
    }

    /// Partial GHASH of one block-aligned segment, starting from a zero
    /// accumulator and folding no length block — the per-worker half of the
    /// chunked-GCM tag (see `pipellm_crypto::gcm`). Returns the
    /// normal-domain hash. The caller must have checked [`clmul_available`].
    pub fn ghash_segment(key: &ClmulKey, data: &[u8]) -> u128 {
        debug_assert!(clmul_available());
        // SAFETY: `clmul_available()` was checked when the key was built.
        unsafe { ghash_segment_impl(key, data) }
    }

    /// One GCM-domain GF(2¹²⁸) multiplication via PCLMULQDQ, on arbitrary
    /// normal-domain operands (not just precomputed subkey powers) — used
    /// to combine chunked-GHASH partials with extended powers of H. The
    /// caller must have checked [`clmul_available`].
    pub fn gf_mul(a: u128, b: u128) -> u128 {
        debug_assert!(clmul_available());
        // SAFETY: gated on `clmul_available()` by the caller.
        unsafe { gf_mul_impl(a, b) }
    }

    #[target_feature(enable = "aes,sse2,pclmulqdq,ssse3")]
    unsafe fn ctr_ghash_seal_impl(
        round_keys: &[[u8; 16]],
        key: &ClmulKey,
        j0: &[u8; 16],
        block_offset: u32,
        data: &mut [u8],
        wide: bool,
    ) -> u128 {
        let h = [
            to_m128(key.h_rev[0]),
            to_m128(key.h_rev[1]),
            to_m128(key.h_rev[2]),
            to_m128(key.h_rev[3]),
        ];
        let mut y = _mm_setzero_si128();
        let mut counter =
            u32::from_be_bytes([j0[12], j0[13], j0[14], j0[15]]).wrapping_add(block_offset);
        // One tile of keystream at a time: generate, XOR into the payload,
        // and fold the just-produced ciphertext into the GHASH accumulator
        // while it is still in L1 — a single sweep over `data`.
        const TILE: usize = 8 * 16;
        let mut ks = [0u8; TILE];
        let mut done = 0usize;
        while done < data.len() {
            let take = (data.len() - done).min(TILE);
            let blocks = take.div_ceil(16);
            for b in 0..blocks {
                let o = b * 16;
                ks[o..o + 12].copy_from_slice(&j0[..12]);
                counter = counter.wrapping_add(1);
                ks[o + 12..o + 16].copy_from_slice(&counter.to_be_bytes());
            }
            if wide && blocks * 16 >= WIDE_LANES * 16 {
                encrypt_blocks_vaes(round_keys, &mut ks[..blocks * 16]);
            } else {
                encrypt_blocks_impl(round_keys, &mut ks[..blocks * 16]);
            }
            let seg = &mut data[done..done + take];
            let mut words = seg.chunks_exact_mut(16);
            let mut ks_words = ks[..take].chunks_exact(16);
            for (d, k) in words.by_ref().zip(ks_words.by_ref()) {
                let p = d.as_mut_ptr().cast::<__m128i>();
                let x = _mm_xor_si128(_mm_loadu_si128(p), _mm_loadu_si128(k.as_ptr().cast()));
                _mm_storeu_si128(p, x);
            }
            for (d, k) in words.into_remainder().iter_mut().zip(ks_words.remainder()) {
                *d ^= k;
            }
            y = ghash_update_impl(&h, y, seg);
            done += take;
        }
        from_m128(y).reverse_bits()
    }

    /// Fused single-pass seal of one block-aligned CTR region: generates
    /// the keystream (VAES-wide when available), XORs it into `data`, and
    /// folds each just-produced ciphertext tile into a partial GHASH while
    /// it is still hot in cache — one memory sweep instead of a CTR pass
    /// followed by a GHASH pass. Returns the normal-domain partial hash
    /// (zero initial accumulator, no length block), exactly as
    /// [`ghash_segment`] over the resulting ciphertext would. The caller
    /// must have checked [`aes_available`] and [`clmul_available`].
    pub fn ctr_ghash_seal(
        round_keys: &[[u8; 16]],
        key: &ClmulKey,
        j0: &[u8; 16],
        block_offset: u32,
        data: &mut [u8],
    ) -> u128 {
        debug_assert!(aes_available() && clmul_available());
        // SAFETY: gated on `aes_available()` + `clmul_available()` by the
        // caller; the VAES branch is additionally gated on
        // `vaes_available()` here.
        unsafe { ctr_ghash_seal_impl(round_keys, key, j0, block_offset, data, vaes_available()) }
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod portable {
    //! No-op stand-ins for non-x86_64 targets: detection always fails, so
    //! the accelerated entry points are unreachable.

    /// Always `false` off x86_64.
    pub fn aes_available() -> bool {
        false
    }

    /// Always `false` off x86_64.
    pub fn clmul_available() -> bool {
        false
    }

    /// Always `false` off x86_64.
    pub fn vaes_available() -> bool {
        false
    }

    /// No accelerated features off x86_64.
    pub fn cpu_features() -> [(&'static str, bool); 4] {
        [
            ("aes", false),
            ("pclmulqdq", false),
            ("vaes", false),
            ("avx512f", false),
        ]
    }

    /// Unreachable off x86_64 (detection returns `false`).
    pub fn encrypt_blocks(_round_keys: &[[u8; 16]], _data: &mut [u8]) {
        unreachable!("hardware AES path taken without AES-NI support");
    }

    /// Bit-reflected subkey powers; never constructed off x86_64.
    #[derive(Debug, Clone)]
    pub struct ClmulKey;

    impl ClmulKey {
        /// Unreachable off x86_64.
        pub fn new(_powers: [u128; 4]) -> Self {
            unreachable!("clmul GHASH key built without PCLMULQDQ support");
        }
    }

    /// Unreachable off x86_64.
    pub fn ghash(_key: &ClmulKey, _aad: &[u8], _ciphertext: &[u8], _lengths: u128) -> u128 {
        unreachable!("clmul GHASH taken without PCLMULQDQ support");
    }

    /// Unreachable off x86_64.
    pub fn ghash_segment(_key: &ClmulKey, _data: &[u8]) -> u128 {
        unreachable!("clmul GHASH taken without PCLMULQDQ support");
    }

    /// Unreachable off x86_64.
    pub fn gf_mul(_a: u128, _b: u128) -> u128 {
        unreachable!("clmul GF multiply taken without PCLMULQDQ support");
    }

    /// Unreachable off x86_64.
    pub fn ctr_ghash_seal(
        _round_keys: &[[u8; 16]],
        _key: &ClmulKey,
        _j0: &[u8; 16],
        _block_offset: u32,
        _data: &mut [u8],
    ) -> u128 {
        unreachable!("fused CTR+GHASH taken without AES-NI/PCLMULQDQ support");
    }
}

#[cfg(not(target_arch = "x86_64"))]
pub use portable::*;
