//! Property tests for frame mangling: any mutation of a sealed frame —
//! bit flips at arbitrary positions (ciphertext, tag), truncation at any
//! length, AAD tampering — must be rejected as a clean `CryptoError`,
//! never a panic, and must never leave plaintext (or ciphertext) bytes in
//! a buffer the caller can read. Under the sentinel discipline the failed
//! frame still consumes its IV, so an arbitrary fault stream never breaks
//! lockstep and never reuses an IV.

use pipellm_crypto::channel::{ChannelKeys, SecureChannel, SENTINEL_BYTE};
use pipellm_crypto::CryptoError;
use proptest::prelude::*;

/// True if any 8-byte window of `needle` appears in `haystack` — the
/// "plaintext escaped" detector. Windowed rather than whole-slice so even
/// partial leaks trip it.
fn leaks_window_of(haystack: &[u8], needle: &[u8]) -> bool {
    needle
        .windows(8.min(needle.len().max(1)))
        .any(|w| !w.is_empty() && haystack.windows(w.len()).any(|h| h == w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any bit of the sealed frame makes `open` fail cleanly with
    /// the receiver's counter untouched and the output buffer unwritten.
    #[test]
    fn any_bit_flip_is_rejected_without_output(
        seed in any::<u64>(),
        plaintext in proptest::collection::vec(any::<u8>(), 1..256),
        flip_at in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut ch = SecureChannel::new(ChannelKeys::from_seed(seed));
        let mut sealed = ch.host_mut().seal(&plaintext).expect("seal");
        let idx = flip_at.index(sealed.bytes.len());
        sealed.bytes[idx] ^= 1 << bit;
        let mut out = vec![0xAA; 16];
        let err = ch.device_mut().rx_mut().open_message_into(&sealed, &mut out);
        prop_assert!(matches!(err, Err(CryptoError::AuthenticationFailed { expected_iv: 1 })));
        prop_assert_eq!(ch.device().rx().next_iv(), 1, "plain open must not advance");
        prop_assert_eq!(&out, &vec![0xAA; 16], "failed open must not write output");
    }

    /// Truncating the frame at any length — above or below the tag size —
    /// fails cleanly, and the sentinel open leaves zero plaintext bytes
    /// behind while still consuming the IV.
    #[test]
    fn any_truncation_is_rejected_and_sentinelled(
        seed in any::<u64>(),
        plaintext in proptest::collection::vec(any::<u8>(), 24..256),
        cut_at in any::<prop::sample::Index>(),
    ) {
        let mut ch = SecureChannel::new(ChannelKeys::from_seed(seed));
        let mut sealed = ch.host_mut().seal(&plaintext).expect("seal");
        let keep = cut_at.index(sealed.bytes.len()); // strictly shorter
        sealed.bytes.truncate(keep);
        let (buf, outcome) = ch.device_mut().rx_mut().open_owned_or_sentinel(sealed);
        prop_assert!(outcome.is_err(), "truncated frame must be rejected");
        prop_assert!(buf.iter().all(|&b| b == SENTINEL_BYTE), "buffer must be scrubbed");
        prop_assert!(!leaks_window_of(&buf, &plaintext), "plaintext escaped");
        prop_assert_eq!(ch.device().rx().next_iv(), 2, "sentinel open consumes the IV");
    }

    /// Tampering with the associated data (any byte, any bit) is rejected
    /// even when ciphertext and tag are untouched.
    #[test]
    fn aad_tampering_is_rejected(
        seed in any::<u64>(),
        aad in proptest::collection::vec(any::<u8>(), 1..48),
        plaintext in proptest::collection::vec(any::<u8>(), 1..128),
        flip_at in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut ch = SecureChannel::new(ChannelKeys::from_seed(seed));
        let mut sealed = ch
            .host_mut()
            .tx_mut()
            .seal_with_aad(&aad, &plaintext)
            .expect("seal");
        let mut tampered = aad.clone();
        let idx = flip_at.index(tampered.len());
        tampered[idx] ^= 1 << bit;
        sealed.aad = tampered.into();
        let err = ch.device_mut().open(&sealed);
        prop_assert!(matches!(err, Err(CryptoError::AuthenticationFailed { .. })));
    }

    /// Sentinel opens under an arbitrary corrupt/truncate/drop/deliver
    /// fault stream: the channel never panics, never reuses an IV, stays
    /// in lockstep (a clean frame after any prefix of faults opens fine),
    /// and no faulted frame's plaintext ever escapes.
    #[test]
    fn fault_streams_preserve_lockstep_and_leak_nothing(
        seed in any::<u64>(),
        faults in proptest::collection::vec(0u8..4, 1..40),
    ) {
        let mut ch = SecureChannel::new(ChannelKeys::from_seed(seed));
        let mut consumed_ivs = std::collections::HashSet::new();
        for (i, &fault) in faults.iter().enumerate() {
            let secret = vec![i as u8 ^ 0x5A; 64];
            let mut sealed = ch.host_mut().seal(&secret).expect("seal");
            let sent_iv = sealed.iv;
            prop_assert!(consumed_ivs.insert(sent_iv), "sender reused IV {}", sent_iv);
            match fault {
                0 => {
                    // Delivered intact.
                    let opened = ch.device_mut().open(&sealed).expect("authentic frame");
                    prop_assert_eq!(opened, secret);
                }
                1 | 2 => {
                    // Corrupted (1) or truncated (2) in flight.
                    if fault == 1 {
                        let idx = (seed as usize + i) % sealed.bytes.len();
                        sealed.bytes[idx] ^= 1 << (i % 8);
                    } else {
                        let keep = (seed as usize + i) % sealed.bytes.len();
                        sealed.bytes.truncate(keep);
                    }
                    let (buf, outcome) =
                        ch.device_mut().rx_mut().open_owned_or_sentinel(sealed);
                    prop_assert!(outcome.is_err());
                    prop_assert!(!leaks_window_of(&buf, &secret), "plaintext escaped");
                }
                _ => {
                    // Dropped on the wire: receiver burns the IV.
                    let skipped = ch.device_mut().rx_mut().skip();
                    prop_assert_eq!(skipped, sent_iv);
                }
            }
            prop_assert_eq!(
                ch.host().tx().next_iv(),
                ch.device().rx().next_iv(),
                "endpoints fell out of lockstep"
            );
        }
        // After the whole fault stream, ordinary traffic still flows.
        let finale = ch.host_mut().seal(b"after the storm").expect("seal");
        prop_assert_eq!(
            ch.device_mut().open(&finale).expect("lockstep held"),
            b"after the storm"
        );
    }
}
