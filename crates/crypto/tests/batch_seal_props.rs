//! Property tests for the fused batch-seal path: a [`AesGcm::seal_batch`]
//! over N messages must be **bit-identical** — ciphertext, tag, and IV
//! sequence — to N individual seals, on the hardware path (AES-NI/VAES
//! where present), on the software path, and through the ganged grouping
//! (forced gang width + floored crossover, so the grouped submission runs
//! even on a single-core host). The channel-level batch must consume
//! consecutive IVs all-or-nothing, and a corrupted message mid-batch must
//! sentinel cleanly without desyncing its neighbours.

use pipellm_crypto::channel::{ChannelKeys, SecureChannel, SENTINEL_BYTE};
use pipellm_crypto::engine::CryptoEngine;
use pipellm_crypto::gcm::{AesGcm, BatchSealMsg};
use proptest::prelude::*;
use std::sync::Arc;

/// Per-message inputs: payload plus AAD.
fn messages(max: usize) -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(any::<u8>(), 0..300),
            proptest::collection::vec(any::<u8>(), 0..24),
        ),
        1..max,
    )
}

/// Distinct nonce for message `i` of a run (counter-IV shape: tag || BE
/// counter, as the channel layer builds them).
fn nonce_at(i: usize) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[..4].copy_from_slice(b"prop");
    n[4..].copy_from_slice(&(i as u64).to_be_bytes());
    n
}

/// Seals `msgs` twice — individually and as one batch — on the given
/// context pair and asserts bit-identical `ciphertext || tag` per message.
fn assert_batch_identical(individual: &AesGcm, batched: &AesGcm, msgs: &[(Vec<u8>, Vec<u8>)]) {
    let mut expect: Vec<Vec<u8>> = Vec::with_capacity(msgs.len());
    for (i, (pt, aad)) in msgs.iter().enumerate() {
        let mut buf = pt.clone();
        individual.seal_vec(&nonce_at(i), aad, &mut buf);
        expect.push(buf);
    }
    let mut bufs: Vec<Vec<u8>> = msgs.iter().map(|(pt, _)| pt.clone()).collect();
    let mut batch: Vec<BatchSealMsg> = bufs
        .iter_mut()
        .zip(msgs)
        .enumerate()
        .map(|(i, (buf, (_, aad)))| BatchSealMsg {
            nonce: nonce_at(i),
            aad,
            buf,
        })
        .collect();
    batched.seal_batch(&mut batch);
    for (i, (got, want)) in bufs.iter().zip(&expect).enumerate() {
        prop_assert_eq!(got, want, "message {} diverged", i);
    }
}

fn key_of(seed: u64) -> [u8; 32] {
    let mut key = [0u8; 32];
    for (i, b) in key.iter_mut().enumerate() {
        *b = (seed.rotate_left((i % 64) as u32) as u8) ^ i as u8;
    }
    key
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fused batch == N individual seals on the dispatched (hardware
    /// where available) path, with the gang forced on so the grouped
    /// submission really runs.
    #[test]
    fn batch_is_bit_identical_on_the_dispatched_path(
        seed in any::<u64>(),
        msgs in messages(12),
    ) {
        let key = key_of(seed);
        let individual = AesGcm::new(&key).expect("32-byte key");
        let engine = Arc::new(CryptoEngine::with_gang_width(3, 3));
        let mut batched = AesGcm::new(&key).expect("32-byte key").with_engine(engine);
        batched.set_par_threshold(1); // gang even tiny batches
        assert_batch_identical(&individual, &batched, &msgs);
    }

    /// Fused batch == N individual seals on the portable software path.
    #[test]
    fn batch_is_bit_identical_on_the_software_path(
        seed in any::<u64>(),
        msgs in messages(8),
    ) {
        let key = key_of(seed);
        let individual = AesGcm::new(&key).expect("32-byte key").software_only();
        let engine = Arc::new(CryptoEngine::with_gang_width(2, 2));
        let mut batched = AesGcm::new(&key)
            .expect("32-byte key")
            .software_only()
            .with_engine(engine);
        batched.set_par_threshold(1);
        assert_batch_identical(&individual, &batched, &msgs);
    }

    /// Channel-level batch: `seal_batch_prepared` emits the same frames
    /// at the same consecutive IVs as N sequential `seal_prepared` calls,
    /// and the receiver opens them in lockstep.
    #[test]
    fn channel_batch_matches_sequential_seals_and_iv_sequence(
        seed in any::<u64>(),
        msgs in messages(8),
    ) {
        let mut one = SecureChannel::new(ChannelKeys::from_seed(seed));
        let mut many = SecureChannel::new(ChannelKeys::from_seed(seed));
        let mut expect = Vec::with_capacity(msgs.len());
        for (pt, aad) in &msgs {
            let aad: Arc<[u8]> = aad.clone().into();
            expect.push(one.host_mut().tx_mut().seal_prepared(aad, pt.clone()).expect("seal"));
        }
        let prepared: Vec<(Arc<[u8]>, Vec<u8>)> = msgs
            .iter()
            .map(|(pt, aad)| (aad.clone().into(), pt.clone()))
            .collect();
        let start = many.host().tx().next_iv();
        let sealed = many
            .host_mut()
            .tx_mut()
            .seal_batch_prepared(prepared)
            .expect("batch seal");
        prop_assert_eq!(sealed.len(), expect.len());
        for (i, (got, want)) in sealed.iter().zip(&expect).enumerate() {
            prop_assert_eq!(got.iv, want.iv, "IV sequence diverged at {}", i);
            prop_assert_eq!(got.iv, start + i as u64, "IVs must be consecutive");
            prop_assert_eq!(&got.bytes, &want.bytes, "frame {} diverged", i);
        }
        prop_assert_eq!(
            many.host().tx().next_iv(),
            start + msgs.len() as u64,
            "batch consumes exactly its run of IVs"
        );
        // The receiver walks the batch in lockstep.
        for (sealed, (pt, _)) in sealed.iter().zip(&msgs) {
            let opened = many.device_mut().rx_mut().open(sealed).expect("authentic");
            prop_assert_eq!(&opened, pt);
        }
    }

    /// A frame corrupted mid-batch sentinels cleanly: earlier and later
    /// messages of the same batch still authenticate, the damaged one
    /// scrubs to sentinel bytes, and the IV stream never desyncs.
    #[test]
    fn corrupted_message_mid_batch_sentinels_without_desync(
        seed in any::<u64>(),
        msgs in messages(8),
        victim in any::<prop::sample::Index>(),
        flip_at in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut ch = SecureChannel::new(ChannelKeys::from_seed(seed));
        let prepared: Vec<(Arc<[u8]>, Vec<u8>)> = msgs
            .iter()
            .map(|(pt, aad)| (aad.clone().into(), pt.clone()))
            .collect();
        let mut sealed = ch
            .host_mut()
            .tx_mut()
            .seal_batch_prepared(prepared)
            .expect("batch seal");
        let v = victim.index(sealed.len());
        let idx = flip_at.index(sealed[v].bytes.len());
        sealed[v].bytes[idx] ^= 1 << bit;
        let rx_start = ch.device().rx().next_iv();
        for (i, frame) in sealed.into_iter().enumerate() {
            let (buf, outcome) = ch.device_mut().rx_mut().open_owned_or_sentinel(frame);
            if i == v {
                prop_assert!(outcome.is_err(), "damaged frame must be rejected");
                prop_assert!(
                    buf.iter().all(|&b| b == SENTINEL_BYTE),
                    "damaged frame must scrub to sentinel bytes"
                );
            } else {
                prop_assert!(outcome.is_ok(), "sibling frame {} must authenticate", i);
                prop_assert_eq!(&buf, &msgs[i].0, "sibling frame {} payload", i);
            }
            prop_assert_eq!(
                ch.device().rx().next_iv(),
                rx_start + i as u64 + 1,
                "every frame — damaged or not — consumes exactly its IV"
            );
        }
    }
}
