//! Property tests for the multi-tenant session layer: cross-session
//! isolation and per-session IV discipline under randomized interleaved
//! scheduling.

use pipellm_crypto::session::{SessionId, SessionManager};
use pipellm_crypto::CryptoError;
use proptest::prelude::*;

/// A schedule step: which session seals next, and a payload byte.
fn schedule(sessions: u64) -> impl Strategy<Value = Vec<(u64, u8)>> {
    proptest::collection::vec((0..sessions, any::<u8>()), 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two sessions' sealed messages never cross-open: whatever the
    /// interleaving, ciphertext sealed under one session fails
    /// authentication under every other session — and still opens under
    /// its own (wrong key/IV always fails, right key/IV always works).
    #[test]
    fn sealed_messages_never_cross_open(steps in schedule(3), seed in any::<u64>()) {
        let mut mgr = SessionManager::from_seed(seed);
        let ids: Vec<SessionId> = (0..3).map(|_| mgr.open()).collect();
        for (who, byte) in steps {
            let payload = vec![byte; 32];
            let sealed = mgr
                .channel_mut(ids[who as usize])
                .unwrap()
                .host_mut()
                .seal(&payload)
                .unwrap();
            for (other_idx, &other) in ids.iter().enumerate() {
                if other_idx == who as usize {
                    continue;
                }
                // Probe against a clone so the failed attempt cannot
                // disturb the victim session's live receiver state.
                let mut probe = mgr.channel(other).unwrap().clone();
                let err = probe.device_mut().open(&sealed);
                prop_assert!(
                    matches!(err, Err(CryptoError::AuthenticationFailed { .. })),
                    "cross-session open must fail: {err:?}"
                );
            }
            let opened = mgr
                .channel_mut(ids[who as usize])
                .unwrap()
                .device_mut()
                .open(&sealed)
                .unwrap();
            prop_assert_eq!(opened, payload);
        }
    }

    /// Per-session IV sequences stay gapless under interleaved
    /// scheduling: no matter how sessions interleave, each session's
    /// consumed IVs are exactly 1, 2, 3, … with no gap and no repeat, and
    /// each receiver opens every message in order.
    #[test]
    fn per_session_iv_sequences_stay_gapless(steps in schedule(4), seed in any::<u64>()) {
        let mut mgr = SessionManager::from_seed(seed);
        let ids: Vec<SessionId> = (0..4).map(|_| mgr.open()).collect();
        let mut expected_iv = vec![1u64; ids.len()];
        for (who, byte) in steps {
            let who = who as usize;
            let ch = mgr.channel_mut(ids[who]).unwrap();
            let sealed = ch.host_mut().seal(&[byte]).unwrap();
            prop_assert_eq!(
                sealed.iv, expected_iv[who],
                "session {} consumed IV {} but the gapless sequence expected {}",
                who, sealed.iv, expected_iv[who]
            );
            // Deliver immediately: the device-side counter must agree.
            prop_assert_eq!(ch.device_mut().open(&sealed).unwrap(), vec![byte]);
            expected_iv[who] += 1;
            prop_assert_eq!(ch.host().tx().next_iv(), expected_iv[who]);
            prop_assert_eq!(ch.device().rx().next_iv(), expected_iv[who]);
        }
        // Final counters reflect exactly the per-session seal counts.
        for (idx, &id) in ids.iter().enumerate() {
            let ch = mgr.channel(id).unwrap();
            prop_assert_eq!(ch.host().tx().next_iv(), expected_iv[idx]);
        }
    }

    /// Epochs are as isolated as sessions: after a rekey, every message
    /// sealed under the old epoch fails, and the fresh channel starts a
    /// gapless IV sequence from 1 again.
    #[test]
    fn rekey_isolates_epochs(count in 1usize..20, seed in any::<u64>()) {
        let mut mgr = SessionManager::from_seed(seed);
        let id = mgr.open();
        let mut old = Vec::new();
        for i in 0..count {
            let ch = mgr.channel_mut(id).unwrap();
            old.push(ch.host_mut().seal(&[i as u8]).unwrap());
        }
        mgr.rekey(id).unwrap();
        let ch = mgr.channel_mut(id).unwrap();
        for sealed in &old {
            prop_assert!(ch.device_mut().open(sealed).is_err());
        }
        let fresh = ch.host_mut().seal(b"fresh").unwrap();
        prop_assert_eq!(fresh.iv, 1);
        prop_assert_eq!(ch.device_mut().open(&fresh).unwrap(), b"fresh".to_vec());
    }
}

/// The IV-exhaustion → rekey path end to end: a session driven into the
/// headroom surfaces `IvExhausted` on the next seal, `SessionManager::rekey`
/// bumps the epoch and restarts the counters, and the fresh epoch runs a
/// gapless IV sequence from 1 with both endpoints in lockstep.
#[test]
fn exhausted_session_rekeys_and_continues_gapless() {
    use pipellm_crypto::channel::IV_LIMIT;

    let mut mgr = SessionManager::from_seed(0xdead_beef);
    let id = mgr.open_with_initial_ivs(IV_LIMIT - 3, 1);
    assert_eq!(mgr.epoch(id), Some(0));

    // Drain the last usable IVs; every seal lands in lockstep.
    let ch = mgr.channel_mut(id).unwrap();
    for i in 0..3u8 {
        let sealed = ch.host_mut().seal(&[i]).unwrap();
        assert_eq!(sealed.iv, IV_LIMIT - 3 + u64::from(i));
        ch.device_mut().open(&sealed).unwrap();
    }

    // The counter now sits at the limit: sealing into the headroom fails
    // without advancing anything.
    let err = mgr
        .channel_mut(id)
        .unwrap()
        .host_mut()
        .seal(b"x")
        .unwrap_err();
    assert!(matches!(err, CryptoError::IvExhausted { iv } if iv == IV_LIMIT));
    assert_eq!(mgr.channel(id).unwrap().host().tx().remaining_ivs(), 0);
    assert_eq!(mgr.needs_rekey(id), Some(true));

    // Rekey: epoch bump, fresh keys, counters restarted.
    assert_eq!(mgr.rekey(id), Some(1));
    assert_eq!(mgr.epoch(id), Some(1));

    // The fresh epoch issues a gapless sequence from IV 1, and both
    // endpoints advance together.
    let ch = mgr.channel_mut(id).unwrap();
    for i in 1..=16u64 {
        let sealed = ch.host_mut().seal(&i.to_le_bytes()).unwrap();
        assert_eq!(sealed.iv, i, "per-epoch IVs are gapless");
        assert_eq!(ch.device_mut().open(&sealed).unwrap(), i.to_le_bytes());
        assert_eq!(ch.host().tx().next_iv(), i + 1);
        assert_eq!(ch.device().rx().next_iv(), i + 1, "endpoints in lockstep");
    }
    assert_eq!(mgr.needs_rekey(id), Some(false));
}
