//! Property tests for the multi-tenant session layer: cross-session
//! isolation and per-session IV discipline under randomized interleaved
//! scheduling.

use pipellm_crypto::session::{SessionId, SessionManager};
use pipellm_crypto::CryptoError;
use proptest::prelude::*;

/// A schedule step: which session seals next, and a payload byte.
fn schedule(sessions: u64) -> impl Strategy<Value = Vec<(u64, u8)>> {
    proptest::collection::vec((0..sessions, any::<u8>()), 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two sessions' sealed messages never cross-open: whatever the
    /// interleaving, ciphertext sealed under one session fails
    /// authentication under every other session — and still opens under
    /// its own (wrong key/IV always fails, right key/IV always works).
    #[test]
    fn sealed_messages_never_cross_open(steps in schedule(3), seed in any::<u64>()) {
        let mut mgr = SessionManager::from_seed(seed);
        let ids: Vec<SessionId> = (0..3).map(|_| mgr.open()).collect();
        for (who, byte) in steps {
            let payload = vec![byte; 32];
            let sealed = mgr
                .channel_mut(ids[who as usize])
                .unwrap()
                .host_mut()
                .seal(&payload)
                .unwrap();
            for (other_idx, &other) in ids.iter().enumerate() {
                if other_idx == who as usize {
                    continue;
                }
                // Probe against a clone so the failed attempt cannot
                // disturb the victim session's live receiver state.
                let mut probe = mgr.channel(other).unwrap().clone();
                let err = probe.device_mut().open(&sealed);
                prop_assert!(
                    matches!(err, Err(CryptoError::AuthenticationFailed { .. })),
                    "cross-session open must fail: {err:?}"
                );
            }
            let opened = mgr
                .channel_mut(ids[who as usize])
                .unwrap()
                .device_mut()
                .open(&sealed)
                .unwrap();
            prop_assert_eq!(opened, payload);
        }
    }

    /// Per-session IV sequences stay gapless under interleaved
    /// scheduling: no matter how sessions interleave, each session's
    /// consumed IVs are exactly 1, 2, 3, … with no gap and no repeat, and
    /// each receiver opens every message in order.
    #[test]
    fn per_session_iv_sequences_stay_gapless(steps in schedule(4), seed in any::<u64>()) {
        let mut mgr = SessionManager::from_seed(seed);
        let ids: Vec<SessionId> = (0..4).map(|_| mgr.open()).collect();
        let mut expected_iv = vec![1u64; ids.len()];
        for (who, byte) in steps {
            let who = who as usize;
            let ch = mgr.channel_mut(ids[who]).unwrap();
            let sealed = ch.host_mut().seal(&[byte]).unwrap();
            prop_assert_eq!(
                sealed.iv, expected_iv[who],
                "session {} consumed IV {} but the gapless sequence expected {}",
                who, sealed.iv, expected_iv[who]
            );
            // Deliver immediately: the device-side counter must agree.
            prop_assert_eq!(ch.device_mut().open(&sealed).unwrap(), vec![byte]);
            expected_iv[who] += 1;
            prop_assert_eq!(ch.host().tx().next_iv(), expected_iv[who]);
            prop_assert_eq!(ch.device().rx().next_iv(), expected_iv[who]);
        }
        // Final counters reflect exactly the per-session seal counts.
        for (idx, &id) in ids.iter().enumerate() {
            let ch = mgr.channel(id).unwrap();
            prop_assert_eq!(ch.host().tx().next_iv(), expected_iv[idx]);
        }
    }

    /// Epochs are as isolated as sessions: after a rekey, every message
    /// sealed under the old epoch fails, and the fresh channel starts a
    /// gapless IV sequence from 1 again.
    #[test]
    fn rekey_isolates_epochs(count in 1usize..20, seed in any::<u64>()) {
        let mut mgr = SessionManager::from_seed(seed);
        let id = mgr.open();
        let mut old = Vec::new();
        for i in 0..count {
            let ch = mgr.channel_mut(id).unwrap();
            old.push(ch.host_mut().seal(&[i as u8]).unwrap());
        }
        mgr.rekey(id).unwrap();
        let ch = mgr.channel_mut(id).unwrap();
        for sealed in &old {
            prop_assert!(ch.device_mut().open(sealed).is_err());
        }
        let fresh = ch.host_mut().seal(b"fresh").unwrap();
        prop_assert_eq!(fresh.iv, 1);
        prop_assert_eq!(ch.device_mut().open(&fresh).unwrap(), b"fresh".to_vec());
    }
}
