//! A vendored, dependency-free subset of the `proptest` crate.
//!
//! This repository must build hermetically (no network, no crates.io), so
//! the property tests run against this API-compatible shim instead of the
//! real `proptest`. The shim keeps the parts the test suite uses:
//!
//! - the [`Strategy`] trait with `prop_map`, ranges, tuples, [`Just`],
//!   `prop_oneof!`, `collection::vec`, and fixed-size arrays;
//! - [`any`] for primitive integers and [`sample::Index`];
//! - the [`proptest!`], [`prop_assert!`], and [`prop_assert_eq!`] macros;
//! - [`ProptestConfig::with_cases`].
//!
//! What it deliberately does **not** do is shrinking: a failing case panics
//! with its deterministic case number instead of reducing. Generation is
//! fully deterministic — the RNG is seeded from the test name and case
//! index, so failures reproduce exactly across runs and machines.

use std::ops::Range;

/// Deterministic SplitMix64 generator backing all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound.max(1)
    }
}

/// A value generator. The real proptest separates strategies from value
/// trees to support shrinking; the shim generates values directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u8>()`, `any::<sample::Index>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the index against a collection of `len` elements.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing a `Vec` whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, min..max)` — a vector of `element` values.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`proptest::array`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy producing `[S::Value; N]`.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),*) => {$(
            /// An array of independently generated elements.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        )*};
    }

    uniform_fns!(uniform12 => 12, uniform16 => 16, uniform32 => 32);
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives the cases of one property; constructed by [`proptest!`].
pub struct TestRunner {
    config: ProptestConfig,
    name_seed: u64,
    case: u64,
}

impl TestRunner {
    /// Creates a runner for the named property.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            config,
            name_seed: seed,
            case: 0,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// RNG for the next case.
    pub fn next_rng(&mut self) -> TestRng {
        self.case += 1;
        TestRng::from_seed(self.name_seed ^ self.case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// The 1-based case currently being generated (for failure messages).
    pub fn current_case(&self) -> u64 {
        self.case
    }
}

/// Defines property tests: each `fn` runs `cases` times over generated
/// inputs. Failures panic with the deterministic case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            for _ in 0..runner.cases() {
                let mut rng = runner.next_rng();
                let case = runner.current_case();
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let run = || $body;
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest: property {} failed at deterministic case {case}",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// `assert!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>,)+
        ])
    };
}

/// Shorthand module mirroring `proptest::prop`.
pub mod prop {
    pub use crate::sample;
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u8..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u32..1000, 1..50);
        let a: Vec<u32> = Strategy::generate(&strat, &mut TestRng::from_seed(9));
        let b: Vec<u32> = Strategy::generate(&strat, &mut TestRng::from_seed(9));
        assert_eq!(a, b);
    }

    #[test]
    fn oneof_covers_all_options() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::from_seed(5);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works(x in 0u64..10, v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 4);
        }
    }
}
