//! A vendored, dependency-free subset of the `criterion` benchmarking API.
//!
//! This repository builds hermetically (no crates.io), so the benches run
//! against this shim: same source-level API (`Criterion`, groups,
//! `iter`/`iter_batched`, the `criterion_group!`/`criterion_main!` macros),
//! much simpler engine. Each benchmark is measured as `sample_size` samples
//! of a batch sized to take roughly [`TARGET_SAMPLE`]; the reported figure
//! is the median sample, printed as ns/iter plus MB/s when a byte
//! throughput is configured.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock duration of one measured sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Cap on the total measuring time of one benchmark.
const MAX_BENCH_TIME: Duration = Duration::from_secs(3);

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// A parameterized benchmark identifier (`group/parameter`).
pub struct BenchmarkId {
    param: String,
}

impl BenchmarkId {
    /// An id rendering as the parameter alone.
    pub fn from_parameter<P: fmt::Display>(param: P) -> Self {
        BenchmarkId {
            param: param.to_string(),
        }
    }
}

/// One benchmark's measurement result.
#[derive(Debug, Clone, Copy)]
pub struct Sampled {
    /// Median time per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured in total.
    pub iterations: u64,
}

/// Measures closures; handed to benchmark functions.
pub struct Bencher {
    sample_size: usize,
    result: Option<Sampled>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            result: None,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a batch size hitting TARGET_SAMPLE.
        let start = Instant::now();
        black_box(routine());
        let est = start.elapsed().max(Duration::from_nanos(10));
        let batch = (TARGET_SAMPLE.as_nanos() / est.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        let bench_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() / batch as f64);
            total_iters += batch;
            if bench_start.elapsed() > MAX_BENCH_TIME {
                break;
            }
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        self.result = Some(Sampled {
            ns_per_iter: median * 1e9,
            iterations: total_iters,
        });
    }

    /// Times `routine` on inputs produced by `setup`; only `routine` is
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        let bench_start = Instant::now();
        for _ in 0..self.sample_size.max(1) {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            samples.push(t.elapsed().as_secs_f64());
            total_iters += 1;
            if bench_start.elapsed() > MAX_BENCH_TIME {
                break;
            }
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        self.result = Some(Sampled {
            ns_per_iter: median * 1e9,
            iterations: total_iters,
        });
    }
}

/// How `iter_batched` amortizes setup; accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

fn report(name: &str, result: Option<Sampled>, throughput: Option<Throughput>) {
    let Some(sampled) = result else {
        println!("{name:<48} (no measurement)");
        return;
    };
    let per_iter = sampled.ns_per_iter;
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mbps = bytes as f64 / (per_iter / 1e9) / (1024.0 * 1024.0);
            format!("  {mbps:>10.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / (per_iter / 1e9);
            format!("  {eps:>10.1} elem/s")
        }
        None => String::new(),
    };
    println!("{name:<48} {per_iter:>14.1} ns/iter{rate}");
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&name.into(), bencher.result, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark over an explicit input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.criterion.sample_size);
        f(&mut bencher, input);
        report(
            &format!("{}/{}", self.name, id.param),
            bencher.result,
            self.throughput,
        );
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        label: N,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.criterion.sample_size);
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, label.into()),
            bencher.result,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default().sample_size(3);
        // Must not panic, and must finish quickly for a trivial closure.
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_render_throughput() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(
            BenchmarkId::from_parameter(1024),
            &vec![0u8; 1024],
            |b, v| {
                b.iter(|| black_box(v.iter().map(|&x| x as u64).sum::<u64>()));
            },
        );
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }
}
