//! Quickstart: the speculative encryption pipeline on a toy swap loop.
//!
//! Swaps three "KV cache" chunks out of the simulated GPU and back in LIFO
//! order, repeatedly — the vLLM pattern of §5.1 — and shows how PipeLLM's
//! predictor locks on: after the first episode, swap-ins are served from
//! pre-encrypted ciphertext (`spec_hits`), with encryption off the critical
//! path.
//!
//! Run with: `cargo run --example quickstart`

use pipellm::{PipeLlmConfig, PipeLlmRuntime};
use pipellm_gpu::memory::Payload;
use pipellm_gpu::runtime::GpuRuntime;
use pipellm_gpu::GpuError;
use pipellm_sim::time::SimTime;

const CHUNK: u64 = 256 * 1024; // ≥ the 128 KiB swap-classification threshold

fn main() -> Result<(), GpuError> {
    let mut rt = PipeLlmRuntime::new(PipeLlmConfig {
        device_capacity: 1 << 30, // a 1 GiB toy GPU
        ..PipeLlmConfig::default()
    });

    let mut now = SimTime::ZERO;
    for episode in 0..5u8 {
        // Swap out three chunks (think: KV cache of three preempted
        // requests). The memcpy returns immediately — decryption runs in
        // the background (§5.4).
        let mut chunks = Vec::new();
        for i in 0..3u8 {
            let dev = rt.alloc_device(CHUNK)?;
            let host = rt.alloc_host(Payload::Real(vec![episode * 8 + i; CHUNK as usize]));
            now = rt.memcpy_dtoh(now, host, dev)?;
            rt.free_device(dev)?;
            chunks.push(host);
        }
        now = rt.synchronize(now);

        // Reload in LIFO order (vLLM: last evicted, first resumed). After
        // the first episode the predictor has elected the LIFO pattern and
        // pre-encrypted these chunks at speculated IVs.
        for host in chunks.iter().rev() {
            let dev = rt.alloc_device(CHUNK)?;
            now = rt.memcpy_htod(now, dev, *host)?;
            now = rt.synchronize(now);
            rt.free_device(dev)?;
        }
        for host in chunks {
            rt.free_host(host.addr)?;
        }

        println!(
            "episode {episode}: pattern={:?}  {}",
            rt.predictor().pattern(),
            rt.spec_stats()
        );
    }

    let stats = rt.spec_stats();
    println!("\nfinal: {stats}");
    assert!(
        stats.spec_hits > 0,
        "speculation should have hit after warmup"
    );
    println!(
        "{} of {} pipelined swap-ins were served from pre-encrypted ciphertext",
        stats.spec_hits + stats.reorders,
        stats.spec_hits + stats.reorders + stats.nop_recoveries + stats.relinquishes,
    );
    Ok(())
}
