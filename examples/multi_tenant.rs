//! Multi-tenant quickstart: four tenants over one PipeLLM runtime.
//!
//! Each tenant owns a session — its own channel keys, IV counters,
//! predictor, and speculation queue — while all four contend for the same
//! crypto workers, PCIe link, and device memory. The driver interleaves
//! their Poisson arrivals; per-session speculation still hides the
//! encryption for every tenant, and every session's channel counters end
//! in lockstep.
//!
//! Run with: `cargo run --release --example multi_tenant`

use pipellm_repro::gpu::runtime::SessionedRuntime;
use pipellm_repro::runtime::{PipeLlmConfig, PipeLlmRuntime};
use pipellm_repro::serving::{MultiTenantDriver, TenantSpec};

fn main() {
    let rt = PipeLlmRuntime::new(PipeLlmConfig {
        device_capacity: 8_000_000_000,
        crypto_threads: 2,
        ..PipeLlmConfig::default()
    });

    let mut driver = MultiTenantDriver::new(rt);
    for i in 0..4u64 {
        // Four tenants with different arrival rates and working sets.
        let spec = TenantSpec::new(2.0 + i as f64)
            .requests(24)
            .working_set(2 + i as usize % 3, 512 * 1024)
            .seed(42 + i);
        let session = driver.add_tenant(spec);
        println!("tenant {i} -> {session}");
    }

    let report = driver.run().expect("multi-tenant run");
    println!(
        "\nsystem: {}  (finished at {})",
        report.system, report.finished_at
    );
    for (i, t) in report.tenants.iter().enumerate() {
        println!(
            "tenant {i} [{}]: {} requests, mean latency {:.3} ms, \
             p99 {:.3} ms, counters {:?}",
            t.session,
            t.completed,
            t.mean_latency_s * 1e3,
            t.p99_latency_s * 1e3,
            t.counters,
        );
    }
    report
        .verify_lockstep()
        .expect("channel counters in lockstep");
    println!("all sessions in lockstep ✓");

    // Per-session speculation accounting lives on the concrete runtime.
    let rt = driver.into_runtime();
    for sid in rt.session_ids() {
        if let Some(stats) = rt.session_spec_stats(sid) {
            println!("{sid}: {stats}");
        }
    }
}
