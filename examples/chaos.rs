//! Chaos quickstart: a four-stage encrypted pipeline surviving a 5%
//! fault rate.
//!
//! A seeded [`ChaosInjector`] is shared across every device context and
//! edge. In flight, it flips bits in sealed AES-GCM frames, truncates
//! them, and drops them outright; at the stage level it stalls and kills
//! executors; at iteration boundaries it churns the serving session. The
//! recovery protocol absorbs all of it:
//!
//! - a mangled frame fails authentication at the receiver, which scrubs
//!   the buffer to sentinel bytes and **still consumes the IV** — both
//!   endpoints stay in lockstep and no plaintext ever escapes;
//! - the orchestrator retries the transfer at a fresh IV after a
//!   jittered exponential backoff, bounded by the retry budget;
//! - hung stages are cut short by the per-op timeout; killed stages
//!   restart and force-rekey their adjacent edges before traffic resumes.
//!
//! The run finishes bit-exact with its fault-free twin — chaos costs
//! time, never correctness.
//!
//! Run with: `cargo run --release --example chaos`

use pipellm_repro::chaos::{ChaosInjector, FaultPlan};
use pipellm_repro::serving::pipeline::{PipelineConfig, PipelineEngine, PipelineSystem};
use pipellm_repro::serving::ServingEngine;
use std::sync::Arc;

fn main() {
    let base = PipelineConfig {
        stages: 4,
        layers: 16,
        micro_batches: 6,
        iterations: 4,
        system: PipelineSystem::PipeLlm,
        ..PipelineConfig::default()
    };

    // The fault-free twin: the bit-exactness witness and the clean clock.
    let mut clean = PipelineEngine::new(base.clone());
    let clean_report = clean.run_to_completion().expect("clean run");

    // 5% total fault rate: half of it mangling sealed frames in flight
    // (50% bit flips / 30% truncations / 20% drops of that share), the
    // rest split across stage hangs/kills and session churn/rekey races.
    let chaos = Arc::new(ChaosInjector::new(
        FaultPlan::new(7)
            .with_frame_rate(0.05)
            .with_stage_rate(0.025)
            .with_session_rate(0.025),
    ));
    let mut engine = PipelineEngine::new(PipelineConfig {
        chaos: Some(Arc::clone(&chaos)),
        ..base
    });
    let report = engine.run_to_completion().expect("chaotic run");

    println!("{report}");
    println!("  injected : {}", chaos.stats());
    println!("  recovery : {}", engine.resilience());

    assert!(
        chaos.stats().total() > 0,
        "the demo must actually be under fire"
    );
    assert_eq!(
        engine.outputs(),
        clean.outputs(),
        "recovery must restore every frame bit-exactly"
    );
    engine
        .verify_edges()
        .expect("every edge's IV counters end in lockstep");
    let slowdown = report.finished_at.as_secs_f64() / clean_report.finished_at.as_secs_f64();
    println!(
        "survived 5% faults bit-exact, edges in lockstep, {:.2}x the clean runtime ✓",
        slowdown
    );
}
