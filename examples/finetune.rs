//! Confidential LoRA fine-tuning: a PEFT/DeepSpeed-like engine training
//! OPT-30B with base-layer offloading and optimizer exchange.
//!
//! The workload of the paper's Figures 3c and 7c. Fine-tuning streams base
//! layers forward *and backward* every step — a palindromic repetitive
//! pattern that needs the predictor's bigram context — and swaps the LoRA
//! gradient/adapter exchange through host memory, where asynchronous
//! decryption (§5.4) keeps the optimizer off the critical path.
//!
//! Run with: `cargo run --release --example finetune`

use pipellm_bench::runners::{run_peft, Scale};
use pipellm_bench::table::overhead_pct;
use pipellm_bench::System;
use pipellm_llm::ModelSpec;

fn main() {
    for model in [ModelSpec::opt_30b(), ModelSpec::opt_13b()] {
        println!(
            "LoRA fine-tuning {} (ultrachat-like, one short epoch)\n",
            model.name
        );
        let mut baseline = 0.0;
        for system in [System::cc_off(), System::cc(), System::pipellm(8)] {
            let report = run_peft(&system, model.clone(), Scale::Quick, 99);
            if matches!(system, System::CcOff) {
                baseline = report.sequences_per_sec;
            }
            println!(
                "{:<8}  {:.3} sequences/s ({:+.1}% vs w/o CC)  GPU stall {:.1?}",
                system.label(),
                report.sequences_per_sec,
                -overhead_pct(baseline, report.sequences_per_sec),
                report.gpu_io_stall,
            );
        }
        println!();
    }
    println!(
        "The paper reports a 36.2% (OPT-30B) / 14.0% (OPT-13B) drop under CC; \
         PipeLLM recovers nearly all of it. The smaller model has less memory \
         pressure, hence less I/O and less overhead (§3, case study 3)."
    );
}
