//! Encrypted paged KV-cache swapping, end to end.
//!
//! A vLLM-style engine under KV pressure evicts request groups through the
//! sealed swap pipeline: each group's KV moves as pages sealed by the
//! device at consecutive session IVs, the staging destinations stay
//! access-revoked while background opens run off the critical path, and
//! predicted reloads commit pre-encrypted ciphertext. This example shows
//! both views:
//!
//! 1. the mechanism, on raw runtime calls with real bytes — ciphertext at
//!    rest, fault-forced synchronous decryption, bit-exact recovery;
//! 2. the workload, with a sessioned `VllmEngine` serving a ShareGPT-like
//!    trace and reporting the pipeline's hit rates.
//!
//! Run with: `cargo run --release --example kv_cache_swap`

use pipellm_repro::gpu::memory::Payload;
use pipellm_repro::gpu::runtime::{GpuRuntime, SessionedRuntime};
use pipellm_repro::llm::ModelSpec;
use pipellm_repro::runtime::{PipeLlmConfig, PipeLlmRuntime};
use pipellm_repro::serving::{VllmConfig, VllmEngine};
use pipellm_repro::sim::time::SimTime;
use pipellm_repro::workloads::{Dataset, TraceConfig};

const CHUNK: u64 = 256 * 1024;

/// Recognizable fill byte for KV page `i`.
const fn page_byte(i: u8) -> u8 {
    0xa0 + i
}

fn mechanism() {
    println!("== mechanism: sealed swap-out, revoked pages, deferred opens ==");
    let mut rt = PipeLlmRuntime::new(PipeLlmConfig {
        device_capacity: 1 << 30,
        ..PipeLlmConfig::default()
    });

    // Two KV pages on the device, about to be evicted as one group.
    let mut pairs = Vec::new();
    for i in 0..2u8 {
        let dev = rt.alloc_device(CHUNK).expect("device page");
        rt.context_mut()
            .device_memory_mut()
            .store(dev, Payload::Real(vec![page_byte(i); CHUNK as usize]))
            .expect("seed device page");
        let host = rt.alloc_host(Payload::Real(vec![0u8; CHUNK as usize]));
        pairs.push((host, dev));
    }
    let t = rt.kv_swap_out(SimTime::ZERO, &pairs).expect("swap out");
    println!("swap-out returned at {t} (before any decryption ran)");

    // At rest, the authoritative bytes are genuine AES-GCM ciphertext.
    let ct = rt
        .active_state()
        .kv_pipeline()
        .ciphertext_of(pairs[0].0)
        .expect("pending block");
    println!(
        "page 0 at rest: {} ciphertext bytes (plaintext {}), first bytes {:02x?}",
        ct.len(),
        CHUNK,
        &ct[..4]
    );

    // Touching the page before the background open lands faults and
    // forces a synchronous decryption; the plaintext is bit-exact.
    let readable = rt.host_read(t, pairs[0].0).expect("fault-forced open");
    let payload = rt
        .context()
        .host()
        .get(pairs[0].0.addr)
        .expect("live chunk")
        .payload();
    let Payload::Real(bytes) = payload else {
        panic!("real payload expected")
    };
    println!(
        "fault-forced open readable at {readable}: byte[0] = {:#04x} (expected {:#04x})",
        bytes[0],
        page_byte(0),
    );
    let stats = rt.spec_stats();
    println!("stats after mechanism demo: {stats}\n");
}

fn workload() {
    println!("== workload: sessioned vLLM under KV pressure ==");
    let rt = PipeLlmRuntime::new(PipeLlmConfig {
        crypto_threads: 2,
        ..PipeLlmConfig::default()
    });
    let mut engine = VllmEngine::load(rt, VllmConfig::new(ModelSpec::opt_30b()), "kv-cache demo")
        .expect("model fits on the GPU");
    // The engine's swap crypto runs under its own tenant session.
    let session = engine.bind_session().expect("bind tenant session");
    println!("engine bound to {session}");

    let trace = TraceConfig::new(Dataset::ShareGpt, 0.8)
        .duration_secs(120.0)
        .parallel(6)
        .seed(7)
        .generate();
    let report = engine.serve(&trace).expect("serve");
    let stats = engine.runtime().spec_stats();
    println!(
        "served {} requests, {} preemptions, norm latency {:.4} s/token",
        report.completed, report.preemptions, report.norm_latency_s_per_token
    );
    println!(
        "sealed pages: {}   pre-decrypt rate: {:.0}%   spec success: {:.0}%",
        stats.async_decrypts,
        stats.pre_decrypt_rate() * 100.0,
        stats.success_rate() * 100.0
    );
    let counters = engine
        .runtime()
        .session_counters(session)
        .expect("session live");
    println!("session counters in lockstep: {}", counters.in_lockstep());
}

fn main() {
    mechanism();
    workload();
}
