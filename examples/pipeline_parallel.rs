//! Pipeline-parallel quickstart: a model sharded over four GPUs with
//! encrypted inter-stage links.
//!
//! Each device-to-device edge owns its own secure channel per session
//! (keys and IV counters independent per link); the PipeLLM system hides
//! the per-hop AES-GCM seals behind speculative edge pipelines, so the
//! stage threads never block on encryption. The run verifies bit-exact
//! outputs against the single-GPU configuration and prints the per-device
//! and per-edge utilization timelines.
//!
//! Run with: `cargo run --release --example pipeline_parallel`

use pipellm_repro::serving::pipeline::{PipelineConfig, PipelineEngine, PipelineSystem};
use pipellm_repro::serving::ServingEngine;

fn main() {
    let base = PipelineConfig {
        stages: 4,
        layers: 16,
        micro_batches: 4,
        iterations: 3,
        ..PipelineConfig::default()
    };

    // The single-GPU reference run (native CC) for the bit-exact check.
    let mut reference = PipelineEngine::new(PipelineConfig {
        stages: 1,
        system: PipelineSystem::CcNative,
        ..base.clone()
    });
    reference.run_to_completion().expect("reference run");

    for system in [
        PipelineSystem::CcOff,
        PipelineSystem::CcNative,
        PipelineSystem::PipeLlm,
    ] {
        let mut engine = PipelineEngine::new(PipelineConfig {
            system,
            ..base.clone()
        });
        let report = engine.run_to_completion().expect("pipeline run");
        println!("{report}");
        assert_eq!(
            engine.outputs(),
            reference.outputs(),
            "4-stage output must be bit-exact with the single-GPU run"
        );
        engine
            .verify_edges()
            .expect("per-edge counters in lockstep");
        if system == PipelineSystem::PipeLlm {
            println!("  edge speculation: {}", engine.spec_stats());
            print!("{}", engine.cluster().timeline_summary(report.finished_at));
        }
    }
    println!("all systems bit-exact with single-GPU; all edges in lockstep ✓");
}
