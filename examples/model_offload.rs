//! Serving a model bigger than GPU memory: FlexGen-style layer offloading
//! of OPT-66B (132 GB of weights on an 80 GB GPU) under the three systems.
//!
//! The workload of the paper's Figures 3a and 7a: every forward pass
//! streams the offloaded layers host→device in a repetitive pattern, which
//! PipeLLM predicts and pre-encrypts with multiple crypto threads.
//!
//! Run with: `cargo run --release --example model_offload`

use pipellm_bench::runners::{run_flexgen, Scale};
use pipellm_bench::table::overhead_pct;
use pipellm_bench::System;
use pipellm_serving::FlexGenConfig;

fn main() {
    let config = || FlexGenConfig::opt_66b(32, 32);
    println!("FlexGen OPT-66B (132 GB weights, 80 GB GPU) — prompt 32 / output 32\n");

    let mut baseline = 0.0;
    for system in [System::cc_off(), System::cc(), System::pipellm(8)] {
        let report = run_flexgen(&system, config(), Scale::Quick);
        if matches!(system, System::CcOff) {
            baseline = report.tokens_per_sec;
        }
        println!(
            "{:<8}  {:.2} tokens/s ({:+.1}% vs w/o CC)  h2d {:.1} GB  GPU stall {:.1?}",
            system.label(),
            report.tokens_per_sec,
            -overhead_pct(baseline, report.tokens_per_sec),
            report.io.h2d_bytes as f64 / 1e9,
            report.gpu_io_stall,
        );
    }

    println!(
        "\nWith CC, the single-thread AES-GCM rate (~5.8 GB/s) throttles the \
         ~43 GB/s layer stream (paper: 82.8-88.2% drop). PipeLLM's pipeline \
         keeps the PCIe staging path saturated (paper: <19.6% drop)."
    );
}
