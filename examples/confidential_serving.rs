//! Confidential LLM serving: a vLLM-like engine with KV-cache swapping on
//! OPT-30B, compared across the paper's three systems.
//!
//! This is the workload of the paper's Figure 8: Poisson arrivals with
//! ShareGPT-like lengths and parallel sampling 6 drive the paged KV cache
//! into swapping; the engine is *identical* for all three runtimes — the
//! user-transparency property.
//!
//! Run with: `cargo run --release --example confidential_serving`

use pipellm_bench::runners::{run_vllm, Scale};
use pipellm_bench::table::overhead_pct;
use pipellm_bench::System;
use pipellm_llm::ModelSpec;
use pipellm_workloads::Dataset;

fn main() {
    let model = ModelSpec::opt_30b();
    let (dataset, rate, parallel) = (Dataset::ShareGpt, 0.7, 6);
    println!(
        "serving {} | {} arrivals at {rate} req/s, parallel sampling {parallel}\n",
        model.name,
        dataset.name()
    );

    let mut baseline = 0.0;
    for system in [System::cc_off(), System::cc(), System::pipellm(2)] {
        let report = run_vllm(
            &system,
            model.clone(),
            dataset,
            rate,
            parallel,
            Scale::Quick,
            7,
        );
        if matches!(system, System::CcOff) {
            baseline = report.norm_latency_s_per_token;
        }
        println!(
            "{:<8}  norm latency {:.4} s/token ({:+.1}% vs w/o CC)  \
             preemptions {}  GPU I/O stall {:.2?}",
            system.label(),
            report.norm_latency_s_per_token,
            -overhead_pct(baseline, report.norm_latency_s_per_token),
            report.preemptions,
            report.gpu_io_stall,
        );
    }

    println!(
        "\nCC pays for on-the-fly encryption on every KV swap-in; PipeLLM \
         pre-encrypts the predicted LIFO reload sequence and stays near the \
         unencrypted baseline (paper: 5.2-14.2% overhead)."
    );
}
