//! Networked deployment quickstart: a four-stage pipeline served by an
//! orchestrator and one worker per stage, first over the in-process
//! duplex transport, then over real localhost TCP — and then over TCP
//! with a 10% injected fault rate on every link.
//!
//! The three runs must agree byte for byte: the transport — and the
//! chaos on it — is invisible to the math. What the wire *does* change
//! is the resilience ledger:
//!
//! - a mangled sealed frame fails authentication at the receiver, which
//!   absorbs it as a sentinel (the IV is consumed — lockstep holds) and
//!   NACKs; the sender reseals at a fresh IV;
//! - a dropped connection is re-dialed with bounded backoff, and the
//!   restored link's edges are rekeyed to a new epoch before traffic
//!   resumes, so no IV is ever reused;
//! - anything that slips both paths is caught by the level-triggered
//!   resend sweep: an unacked frame past its age threshold is resealed
//!   and resent, again at a fresh IV.
//!
//! At the end of every run the orchestrator audits all edge counters:
//! each edge's two endpoints must agree on epoch and IV positions — the
//! lockstep invariant, now spanning processes and sockets.
//!
//! Run with: `cargo run --release --example networked_pipeline`

use pipellm_repro::net::{run_duplex, run_tcp_threads, NetPipelineSpec, NetReport};
use std::time::Duration;

fn show(label: &str, r: &NetReport) {
    println!(
        "{label:<14} stages={} outputs={} digest={:016x} relayed={} retrans={} \
         sentinels={} reconnects={} rekeys={} lockstep={}",
        r.stages,
        r.outputs.len(),
        r.output_digest,
        r.relayed_frames,
        r.retransmits,
        r.sentinels,
        r.reconnects,
        r.rekeys,
        r.lockstep_ok,
    );
}

fn main() {
    let spec = NetPipelineSpec {
        stages: 4,
        layers: 8,
        iterations: 3,
        micro_batches: 2,
        activation_bytes: 2048,
        seed: 0xC0FF_EE00,
        // Deadlines only fire on a true wedge; keep them generous.
        op_timeout: Duration::from_secs(60),
        ..NetPipelineSpec::default()
    };

    // The reference computation: what every deployment must reproduce.
    let expected = spec.expected_outputs();

    let duplex = run_duplex(&spec).expect("duplex deployment");
    show("duplex", &duplex);

    let tcp = run_tcp_threads(&spec).expect("tcp deployment");
    show("tcp", &tcp);

    let chaotic = run_tcp_threads(&NetPipelineSpec {
        net_fault_rate: 0.10,
        chaos_seed: 42,
        ..spec.clone()
    })
    .expect("chaotic tcp deployment");
    show("tcp + chaos", &chaotic);

    assert_eq!(duplex.outputs, expected, "duplex diverged from reference");
    assert_eq!(tcp.outputs, expected, "tcp diverged from reference");
    assert_eq!(chaotic.outputs, expected, "chaos broke bit-exactness");
    assert!(duplex.lockstep_ok && tcp.lockstep_ok && chaotic.lockstep_ok);

    println!(
        "\nall three deployments bit-identical to the reference \
         ({} outputs, digest {:016x}); chaos absorbed {} sentinels, \
         {} reconnects, {} retransmits, {} rekeys — correctness unchanged",
        expected.len(),
        duplex.output_digest,
        chaotic.sentinels,
        chaotic.reconnects,
        chaotic.retransmits,
        chaotic.rekeys,
    );
}
