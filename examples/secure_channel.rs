//! The NVIDIA-CC wire protocol in isolation: AES-GCM with implicitly
//! synchronized, strictly incrementing IVs (the paper's Figure 1), and why
//! speculation needs an error handler.
//!
//! Run with: `cargo run --example secure_channel`

use pipellm_crypto::channel::{ChannelKeys, SecureChannel};
use pipellm_crypto::CryptoError;

fn main() {
    let mut ch = SecureChannel::new(ChannelKeys::from_seed(2024));

    // 1. Normal transfers: the IV is never transmitted; both sides advance
    //    their counters in lockstep.
    let a = ch
        .host_mut()
        .seal(b"layer 17 weights")
        .expect("fresh counter");
    let b = ch
        .host_mut()
        .seal(b"layer 18 weights")
        .expect("fresh counter");
    println!("sealed message A at IV={}, B at IV={}", a.iv, b.iv);
    assert_eq!(
        ch.device_mut().open(&a).expect("in order"),
        b"layer 17 weights"
    );

    // 2. Out-of-order delivery fails authentication — the replay protection
    //    that makes speculative encryption hard.
    let replay = ch.device_mut().open(&a).expect_err("replay must fail");
    println!("replaying A: {replay}");
    assert!(matches!(replay, CryptoError::AuthenticationFailed { .. }));
    ch.device_mut().open(&b).expect("correct order still works");

    // 3. Speculative pre-encryption: seal at a *future* IV without
    //    advancing the counter (what PipeLLM's predictor does).
    let future_iv = ch.host().tx().next_iv() + 2;
    let spec = ch
        .host()
        .tx()
        .seal_speculative(future_iv, b"", b"predicted KV block")
        .expect("future IV");
    println!(
        "speculatively sealed at IV={future_iv} while counter is {}",
        ch.host().tx().next_iv()
    );

    // Committing too early is a recoverable IV mismatch…
    let early = ch
        .host_mut()
        .tx_mut()
        .commit(&spec)
        .expect_err("counter is behind");
    println!("early commit: {early}");

    // …fixed by NOP padding (§5.3): 1-byte dummies that advance both sides.
    while ch.host().tx().next_iv() < future_iv {
        let nop = ch
            .host_mut()
            .tx_mut()
            .seal_nop()
            .expect("IVs not exhausted");
        ch.device_mut().open(&nop).expect("nop is authentic");
    }
    ch.host_mut()
        .tx_mut()
        .commit(&spec)
        .expect("counters aligned");
    let plain = ch
        .device_mut()
        .open(&spec)
        .expect("device counter caught up");
    assert_eq!(plain, b"predicted KV block");
    println!(
        "committed speculative ciphertext after NOP padding: {:?}",
        String::from_utf8(plain)
    );

    // 4. A stale speculation (its IV consumed by other traffic) is
    //    irrecoverable: sealing below the counter would reuse a GCM nonce.
    let stale = ch.host().tx().seal_speculative(1, b"", b"too late");
    println!(
        "sealing at a consumed IV: {}",
        stale.expect_err("nonce reuse refused")
    );
}
