//! Umbrella crate for the PipeLLM reproduction workspace.
//!
//! Re-exports the workspace crates under one roof so the repository-level
//! examples and integration tests exercise the same public API a downstream
//! user would import:
//!
//! - [`runtime`] (`pipellm`) — the contribution: the speculative pipelined
//!   encryption runtime;
//! - [`chaos`] — deterministic fault injection and the retry/backoff/
//!   timeout policy behind the resilience story;
//! - [`crypto`] — AES-GCM and the incrementing-IV secure channel;
//! - [`sim`] — the deterministic timing core;
//! - [`gpu`] — the simulated CC-enabled GPU and CUDA-level API;
//! - [`llm`] — OPT model geometry and the GPU roofline model;
//! - [`workloads`] — synthetic traces (Alpaca/ShareGPT/ultrachat-like);
//! - [`net`] — the networked multi-process deployment: orchestrator and
//!   stage workers over encrypted, length-framed byte streams;
//! - [`serving`] — vLLM/FlexGen/PEFT-like engines;
//! - [`bench`] — the experiment harness regenerating the paper's figures;
//! - [`analysis`] — the `pipellm-lint` static analyzer and the exhaustive
//!   interleaving checker (including the supervisor failover model).
//!
//! # Quickstart
//!
//! ```
//! use pipellm_repro::runtime::{PipeLlmConfig, PipeLlmRuntime};
//! use pipellm_repro::gpu::memory::Payload;
//! use pipellm_repro::gpu::runtime::GpuRuntime;
//! use pipellm_repro::sim::time::SimTime;
//!
//! # fn main() -> Result<(), pipellm_repro::gpu::GpuError> {
//! let mut rt = PipeLlmRuntime::new(PipeLlmConfig::default());
//! let chunk = rt.alloc_host(Payload::Real(vec![7u8; 256 * 1024]));
//! let dst = rt.alloc_device(256 * 1024)?;
//! rt.memcpy_htod(SimTime::ZERO, dst, chunk)?;
//! assert!(rt.synchronize(SimTime::ZERO) > SimTime::ZERO);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![warn(missing_docs)]

pub use pipellm as runtime;
pub use pipellm_analysis as analysis;
pub use pipellm_bench as bench;
pub use pipellm_chaos as chaos;
pub use pipellm_crypto as crypto;
pub use pipellm_gpu as gpu;
pub use pipellm_llm as llm;
pub use pipellm_net as net;
pub use pipellm_serving as serving;
pub use pipellm_sim as sim;
pub use pipellm_workloads as workloads;
